//! # msoc — test planning for mixed-signal SOCs with wrapped analog cores
//!
//! A production-quality reproduction of **Sehgal, Liu, Ozev and
//! Chakrabarty, "Test Planning for Mixed-Signal SOCs with Wrapped Analog
//! Cores", DATE 2005**, as a Rust workspace. Analog cores are wrapped with
//! reconfigurable DAC/ADC test wrappers so they become *virtual digital
//! cores* testable over a digital TAM; wrappers may be shared between
//! cores to save area at the price of serialized tests; and a
//! cost-oriented planner picks the sharing configuration, TAM widths and
//! test schedule minimizing `C = W_T·C_T + W_A·C_A`.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`itc02`] — ITC'02 benchmark model, parser and synthetic SOCs,
//! * [`wrapper`] — digital test wrapper design (time/width staircases),
//! * [`tam`] — TAM scheduling (rectangle packing with wrapper
//!   serialization constraints),
//! * [`analog`] — behavioral analog substrate: DSP, circuits, data
//!   converters and specification measurements,
//! * [`awrapper`] — the analog test wrapper: configuration, area model,
//!   sharing and the DAC → core → ADC datapath,
//! * [`core`] — the planner: sharing partitions, the cost model, the
//!   exhaustive baseline and the paper's `Cost_Optimizer` heuristic,
//! * [`net`] — the `msocd` plan daemon: a length-prefixed wire
//!   protocol, tenant-sharded services with admission control, and
//!   crash-safe snapshots driven from the serving loop.
//!
//! # Quickstart
//!
//! ```no_run
//! use msoc::prelude::*;
//!
//! let soc = MixedSignalSoc::p93791m();
//! let mut planner = Planner::new(&soc);
//! let report = planner.cost_optimizer(32, CostWeights::balanced(), 0.0)?;
//! println!("best sharing: {} (cost {:.1})", report.best.config, report.best.total_cost);
//! # Ok::<(), msoc::core::PlanError>(())
//! ```
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-versus-measured results; the `msoc-bench` crate regenerates every
//! table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msoc_analog as analog;
pub use msoc_awrapper as awrapper;
pub use msoc_core as core;
pub use msoc_itc02 as itc02;
pub use msoc_net as net;
pub use msoc_tam as tam;
pub use msoc_wrapper as wrapper;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use msoc_analog::{paper_cores, AnalogCoreSpec, CoreId};
    pub use msoc_awrapper::{AreaModel, SharingPolicy, WrapperDatapath};
    pub use msoc_core::{
        recover, CancelToken, CoreEdit, CostWeights, Deadline, DirStore, FaultyStore, Job,
        JobBuilder, JobOutcome, JobReport, JobResult, JobSpec, MixedSignalSoc, PlanReport,
        PlanRequest, PlanService, Planner, Priority, ServiceSnapshot, SharingConfig,
        SnapshotDaemon, SnapshotStore, SocHandle, TableRequest,
    };
    pub use msoc_itc02::{Module, Soc};
    pub use msoc_net::{
        serve, Client, ServerConfig, WireJob, WireOutcome, WireSoc, WireSocRef, WireSpec,
    };
    pub use msoc_tam::{schedule, Schedule, ScheduleProblem, TestJob};
    pub use msoc_wrapper::{Staircase, WrapperDesign};
}
