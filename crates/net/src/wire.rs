//! The `msocd` wire protocol: length-prefixed binary frames over any
//! byte stream.
//!
//! # Frame layout
//!
//! ```text
//! +------+---------+------+--------------------+---------------------+
//! | MNET | version | kind | payload len (LEB)  | payload             |
//! | 4 B  | 1 B     | 1 B  | strict varint      | ≤ 4 MiB             |
//! +------+---------+------+--------------------+---------------------+
//! ```
//!
//! `kind` separates requests (1) from responses (2) so a desynchronized
//! peer fails with a structured error instead of misparsing. The payload
//! length and every integer inside the payload use the **strict varint
//! codec** from `msoc_core::service::codec` — the same reader the v2
//! snapshot format uses — so overlong, non-canonical and
//! past-the-64th-bit encodings are rejected identically on the wire and
//! on disk.
//!
//! # Safety properties
//!
//! Decoding untrusted bytes **never panics and never allocates from an
//! untrusted length**: frame payloads are read in bounded chunks, every
//! collection count is checked against the bytes actually remaining
//! (each element consumes at least one byte) before anything is
//! reserved, and all domain invariants that the core constructors
//! enforce by panicking — sharing-group partitions, cost-weight sums,
//! analog catalog names — are pre-validated here and surface as
//! [`WireError::Corrupt`]. The truncation/bit-flip fuzz suite in
//! `tests/fuzz.rs` holds the protocol to this.

use std::fmt;
use std::io::{self, Read, Write};

use msoc_analog::{paper_cores, AnalogCoreSpec, AnalogTestKind, AnalogTestSpec, CoreId};
use msoc_core::service::codec::{read_uv, write_uv};
use msoc_core::service::SnapshotError;
use msoc_core::{CostWeights, JobOutcome, JobResult, MixedSignalSoc, PlanError, SharingConfig};
use msoc_itc02::{Module, ModuleTest, Soc};
use msoc_tam::{Effort, Engine, ScheduledTest};

/// Frame magic.
pub const WIRE_MAGIC: &[u8; 4] = b"MNET";
/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Upper bound on one frame's payload (4 MiB).
pub const MAX_FRAME: u64 = 4 << 20;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;

/// Bytes read from the stream per chunk while filling a payload — the
/// allocation granularity, so a lying length prefix can cost at most one
/// chunk of memory beyond what the stream actually delivers.
const READ_CHUNK: usize = 64 * 1024;

/// Why a frame or payload could not be decoded. Every variant is a
/// structured error — untrusted bytes never panic the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a frame or a record.
    Truncated,
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The frame kind is neither request nor response, or not the kind
    /// the caller expected.
    UnexpectedKind(u8),
    /// The declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge(u64),
    /// The payload's message tag names no known message.
    UnknownMessage(u64),
    /// A record is internally inconsistent (description attached).
    Corrupt(String),
    /// The transport failed (description attached).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame is truncated"),
            WireError::BadMagic => write!(f, "not an msocd frame (bad magic)"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::UnexpectedKind(k) => write!(f, "unexpected frame kind {k}"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::UnknownMessage(tag) => write!(f, "unknown message tag {tag}"),
            WireError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            WireError::Io(what) => write!(f, "transport error: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<SnapshotError> for WireError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Truncated => WireError::Truncated,
            other => WireError::Corrupt(other.to_string()),
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    }
}

// ---------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register an SOC under the tenant; the returned id names it in
    /// later [`Request::Submit`] and [`Request::Revise`] calls.
    Register {
        /// Tenant name (keys the serving shard).
        tenant: String,
        /// The SOC to register.
        soc: WireSoc,
    },
    /// Run a batch of jobs on the tenant's shard.
    Submit {
        /// Tenant name.
        tenant: String,
        /// The batch, carrying the full job surface (spec, candidate
        /// configs, weights, effort/engine, priority, deadline,
        /// cancellation).
        jobs: Vec<WireJob>,
    },
    /// Apply core edits to a registered SOC (incremental revision).
    Revise {
        /// Tenant name.
        tenant: String,
        /// The registered SOC to revise.
        soc_id: u64,
        /// The edits, applied in order.
        edits: Vec<WireEdit>,
    },
    /// Fetch the tenant's shard statistics.
    Stats {
        /// Tenant name.
        tenant: String,
    },
    /// Force a snapshot of every shard now (bypasses the staleness
    /// policy).
    SnapshotNow,
    /// Gracefully stop the server (flushes snapshots when configured).
    Shutdown,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Register`].
    Registered {
        /// The id the SOC is now registered under.
        soc_id: u64,
    },
    /// Reply to [`Request::Submit`]: one outcome per job, input order.
    Outcomes(Vec<WireOutcome>),
    /// Reply to [`Request::Revise`].
    Revised {
        /// The id (unchanged; the handle is revised in place).
        soc_id: u64,
        /// The SOC's revision counter after the edits.
        revision: u64,
    },
    /// Reply to [`Request::Stats`].
    Stats(WireStats),
    /// Reply to [`Request::SnapshotNow`].
    SnapshotDone {
        /// Generations persisted across the shards by this request
        /// (0 = all content was already persisted).
        persisted: u64,
    },
    /// Reply to [`Request::Shutdown`]; the server stops accepting after
    /// sending it.
    ShuttingDown,
    /// The request could not be served (unknown SOC id, decode failure
    /// reported back, …).
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// A [`MixedSignalSoc`] on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSoc {
    /// SOC name.
    pub name: String,
    /// Digital SOC name (the ITC'02 benchmark name).
    pub digital_name: String,
    /// Digital modules.
    pub modules: Vec<WireModule>,
    /// Wrapped analog cores.
    pub analog: Vec<WireAnalogCore>,
}

/// One digital module on the wire (mirrors `msoc_itc02::Module`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireModule {
    /// Module id.
    pub id: u32,
    /// Hierarchy level (0 = the SOC itself).
    pub level: u32,
    /// Functional inputs.
    pub inputs: u32,
    /// Functional outputs.
    pub outputs: u32,
    /// Bidirectional terminals.
    pub bidirs: u32,
    /// Scan-chain lengths.
    pub scan_chains: Vec<u32>,
    /// Tests: `(patterns, scan_used, tam_used)`.
    pub tests: Vec<(u64, bool, bool)>,
}

/// One analog core on the wire (mirrors `msoc_analog::AnalogCoreSpec`;
/// the name must match the paper catalog — see [`WireSoc::to_soc`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnalogCore {
    /// Paper core id, 0..5 (A..E).
    pub id: u8,
    /// Catalog name (validated against the paper cores on decode).
    pub name: String,
    /// Converter resolution in bits.
    pub resolution_bits: u8,
    /// Tests: `(kind tag, f_low_hz, f_high_hz, sample_rate_hz, cycles,
    /// tam_width)`.
    pub tests: Vec<(u8, f64, f64, f64, u64, u32)>,
}

/// One core edit on the wire (mirrors `msoc_core::CoreEdit`).
#[derive(Debug, Clone, PartialEq)]
pub enum WireEdit {
    /// Replace the analog core at `index`.
    ReplaceAnalog {
        /// Index into the SOC's analog core list.
        index: u64,
        /// The replacement core.
        core: WireAnalogCore,
    },
    /// Replace the digital module with id `id`.
    ReplaceDigital {
        /// The module id to replace.
        id: u32,
        /// The replacement module.
        module: WireModule,
    },
}

/// The SOC a wire job plans: a previously registered id, or an inline
/// SOC carried in the job itself.
#[derive(Debug, Clone, PartialEq)]
pub enum WireSocRef {
    /// A [`Request::Register`]ed SOC.
    Registered(u64),
    /// An SOC carried inline.
    Inline(WireSoc),
}

/// What a wire job computes (mirrors `msoc_core::JobSpec`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireSpec {
    /// One `Cost_Optimizer` run at a single TAM width.
    Single {
        /// SOC-level TAM width.
        width: u32,
    },
    /// A full config × width table.
    Table {
        /// The table's width columns.
        widths: Vec<u32>,
    },
    /// The makespan-minimizing width for one configuration.
    BestWidth {
        /// Candidate widths.
        widths: Vec<u32>,
    },
}

/// One sharing configuration on the wire: groups over `0..n_cores`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireConfig {
    /// Number of analog cores partitioned.
    pub n_cores: u64,
    /// The wrapper groups.
    pub groups: Vec<Vec<u64>>,
}

/// One job on the wire: the full [`JobBuilder`](msoc_core::JobBuilder)
/// surface — spec, candidate configs, weights, pruning delta,
/// effort/engine, priority, a deterministic check-budget deadline, and
/// pre-cancellation.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJob {
    /// The SOC to plan.
    pub soc: WireSocRef,
    /// What to compute.
    pub spec: WireSpec,
    /// Explicit candidate configurations (`None` = enumerate).
    pub configs: Option<Vec<WireConfig>>,
    /// Cost weight `W_T` (must pair with `w_area` to sum to 1).
    pub w_time: f64,
    /// Cost weight `W_A`.
    pub w_area: f64,
    /// `Cost_Optimizer` pruning delta.
    pub delta: f64,
    /// Scheduling effort.
    pub effort: Effort,
    /// Packing engine.
    pub engine: Engine,
    /// Dispatch priority: 0 = low, 1 = normal, 2 = high.
    pub priority: u8,
    /// Deterministic check-budget deadline (`None` = none). Wall-clock
    /// deadlines are deliberately not wire-representable: a check budget
    /// expires at the same progress boundary on every host, which the
    /// loopback determinism suite depends on.
    pub deadline_checks: Option<u64>,
    /// Submit the job already cancelled (it observes the token at its
    /// first progress boundary — deterministic).
    pub cancelled: bool,
}

impl WireJob {
    /// A job with default weights/effort/engine/priority and no
    /// deadline.
    pub fn new(soc: WireSocRef, spec: WireSpec) -> Self {
        WireJob {
            soc,
            spec,
            configs: None,
            w_time: 0.5,
            w_area: 0.5,
            delta: 0.0,
            effort: Effort::Quick,
            engine: Engine::Skyline,
            priority: 1,
            deadline_checks: None,
            cancelled: false,
        }
    }
}

/// One outcome on the wire — the canonical projection the loopback
/// determinism suite compares byte-for-byte against a serial in-process
/// replay (see [`WireOutcome::from_outcome`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// The job completed.
    Completed(WireResult),
    /// The job's check budget expired.
    DeadlineExceeded,
    /// The job's cancellation token fired.
    Cancelled,
    /// The job was shed by admission or queue-depth backpressure
    /// (structural, so clients can branch on overload without string
    /// matching).
    Overloaded {
        /// The cap that shed the job.
        cap: u64,
        /// The batch size at shedding time.
        batch: u64,
    },
    /// The job was rejected for any other reason.
    Rejected {
        /// The structured error, rendered.
        error: String,
    },
    /// The job panicked server-side (isolated; siblings completed).
    Failed {
        /// The panic payload's message.
        message: String,
    },
}

/// A completed job's result on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    /// A single-width plan.
    Plan {
        /// The winning configuration, rendered canonically.
        config: String,
        /// TAM width planned for.
        tam_width: u32,
        /// Scheduled makespan in cycles.
        makespan: u64,
        /// `f64::to_bits` of the blended cost (bit-exact comparison).
        cost_bits: u64,
        /// The winning schedule's entries.
        schedule: Vec<WireEntry>,
    },
    /// A config × width table's winner.
    Table {
        /// The winning configuration, rendered canonically.
        config: String,
        /// Width of the winning cell.
        winner_width: u32,
        /// The winning cell's raw makespan.
        winner_makespan: u64,
        /// `f64::to_bits` of the winner's blended cost.
        cost_bits: u64,
        /// Total cells in the matrix.
        cells: u64,
        /// Cells actually packed.
        packed: u64,
    },
    /// A best-width sweep's winner.
    BestWidth {
        /// The swept configuration, rendered canonically.
        config: String,
        /// The makespan-minimizing width.
        width: u32,
        /// Its makespan.
        makespan: u64,
    },
}

/// One scheduled test on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEntry {
    /// Job index in the schedule's problem.
    pub job: u64,
    /// Granted TAM width.
    pub width: u32,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// Per-outcome-class latency accounting inside [`WireStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLatency {
    /// Outcome class (`completed`, `interrupted`, `rejected`, `failed`).
    pub outcome: String,
    /// Requests in this class.
    pub count: u64,
    /// Median latency in microseconds (log2-bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
}

/// One shard's service + daemon statistics on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireStats {
    /// The shard index serving this tenant.
    pub shard: u64,
    /// Jobs submitted to the shard.
    pub jobs_submitted: u64,
    /// Jobs shed by admission or queue-depth control.
    pub jobs_shed: u64,
    /// Jobs failed (panics, lost outcomes).
    pub jobs_failed: u64,
    /// Schedule-cache hits.
    pub schedule_hits: u64,
    /// Schedule-cache misses.
    pub schedule_misses: u64,
    /// Session-cache hits.
    pub session_hits: u64,
    /// Session-cache misses.
    pub session_misses: u64,
    /// Live sessions in the shard's cache.
    pub live_sessions: u64,
    /// Snapshot generations the shard's daemon persisted.
    pub snapshots_persisted: u64,
    /// Service shards the daemon's differential exporter served from
    /// cache.
    pub shard_exports_reused: u64,
    /// Per-outcome latency quantiles.
    pub latency: Vec<WireLatency>,
}

// ---------------------------------------------------------------------
// Canonical projection from core outcomes
// ---------------------------------------------------------------------

impl WireOutcome {
    /// Projects a core [`JobOutcome`] onto its canonical wire form —
    /// the **single** projection both the TCP server and the serial
    /// in-process replay use, so "bit-identical outcomes" is a
    /// comparison of these encodings.
    pub fn from_outcome(outcome: &JobOutcome) -> WireOutcome {
        match outcome {
            JobOutcome::Completed(report) => WireOutcome::Completed(match &report.result {
                JobResult::Plan(plan) => WireResult::Plan {
                    config: plan.best.config.to_string(),
                    tam_width: plan.tam_width,
                    makespan: plan.best.makespan,
                    cost_bits: plan.best.total_cost.to_bits(),
                    schedule: plan.schedule.entries().iter().map(WireEntry::from).collect(),
                },
                JobResult::Table(table) => WireResult::Table {
                    config: table.best.config.to_string(),
                    winner_width: table.winner_width,
                    winner_makespan: table.winner_makespan,
                    cost_bits: table.best.total_cost.to_bits(),
                    cells: table.stats.cells as u64,
                    packed: table.stats.packed as u64,
                },
                JobResult::BestWidth { config, width, makespan } => WireResult::BestWidth {
                    config: config.to_string(),
                    width: *width,
                    makespan: *makespan,
                },
            }),
            JobOutcome::DeadlineExceeded { .. } => WireOutcome::DeadlineExceeded,
            JobOutcome::Cancelled => WireOutcome::Cancelled,
            JobOutcome::Rejected(PlanError::Overloaded { cap, batch }) => {
                WireOutcome::Overloaded { cap: *cap as u64, batch: *batch as u64 }
            }
            JobOutcome::Rejected(error) => WireOutcome::Rejected { error: error.to_string() },
            JobOutcome::Failed { message } => WireOutcome::Failed { message: message.clone() },
        }
    }

    /// This outcome's class label for latency accounting.
    pub fn class(&self) -> &'static str {
        match self {
            WireOutcome::Completed(_) => "completed",
            WireOutcome::DeadlineExceeded | WireOutcome::Cancelled => "interrupted",
            WireOutcome::Overloaded { .. } | WireOutcome::Rejected { .. } => "rejected",
            WireOutcome::Failed { .. } => "failed",
        }
    }

    /// The canonical encoding of a batch of outcomes — what the
    /// determinism suite compares.
    pub fn encode_batch(outcomes: &[WireOutcome]) -> Vec<u8> {
        let mut out = Vec::new();
        write_uv(&mut out, outcomes.len() as u64);
        for o in outcomes {
            o.encode(&mut out);
        }
        out
    }
}

impl From<&ScheduledTest> for WireEntry {
    fn from(e: &ScheduledTest) -> Self {
        WireEntry { job: e.job as u64, width: e.width, start: e.start, end: e.end }
    }
}

// ---------------------------------------------------------------------
// Validated conversions into core types
// ---------------------------------------------------------------------

/// Builds [`CostWeights`] from wire floats without panicking: the core
/// constructor asserts, so the wire layer re-checks and reports.
///
/// # Errors
///
/// [`WireError::Corrupt`] on negative weights or a sum away from 1.
pub fn checked_weights(w_time: f64, w_area: f64) -> Result<CostWeights, WireError> {
    if !(w_time >= 0.0 && w_area >= 0.0 && ((w_time + w_area) - 1.0).abs() < 1e-9) {
        return Err(WireError::Corrupt(format!("invalid cost weights ({w_time}, {w_area})")));
    }
    Ok(CostWeights::new(w_time, w_area))
}

impl WireConfig {
    /// A wire config from a core [`SharingConfig`].
    pub fn from_config(config: &SharingConfig) -> Self {
        WireConfig {
            n_cores: config.n_cores() as u64,
            groups: config.groups().iter().map(|g| g.iter().map(|&c| c as u64).collect()).collect(),
        }
    }

    /// Builds the core [`SharingConfig`] without panicking: the core
    /// constructor asserts an exact partition, so the wire layer
    /// re-checks and reports.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] unless the groups exactly partition
    /// `0..n_cores`.
    pub fn to_config(&self) -> Result<SharingConfig, WireError> {
        let n = usize::try_from(self.n_cores).ok().filter(|&n| n <= 64).ok_or_else(|| {
            WireError::Corrupt(format!("implausible core count {}", self.n_cores))
        })?;
        let mut seen = vec![false; n];
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(self.groups.len().min(n));
        for group in &self.groups {
            if group.is_empty() {
                return Err(WireError::Corrupt("empty wrapper group".into()));
            }
            let mut g = Vec::with_capacity(group.len().min(n));
            for &c in group {
                let c = usize::try_from(c).ok().filter(|&c| c < n).ok_or_else(|| {
                    WireError::Corrupt(format!("core index {c} out of range {n}"))
                })?;
                if std::mem::replace(&mut seen[c], true) {
                    return Err(WireError::Corrupt(format!("core {c} in two groups")));
                }
                g.push(c);
            }
            groups.push(g);
        }
        if !seen.iter().all(|&s| s) {
            return Err(WireError::Corrupt("groups do not cover every core".into()));
        }
        Ok(SharingConfig::new(n, groups))
    }
}

impl WireModule {
    /// A wire module from a core [`Module`].
    pub fn from_module(m: &Module) -> Self {
        WireModule {
            id: m.id,
            level: m.level,
            inputs: m.inputs,
            outputs: m.outputs,
            bidirs: m.bidirs,
            scan_chains: m.scan_chains.clone(),
            tests: m.tests.iter().map(|t| (t.patterns, t.scan_used, t.tam_used)).collect(),
        }
    }

    /// The core [`Module`].
    pub fn to_module(&self) -> Module {
        Module {
            id: self.id,
            level: self.level,
            inputs: self.inputs,
            outputs: self.outputs,
            bidirs: self.bidirs,
            scan_chains: self.scan_chains.clone(),
            tests: self
                .tests
                .iter()
                .map(|&(patterns, scan_used, tam_used)| ModuleTest {
                    patterns,
                    scan_used,
                    tam_used,
                })
                .collect(),
        }
    }
}

impl WireAnalogCore {
    /// A wire core from a core [`AnalogCoreSpec`].
    pub fn from_core(core: &AnalogCoreSpec) -> Self {
        WireAnalogCore {
            id: core.id.index() as u8,
            name: core.name.to_string(),
            resolution_bits: core.resolution_bits,
            tests: core
                .tests
                .iter()
                .map(|t| {
                    (
                        analog_kind_code(t.kind),
                        t.f_low_hz,
                        t.f_high_hz,
                        t.sample_rate_hz,
                        t.cycles,
                        t.tam_width,
                    )
                })
                .collect(),
        }
    }

    /// The core [`AnalogCoreSpec`]. The `name` must match one of the
    /// paper catalog's core names — `AnalogCoreSpec::name` is a
    /// `&'static str`, so decoding resolves through the catalog instead
    /// of leaking every untrusted string it ever sees.
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] on an unknown core id, test kind or
    /// non-catalog name.
    pub fn to_core(&self) -> Result<AnalogCoreSpec, WireError> {
        let id = *CoreId::ALL
            .get(self.id as usize)
            .ok_or_else(|| WireError::Corrupt(format!("unknown analog core id {}", self.id)))?;
        let name = paper_cores().iter().find(|c| c.name == self.name).map(|c| c.name).ok_or_else(
            || WireError::Corrupt(format!("unknown analog core name {:?}", self.name)),
        )?;
        let tests = self
            .tests
            .iter()
            .map(|&(kind, f_low_hz, f_high_hz, sample_rate_hz, cycles, tam_width)| {
                Ok(AnalogTestSpec {
                    kind: decode_analog_kind(kind)?,
                    f_low_hz,
                    f_high_hz,
                    sample_rate_hz,
                    cycles,
                    tam_width,
                })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(AnalogCoreSpec { id, name, resolution_bits: self.resolution_bits, tests })
    }
}

impl WireSoc {
    /// A wire SOC from a core [`MixedSignalSoc`].
    pub fn from_soc(soc: &MixedSignalSoc) -> Self {
        WireSoc {
            name: soc.name.clone(),
            digital_name: soc.digital.name.clone(),
            modules: soc.digital.modules.iter().map(WireModule::from_module).collect(),
            analog: soc.analog.iter().map(WireAnalogCore::from_core).collect(),
        }
    }

    /// The core [`MixedSignalSoc`].
    ///
    /// # Errors
    ///
    /// [`WireError::Corrupt`] when an analog core fails catalog
    /// resolution (see [`WireAnalogCore::to_core`]).
    pub fn to_soc(&self) -> Result<MixedSignalSoc, WireError> {
        let modules = self.modules.iter().map(WireModule::to_module).collect();
        let analog =
            self.analog.iter().map(WireAnalogCore::to_core).collect::<Result<Vec<_>, _>>()?;
        Ok(MixedSignalSoc::new(
            self.name.clone(),
            Soc::new(self.digital_name.clone(), modules),
            analog,
        ))
    }
}

fn analog_kind_code(kind: AnalogTestKind) -> u8 {
    match kind {
        AnalogTestKind::PassbandGain => 0,
        AnalogTestKind::CutoffFrequency => 1,
        AnalogTestKind::Attenuation => 2,
        AnalogTestKind::Iip3 => 3,
        AnalogTestKind::DcOffset => 4,
        AnalogTestKind::PhaseMismatch => 5,
        AnalogTestKind::Thd => 6,
        AnalogTestKind::Gain => 7,
        AnalogTestKind::DynamicRange => 8,
        AnalogTestKind::SlewRate => 9,
    }
}

fn decode_analog_kind(code: u8) -> Result<AnalogTestKind, WireError> {
    Ok(match code {
        0 => AnalogTestKind::PassbandGain,
        1 => AnalogTestKind::CutoffFrequency,
        2 => AnalogTestKind::Attenuation,
        3 => AnalogTestKind::Iip3,
        4 => AnalogTestKind::DcOffset,
        5 => AnalogTestKind::PhaseMismatch,
        6 => AnalogTestKind::Thd,
        7 => AnalogTestKind::Gain,
        8 => AnalogTestKind::DynamicRange,
        9 => AnalogTestKind::SlewRate,
        other => return Err(WireError::Corrupt(format!("unknown analog test kind {other}"))),
    })
}

fn effort_code(effort: Effort) -> u8 {
    match effort {
        Effort::Quick => 0,
        Effort::Standard => 1,
        Effort::Thorough => 2,
    }
}

fn decode_effort(code: u8) -> Result<Effort, WireError> {
    Ok(match code {
        0 => Effort::Quick,
        1 => Effort::Standard,
        2 => Effort::Thorough,
        other => return Err(WireError::Corrupt(format!("unknown effort code {other}"))),
    })
}

fn engine_code(engine: Engine) -> u8 {
    match engine {
        Engine::Skyline => 0,
        Engine::Naive => 1,
        Engine::MaxRects => 2,
        Engine::Guillotine => 3,
        Engine::Portfolio => 4,
    }
}

fn decode_engine(code: u8) -> Result<Engine, WireError> {
    Ok(match code {
        0 => Engine::Skyline,
        1 => Engine::Naive,
        2 => Engine::MaxRects,
        3 => Engine::Guillotine,
        4 => Engine::Portfolio,
        other => return Err(WireError::Corrupt(format!("unknown engine code {other}"))),
    })
}

// ---------------------------------------------------------------------
// Payload reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over one frame's payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn uv(&mut self) -> Result<u64, WireError> {
        Ok(read_uv(self.bytes, &mut self.pos)?)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.uv()?).map_err(|_| WireError::Corrupt("u32 overflow".into()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Reads a collection count, rejecting counts the remaining bytes
    /// cannot possibly hold (`min_bytes` per element, ≥ 1) — the
    /// no-allocation-from-untrusted-lengths guard.
    fn count(&mut self, min_bytes: usize) -> Result<usize, WireError> {
        let n = self.uv()?;
        let cap = (self.remaining() / min_bytes.max(1)) as u64;
        if n > cap {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count(1)?;
        let raw = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError::Corrupt("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------
// Payload encode/decode
// ---------------------------------------------------------------------

impl WireModule {
    fn encode(&self, out: &mut Vec<u8>) {
        write_uv(out, u64::from(self.id));
        write_uv(out, u64::from(self.level));
        write_uv(out, u64::from(self.inputs));
        write_uv(out, u64::from(self.outputs));
        write_uv(out, u64::from(self.bidirs));
        write_uv(out, self.scan_chains.len() as u64);
        for &c in &self.scan_chains {
            write_uv(out, u64::from(c));
        }
        write_uv(out, self.tests.len() as u64);
        for &(patterns, scan_used, tam_used) in &self.tests {
            write_uv(out, patterns);
            out.push(u8::from(scan_used));
            out.push(u8::from(tam_used));
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.u32()?;
        let level = r.u32()?;
        let inputs = r.u32()?;
        let outputs = r.u32()?;
        let bidirs = r.u32()?;
        let n = r.count(1)?;
        let mut scan_chains = Vec::with_capacity(n);
        for _ in 0..n {
            scan_chains.push(r.u32()?);
        }
        let n = r.count(3)?;
        let mut tests = Vec::with_capacity(n);
        for _ in 0..n {
            tests.push((r.uv()?, r.bool()?, r.bool()?));
        }
        Ok(WireModule { id, level, inputs, outputs, bidirs, scan_chains, tests })
    }
}

impl WireAnalogCore {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.id);
        write_string(out, &self.name);
        out.push(self.resolution_bits);
        write_uv(out, self.tests.len() as u64);
        for &(kind, f_low, f_high, rate, cycles, width) in &self.tests {
            out.push(kind);
            write_f64(out, f_low);
            write_f64(out, f_high);
            write_f64(out, rate);
            write_uv(out, cycles);
            write_uv(out, u64::from(width));
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.u8()?;
        let name = r.string()?;
        let resolution_bits = r.u8()?;
        let n = r.count(27)?;
        let mut tests = Vec::with_capacity(n);
        for _ in 0..n {
            tests.push((r.u8()?, r.f64()?, r.f64()?, r.f64()?, r.uv()?, r.u32()?));
        }
        Ok(WireAnalogCore { id, name, resolution_bits, tests })
    }
}

impl WireSoc {
    fn encode(&self, out: &mut Vec<u8>) {
        write_string(out, &self.name);
        write_string(out, &self.digital_name);
        write_uv(out, self.modules.len() as u64);
        for m in &self.modules {
            m.encode(out);
        }
        write_uv(out, self.analog.len() as u64);
        for c in &self.analog {
            c.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.string()?;
        let digital_name = r.string()?;
        let n = r.count(7)?;
        let mut modules = Vec::with_capacity(n);
        for _ in 0..n {
            modules.push(WireModule::decode(r)?);
        }
        let n = r.count(4)?;
        let mut analog = Vec::with_capacity(n);
        for _ in 0..n {
            analog.push(WireAnalogCore::decode(r)?);
        }
        Ok(WireSoc { name, digital_name, modules, analog })
    }
}

impl WireEdit {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireEdit::ReplaceAnalog { index, core } => {
                out.push(0);
                write_uv(out, *index);
                core.encode(out);
            }
            WireEdit::ReplaceDigital { id, module } => {
                out.push(1);
                write_uv(out, u64::from(*id));
                module.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => WireEdit::ReplaceAnalog { index: r.uv()?, core: WireAnalogCore::decode(r)? },
            1 => WireEdit::ReplaceDigital { id: r.u32()?, module: WireModule::decode(r)? },
            other => return Err(WireError::Corrupt(format!("unknown edit tag {other}"))),
        })
    }
}

impl WireSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        let widths = match self {
            WireSpec::Single { width } => {
                out.push(0);
                write_uv(out, u64::from(*width));
                return;
            }
            WireSpec::Table { widths } => {
                out.push(1);
                widths
            }
            WireSpec::BestWidth { widths } => {
                out.push(2);
                widths
            }
        };
        write_uv(out, widths.len() as u64);
        for &w in widths {
            write_uv(out, u64::from(w));
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        if tag == 0 {
            return Ok(WireSpec::Single { width: r.u32()? });
        }
        let n = r.count(1)?;
        let mut widths = Vec::with_capacity(n);
        for _ in 0..n {
            widths.push(r.u32()?);
        }
        Ok(match tag {
            1 => WireSpec::Table { widths },
            2 => WireSpec::BestWidth { widths },
            other => return Err(WireError::Corrupt(format!("unknown spec tag {other}"))),
        })
    }
}

impl WireConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        write_uv(out, self.n_cores);
        write_uv(out, self.groups.len() as u64);
        for g in &self.groups {
            write_uv(out, g.len() as u64);
            for &c in g {
                write_uv(out, c);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n_cores = r.uv()?;
        let n = r.count(1)?;
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.count(1)?;
            let mut g = Vec::with_capacity(len);
            for _ in 0..len {
                g.push(r.uv()?);
            }
            groups.push(g);
        }
        Ok(WireConfig { n_cores, groups })
    }
}

impl WireSocRef {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireSocRef::Registered(id) => {
                out.push(0);
                write_uv(out, *id);
            }
            WireSocRef::Inline(soc) => {
                out.push(1);
                soc.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => WireSocRef::Registered(r.uv()?),
            1 => WireSocRef::Inline(WireSoc::decode(r)?),
            other => return Err(WireError::Corrupt(format!("unknown soc-ref tag {other}"))),
        })
    }
}

impl WireJob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.soc.encode(out);
        self.spec.encode(out);
        match &self.configs {
            None => out.push(0),
            Some(configs) => {
                out.push(1);
                write_uv(out, configs.len() as u64);
                for c in configs {
                    c.encode(out);
                }
            }
        }
        write_f64(out, self.w_time);
        write_f64(out, self.w_area);
        write_f64(out, self.delta);
        out.push(effort_code(self.effort));
        out.push(engine_code(self.engine));
        out.push(self.priority);
        match self.deadline_checks {
            None => out.push(0),
            Some(checks) => {
                out.push(1);
                write_uv(out, checks);
            }
        }
        out.push(u8::from(self.cancelled));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let soc = WireSocRef::decode(r)?;
        let spec = WireSpec::decode(r)?;
        let configs = match r.u8()? {
            0 => None,
            1 => {
                let n = r.count(2)?;
                let mut configs = Vec::with_capacity(n);
                for _ in 0..n {
                    configs.push(WireConfig::decode(r)?);
                }
                Some(configs)
            }
            other => return Err(WireError::Corrupt(format!("invalid option byte {other}"))),
        };
        let w_time = r.f64()?;
        let w_area = r.f64()?;
        let delta = r.f64()?;
        let effort = decode_effort(r.u8()?)?;
        let engine = decode_engine(r.u8()?)?;
        let priority = match r.u8()? {
            p @ 0..=2 => p,
            other => return Err(WireError::Corrupt(format!("unknown priority {other}"))),
        };
        let deadline_checks = match r.u8()? {
            0 => None,
            1 => Some(r.uv()?),
            other => return Err(WireError::Corrupt(format!("invalid option byte {other}"))),
        };
        let cancelled = r.bool()?;
        Ok(WireJob {
            soc,
            spec,
            configs,
            w_time,
            w_area,
            delta,
            effort,
            engine,
            priority,
            deadline_checks,
            cancelled,
        })
    }
}

impl WireOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireOutcome::Completed(result) => {
                out.push(0);
                result.encode(out);
            }
            WireOutcome::DeadlineExceeded => out.push(1),
            WireOutcome::Cancelled => out.push(2),
            WireOutcome::Overloaded { cap, batch } => {
                out.push(3);
                write_uv(out, *cap);
                write_uv(out, *batch);
            }
            WireOutcome::Rejected { error } => {
                out.push(4);
                write_string(out, error);
            }
            WireOutcome::Failed { message } => {
                out.push(5);
                write_string(out, message);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => WireOutcome::Completed(WireResult::decode(r)?),
            1 => WireOutcome::DeadlineExceeded,
            2 => WireOutcome::Cancelled,
            3 => WireOutcome::Overloaded { cap: r.uv()?, batch: r.uv()? },
            4 => WireOutcome::Rejected { error: r.string()? },
            5 => WireOutcome::Failed { message: r.string()? },
            other => return Err(WireError::Corrupt(format!("unknown outcome tag {other}"))),
        })
    }
}

impl WireResult {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireResult::Plan { config, tam_width, makespan, cost_bits, schedule } => {
                out.push(0);
                write_string(out, config);
                write_uv(out, u64::from(*tam_width));
                write_uv(out, *makespan);
                write_uv(out, *cost_bits);
                write_uv(out, schedule.len() as u64);
                for e in schedule {
                    write_uv(out, e.job);
                    write_uv(out, u64::from(e.width));
                    write_uv(out, e.start);
                    write_uv(out, e.end);
                }
            }
            WireResult::Table {
                config,
                winner_width,
                winner_makespan,
                cost_bits,
                cells,
                packed,
            } => {
                out.push(1);
                write_string(out, config);
                write_uv(out, u64::from(*winner_width));
                write_uv(out, *winner_makespan);
                write_uv(out, *cost_bits);
                write_uv(out, *cells);
                write_uv(out, *packed);
            }
            WireResult::BestWidth { config, width, makespan } => {
                out.push(2);
                write_string(out, config);
                write_uv(out, u64::from(*width));
                write_uv(out, *makespan);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => {
                let config = r.string()?;
                let tam_width = r.u32()?;
                let makespan = r.uv()?;
                let cost_bits = r.uv()?;
                let n = r.count(4)?;
                let mut schedule = Vec::with_capacity(n);
                for _ in 0..n {
                    schedule.push(WireEntry {
                        job: r.uv()?,
                        width: r.u32()?,
                        start: r.uv()?,
                        end: r.uv()?,
                    });
                }
                WireResult::Plan { config, tam_width, makespan, cost_bits, schedule }
            }
            1 => WireResult::Table {
                config: r.string()?,
                winner_width: r.u32()?,
                winner_makespan: r.uv()?,
                cost_bits: r.uv()?,
                cells: r.uv()?,
                packed: r.uv()?,
            },
            2 => WireResult::BestWidth { config: r.string()?, width: r.u32()?, makespan: r.uv()? },
            other => return Err(WireError::Corrupt(format!("unknown result tag {other}"))),
        })
    }
}

impl WireStats {
    fn encode(&self, out: &mut Vec<u8>) {
        write_uv(out, self.shard);
        write_uv(out, self.jobs_submitted);
        write_uv(out, self.jobs_shed);
        write_uv(out, self.jobs_failed);
        write_uv(out, self.schedule_hits);
        write_uv(out, self.schedule_misses);
        write_uv(out, self.session_hits);
        write_uv(out, self.session_misses);
        write_uv(out, self.live_sessions);
        write_uv(out, self.snapshots_persisted);
        write_uv(out, self.shard_exports_reused);
        write_uv(out, self.latency.len() as u64);
        for l in &self.latency {
            write_string(out, &l.outcome);
            write_uv(out, l.count);
            write_uv(out, l.p50_us);
            write_uv(out, l.p99_us);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard = r.uv()?;
        let jobs_submitted = r.uv()?;
        let jobs_shed = r.uv()?;
        let jobs_failed = r.uv()?;
        let schedule_hits = r.uv()?;
        let schedule_misses = r.uv()?;
        let session_hits = r.uv()?;
        let session_misses = r.uv()?;
        let live_sessions = r.uv()?;
        let snapshots_persisted = r.uv()?;
        let shard_exports_reused = r.uv()?;
        let n = r.count(4)?;
        let mut latency = Vec::with_capacity(n);
        for _ in 0..n {
            latency.push(WireLatency {
                outcome: r.string()?,
                count: r.uv()?,
                p50_us: r.uv()?,
                p99_us: r.uv()?,
            });
        }
        Ok(WireStats {
            shard,
            jobs_submitted,
            jobs_shed,
            jobs_failed,
            schedule_hits,
            schedule_misses,
            session_hits,
            session_misses,
            live_sessions,
            snapshots_persisted,
            shard_exports_reused,
            latency,
        })
    }
}

impl Request {
    /// Encodes the payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Register { tenant, soc } => {
                write_uv(&mut out, 1);
                write_string(&mut out, tenant);
                soc.encode(&mut out);
            }
            Request::Submit { tenant, jobs } => {
                write_uv(&mut out, 2);
                write_string(&mut out, tenant);
                write_uv(&mut out, jobs.len() as u64);
                for job in jobs {
                    job.encode(&mut out);
                }
            }
            Request::Revise { tenant, soc_id, edits } => {
                write_uv(&mut out, 3);
                write_string(&mut out, tenant);
                write_uv(&mut out, *soc_id);
                write_uv(&mut out, edits.len() as u64);
                for edit in edits {
                    edit.encode(&mut out);
                }
            }
            Request::Stats { tenant } => {
                write_uv(&mut out, 4);
                write_string(&mut out, tenant);
            }
            Request::SnapshotNow => write_uv(&mut out, 5),
            Request::Shutdown => write_uv(&mut out, 6),
        }
        out
    }

    /// Decodes a request payload (no frame header).
    ///
    /// # Errors
    ///
    /// A structured [`WireError`]; never panics on hostile bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let request = match r.uv()? {
            1 => Request::Register { tenant: r.string()?, soc: WireSoc::decode(&mut r)? },
            2 => {
                let tenant = r.string()?;
                let n = r.count(2)?;
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    jobs.push(WireJob::decode(&mut r)?);
                }
                Request::Submit { tenant, jobs }
            }
            3 => {
                let tenant = r.string()?;
                let soc_id = r.uv()?;
                let n = r.count(2)?;
                let mut edits = Vec::with_capacity(n);
                for _ in 0..n {
                    edits.push(WireEdit::decode(&mut r)?);
                }
                Request::Revise { tenant, soc_id, edits }
            }
            4 => Request::Stats { tenant: r.string()? },
            5 => Request::SnapshotNow,
            6 => Request::Shutdown,
            tag => return Err(WireError::UnknownMessage(tag)),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Registered { soc_id } => {
                write_uv(&mut out, 1);
                write_uv(&mut out, *soc_id);
            }
            Response::Outcomes(outcomes) => {
                write_uv(&mut out, 2);
                write_uv(&mut out, outcomes.len() as u64);
                for o in outcomes {
                    o.encode(&mut out);
                }
            }
            Response::Revised { soc_id, revision } => {
                write_uv(&mut out, 3);
                write_uv(&mut out, *soc_id);
                write_uv(&mut out, *revision);
            }
            Response::Stats(stats) => {
                write_uv(&mut out, 4);
                stats.encode(&mut out);
            }
            Response::SnapshotDone { persisted } => {
                write_uv(&mut out, 5);
                write_uv(&mut out, *persisted);
            }
            Response::ShuttingDown => write_uv(&mut out, 6),
            Response::Error { message } => {
                write_uv(&mut out, 7);
                write_string(&mut out, message);
            }
        }
        out
    }

    /// Decodes a response payload (no frame header).
    ///
    /// # Errors
    ///
    /// A structured [`WireError`]; never panics on hostile bytes.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let response = match r.uv()? {
            1 => Response::Registered { soc_id: r.uv()? },
            2 => {
                let n = r.count(1)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(WireOutcome::decode(&mut r)?);
                }
                Response::Outcomes(outcomes)
            }
            3 => Response::Revised { soc_id: r.uv()?, revision: r.uv()? },
            4 => Response::Stats(WireStats::decode(&mut r)?),
            5 => Response::SnapshotDone { persisted: r.uv()? },
            6 => Response::ShuttingDown,
            7 => Response::Error { message: r.string()? },
            tag => return Err(WireError::UnknownMessage(tag)),
        };
        r.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(WIRE_MAGIC);
    header.push(WIRE_VERSION);
    header.push(kind);
    write_uv(&mut header, payload.len() as u64);
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame of the expected `kind`, returning its payload.
fn read_frame(r: &mut impl Read, want_kind: u8) -> Result<Vec<u8>, WireError> {
    let mut head = [0u8; 6];
    r.read_exact(&mut head)?;
    if &head[..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    if head[4] != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(head[4]));
    }
    let kind = head[5];
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(WireError::UnexpectedKind(kind));
    }
    // The length varint comes off the stream byte by byte through the
    // same strict decoder the payload uses.
    let mut len_bytes = Vec::with_capacity(10);
    let len = loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        len_bytes.push(b[0]);
        if b[0] & 0x80 == 0 {
            let mut pos = 0;
            break read_uv(&len_bytes, &mut pos)?;
        }
        if len_bytes.len() > 10 {
            return Err(WireError::Corrupt("frame length varint longer than 10 bytes".into()));
        }
    };
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    // Chunked fill: allocation tracks bytes actually received, so a
    // lying length costs at most one chunk beyond the stream's content.
    let mut payload = Vec::new();
    let mut remaining = len as usize;
    let mut chunk = [0u8; READ_CHUNK];
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        r.read_exact(&mut chunk[..take])?;
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    if kind != want_kind {
        return Err(WireError::UnexpectedKind(kind));
    }
    Ok(payload)
}

/// Writes one framed request.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_request(w: &mut impl Write, request: &Request) -> io::Result<()> {
    write_frame(w, KIND_REQUEST, &request.encode_payload())
}

/// Reads one framed request.
///
/// # Errors
///
/// A structured [`WireError`]; never panics on hostile bytes.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    Request::decode_payload(&read_frame(r, KIND_REQUEST)?)
}

/// Writes one framed response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(w: &mut impl Write, response: &Response) -> io::Result<()> {
    write_frame(w, KIND_RESPONSE, &response.encode_payload())
}

/// Reads one framed response.
///
/// # Errors
///
/// A structured [`WireError`]; never panics on hostile bytes.
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    Response::decode_payload(&read_frame(r, KIND_RESPONSE)?)
}

/// A request's full framed bytes (header + payload) — the fuzz suite's
/// seed corpus.
pub fn frame_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_request(&mut out, request).expect("Vec<u8> writes are infallible");
    out
}

/// A response's full framed bytes (header + payload).
pub fn frame_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    write_response(&mut out, response).expect("Vec<u8> writes are infallible");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_soc() -> WireSoc {
        WireSoc::from_soc(&MixedSignalSoc::d695m())
    }

    fn demo_job() -> WireJob {
        let mut job = WireJob::new(WireSocRef::Inline(demo_soc()), WireSpec::Single { width: 16 });
        job.priority = 2;
        job.deadline_checks = Some(10_000);
        job
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        let requests = vec![
            Request::Register { tenant: "acme".into(), soc: demo_soc() },
            Request::Submit { tenant: "acme".into(), jobs: vec![demo_job()] },
            Request::Revise {
                tenant: "acme".into(),
                soc_id: 7,
                edits: vec![WireEdit::ReplaceAnalog {
                    index: 0,
                    core: WireAnalogCore::from_core(&paper_cores()[2]),
                }],
            },
            Request::Stats { tenant: "acme".into() },
            Request::SnapshotNow,
            Request::Shutdown,
        ];
        for request in requests {
            let bytes = frame_request(&request);
            let decoded = read_request(&mut &bytes[..]).expect("roundtrip");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_roundtrip_through_frames() {
        let responses = vec![
            Response::Registered { soc_id: 1 },
            Response::Outcomes(vec![
                WireOutcome::DeadlineExceeded,
                WireOutcome::Cancelled,
                WireOutcome::Overloaded { cap: 4, batch: 9 },
                WireOutcome::Rejected { error: "nope".into() },
                WireOutcome::Failed { message: "boom".into() },
                WireOutcome::Completed(WireResult::Plan {
                    config: "{A,B}".into(),
                    tam_width: 16,
                    makespan: 123,
                    cost_bits: 0.5f64.to_bits(),
                    schedule: vec![WireEntry { job: 0, width: 8, start: 0, end: 123 }],
                }),
            ]),
            Response::Revised { soc_id: 7, revision: 2 },
            Response::Stats(WireStats {
                shard: 3,
                jobs_submitted: 10,
                latency: vec![WireLatency {
                    outcome: "completed".into(),
                    count: 10,
                    p50_us: 127,
                    p99_us: 1023,
                }],
                ..WireStats::default()
            }),
            Response::SnapshotDone { persisted: 2 },
            Response::ShuttingDown,
            Response::Error { message: "unknown soc".into() },
        ];
        for response in responses {
            let bytes = frame_response(&response);
            let decoded = read_response(&mut &bytes[..]).expect("roundtrip");
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn inline_socs_resolve_back_to_core_types() {
        let soc = MixedSignalSoc::d695m();
        let wire = WireSoc::from_soc(&soc);
        let back = wire.to_soc().expect("catalog names resolve");
        assert_eq!(back.name, soc.name);
        assert_eq!(back.digital, soc.digital);
        assert_eq!(back.analog, soc.analog);
    }

    #[test]
    fn hostile_values_decode_to_structured_errors() {
        // Unknown catalog name.
        let mut core = WireAnalogCore::from_core(&paper_cores()[0]);
        core.name = "not a paper core".into();
        assert!(matches!(core.to_core(), Err(WireError::Corrupt(_))));
        // Bad weights and bad partitions fail instead of panicking.
        assert!(checked_weights(0.9, 0.2).is_err());
        assert!(checked_weights(-0.5, 1.5).is_err());
        let config = WireConfig { n_cores: 3, groups: vec![vec![0, 1], vec![1, 2]] };
        assert!(matches!(config.to_config(), Err(WireError::Corrupt(_))));
        let config = WireConfig { n_cores: 3, groups: vec![vec![0, 1]] };
        assert!(config.to_config().is_err());
        let config = WireConfig { n_cores: u64::MAX, groups: vec![] };
        assert!(config.to_config().is_err());
        // A frame claiming more payload than the cap is rejected before
        // any allocation.
        let mut bytes = frame_request(&Request::SnapshotNow);
        bytes.truncate(6);
        write_uv(&mut bytes, MAX_FRAME + 1);
        assert!(matches!(read_request(&mut &bytes[..]), Err(WireError::FrameTooLarge(_))));
        // Desynchronized peers: a response frame where a request is
        // expected.
        let bytes = frame_response(&Response::ShuttingDown);
        assert!(matches!(read_request(&mut &bytes[..]), Err(WireError::UnexpectedKind(2))));
    }

    #[test]
    fn valid_configs_and_weights_convert() {
        let config = WireConfig::from_config(&SharingConfig::new(3, vec![vec![0, 2], vec![1]]));
        let back = config.to_config().expect("valid partition");
        assert_eq!(WireConfig::from_config(&back), config);
        assert_eq!(checked_weights(0.5, 0.5).unwrap(), CostWeights::balanced());
    }
}
