//! A loopback load generator for the `msocd` protocol — and the
//! determinism oracle the acceptance gate runs.
//!
//! [`run_loopback`] streams a deterministic mixed-priority trace at a
//! live server from several concurrent TCP clients, recording
//! per-batch latency into per-thread histograms (merged at the end, no
//! shared cache line on the hot path). [`serial_replay`] runs the same
//! trace through [`execute_jobs`] on a fresh in-process service, one
//! batch at a time, and both sides reduce every batch to its canonical
//! wire encoding ([`WireOutcome::encode_batch`]) — so
//! [`LoadReport::replay_identical`] is a byte-for-byte claim: N
//! clients racing over TCP produce exactly the outcomes a serial
//! replay does. The repo's warm-equals-cold cache property is what
//! makes that hold under arbitrary interleavings.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use msoc_core::{LatencyHistogram, PlanService};
use msoc_tam::StableHasher;

use crate::client::Client;
use crate::server::execute_jobs;
use crate::wire::{WireError, WireJob, WireOutcome, WireSoc, WireSocRef, WireSpec};

/// What a loopback run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent TCP clients used.
    pub clients: usize,
    /// Jobs submitted across all batches.
    pub jobs: u64,
    /// Wall time of the loaded phase in microseconds.
    pub elapsed_us: u64,
    /// Jobs per second over the loaded phase.
    pub jobs_per_sec: f64,
    /// Median per-batch round-trip in microseconds.
    pub p50_us: u64,
    /// 99th-percentile per-batch round-trip in microseconds.
    pub p99_us: u64,
    /// Whether every batch's outcomes matched the serial in-process
    /// replay byte for byte.
    pub replay_identical: bool,
    /// Stable digest over every batch's canonical outcome bytes (trace
    /// order) — two runs with equal digests saw equal outcomes.
    pub outcomes_digest: u64,
}

/// Deterministic PRNG (splitmix64) so traces are reproducible without
/// any entropy source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, from: &[T]) -> T {
        from[(self.next() % from.len() as u64) as usize]
    }
}

/// Builds a deterministic mixed-priority trace: `batches` batches of
/// `jobs_per_batch` jobs over the inline paper SOC — single-width
/// plans, tables and best-width sweeps across all three priorities,
/// with an occasional pre-cancelled job (cancellation observes its
/// token at a progress boundary, so it is deterministic too).
///
/// The trace deliberately contains **no deadlines**: a check budget
/// firing depends on how much work the planner still has to do, which
/// differs between a warm and a cold cache — and the determinism
/// oracle replays this trace against a cold service.
pub fn build_trace(batches: usize, jobs_per_batch: usize, seed: u64) -> Vec<Vec<WireJob>> {
    let soc = WireSoc::from_soc(&msoc_core::MixedSignalSoc::d695m());
    let mut rng = Rng(seed);
    let widths = [16u32, 20, 24, 28, 32];
    (0..batches)
        .map(|_| {
            (0..jobs_per_batch)
                .map(|_| {
                    let spec = match rng.next() % 10 {
                        // Mostly single-width plans (the hot path), a
                        // few multi-cell shapes for coverage.
                        0 => WireSpec::Table { widths: vec![16, 24] },
                        1 => WireSpec::BestWidth { widths: vec![16, 24, 32] },
                        _ => WireSpec::Single { width: rng.pick(&widths) },
                    };
                    let mut job = WireJob::new(WireSocRef::Inline(soc.clone()), spec);
                    job.priority = (rng.next() % 3) as u8;
                    job.cancelled = rng.next() % 16 == 0;
                    job
                })
                .collect()
        })
        .collect()
}

/// One worker's contribution: its latency histogram plus the canonical
/// outcome bytes of every batch it carried, tagged by trace index.
type WorkerOutput = (LatencyHistogram, Vec<(usize, Vec<u8>)>);

/// Streams `trace` at the server from `clients` concurrent TCP
/// connections (batches dealt round-robin), then replays it serially
/// in-process and compares canonical outcome bytes batch by batch.
///
/// All clients submit as `tenant`, so the whole trace lands on one
/// shard — the determinism claim is about concurrent interleaving on
/// shared caches, which needs the sharing.
///
/// # Errors
///
/// Transport errors from any client thread.
pub fn run_loopback(
    addr: SocketAddr,
    tenant: &str,
    trace: &[Vec<WireJob>],
    clients: usize,
) -> Result<LoadReport, WireError> {
    let clients = clients.max(1);
    let started = Instant::now();
    let mut results: Vec<Option<Vec<u8>>> = vec![None; trace.len()];
    let mut latency = LatencyHistogram::new();

    let worker_outputs = std::thread::scope(|scope| -> Result<Vec<WorkerOutput>, WireError> {
        let mut handles = Vec::with_capacity(clients);
        for worker in 0..clients {
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr, tenant)?;
                let mut histogram = LatencyHistogram::new();
                let mut encoded = Vec::new();
                for (index, batch) in
                    trace.iter().enumerate().filter(|(i, _)| i % clients == worker)
                {
                    let sent = Instant::now();
                    let outcomes = client.submit(batch.clone())?;
                    let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    histogram.record(us);
                    encoded.push((index, WireOutcome::encode_batch(&outcomes)));
                }
                Ok::<_, WireError>((histogram, encoded))
            }));
        }
        handles.into_iter().map(|h| h.join().expect("loadgen worker does not panic")).collect()
    })?;
    let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    for (histogram, encoded) in worker_outputs {
        latency.merge(&histogram);
        for (index, bytes) in encoded {
            results[index] = Some(bytes);
        }
    }
    let results: Vec<Vec<u8>> =
        results.into_iter().map(|r| r.expect("every batch was submitted")).collect();

    // The oracle: same trace, fresh service, one batch at a time.
    let serial = serial_replay(trace);
    let replay_identical = serial == results;

    let mut digest = StableHasher::new();
    for bytes in &results {
        digest.write_u64(bytes.len() as u64);
        digest.write_bytes(bytes);
    }
    let jobs: u64 = trace.iter().map(|b| b.len() as u64).sum();
    Ok(LoadReport {
        clients,
        jobs,
        elapsed_us,
        jobs_per_sec: jobs as f64 / (elapsed_us.max(1) as f64 / 1e6),
        p50_us: latency.quantile(0.5),
        p99_us: latency.quantile(0.99),
        replay_identical,
        outcomes_digest: digest.finish(),
    })
}

/// Replays `trace` on a fresh in-process [`PlanService`], batch by
/// batch in order, returning each batch's canonical outcome bytes —
/// the oracle [`run_loopback`] compares against.
pub fn serial_replay(trace: &[Vec<WireJob>]) -> Vec<Vec<u8>> {
    let service = PlanService::new();
    let registry = HashMap::new();
    trace
        .iter()
        .map(|batch| WireOutcome::encode_batch(&execute_jobs(&service, &registry, batch)))
        .collect()
}
