//! `msoc_net`: the sharded multi-tenant plan daemon and its wire
//! protocol.
//!
//! The crate turns the in-process [`PlanService`](msoc_core::PlanService)
//! into a network service without changing any of its semantics:
//!
//! - [`wire`] — a hand-rolled length-prefixed binary protocol built on
//!   the same strict varint codec the snapshot format uses. Decoding
//!   untrusted bytes returns structured [`WireError`]s and never panics
//!   or allocates from an untrusted length.
//! - [`server`] — [`serve`] owns N service shards keyed by tenant
//!   fingerprint, applies admission and queue-depth backpressure
//!   (overload sheds lowest-priority work as structured `Overloaded`
//!   outcomes), drives a crash-safe
//!   [`SnapshotDaemon`](msoc_core::SnapshotDaemon) per shard from a
//!   poll ticker, and recovers every shard from its newest intact
//!   snapshot generation at boot.
//! - [`client`] — a blocking, reconnect-aware [`Client`].
//! - [`loadgen`] — a deterministic loopback load harness whose
//!   acceptance claim is byte-identity: concurrent TCP clients produce
//!   exactly the outcomes a serial in-process replay does.
//!
//! The `msocd` binary wraps [`serve`] behind a small CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::Client;
pub use loadgen::{build_trace, run_loopback, serial_replay, LoadReport};
pub use server::{execute_jobs, serve, tenant_shard, ServerConfig, ServerReport, ShardReport};
pub use wire::{
    frame_request, frame_response, read_request, read_response, write_request, write_response,
    Request, Response, WireAnalogCore, WireError, WireJob, WireOutcome, WireSoc, WireSocRef,
    WireSpec, WireStats,
};
