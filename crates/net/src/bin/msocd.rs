//! `msocd` — the mixed-signal plan daemon.
//!
//! ```text
//! msocd [--addr HOST:PORT] [--shards N] [--store DIR]
//!       [--tick-ms MS] [--admission-cap N] [--queue-depth N]
//! ```
//!
//! Binds, prints one `listening on <addr>` line (so harnesses can
//! scrape the ephemeral port), and serves until a `Shutdown` frame
//! arrives. With `--store`, every shard recovers from its newest
//! intact snapshot generation at boot and flushes a final generation
//! on graceful shutdown.

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use msoc_net::ServerConfig;

fn usage() -> ExitCode {
    eprintln!(
        "usage: msocd [--addr HOST:PORT] [--shards N] [--store DIR] \
         [--tick-ms MS] [--admission-cap N] [--queue-depth N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:0");
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { return usage() };
        match flag.as_str() {
            "--addr" => addr = value,
            "--shards" => match value.parse() {
                Ok(n) => config.shards = n,
                Err(_) => return usage(),
            },
            "--store" => config.store_root = Some(value.into()),
            "--tick-ms" => match value.parse() {
                Ok(ms) => config.snapshot_tick = Duration::from_millis(ms),
                Err(_) => return usage(),
            },
            "--admission-cap" => match value.parse() {
                Ok(n) => config.admission_cap = Some(n),
                Err(_) => return usage(),
            },
            "--queue-depth" => match value.parse() {
                Ok(n) => config.queue_depth_cap = Some(n),
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("msocd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(bound) => println!("listening on {bound}"),
        Err(e) => {
            eprintln!("msocd: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }

    match msoc_net::serve(listener, &config) {
        Ok(report) => {
            for (i, shard) in report.shards.iter().enumerate() {
                println!(
                    "shard {i}: {} jobs, {} shed, {} generations persisted, \
                     {} shard exports reused",
                    shard.stats.jobs_submitted,
                    shard.stats.jobs_shed,
                    shard.generations_persisted,
                    shard.shard_exports_reused,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("msocd: {e}");
            ExitCode::FAILURE
        }
    }
}
