//! A blocking, reconnect-aware client for the `msocd` protocol.
//!
//! One [`Client`] owns one connection and retries each call once
//! through a fresh connection when the transport drops mid-exchange —
//! enough for a daemon restart between requests. Requests that already
//! reached the server are **not** replayed blindly: only transport
//! errors before a full response trigger the reconnect, and the retried
//! request is idempotent from the service's point of view (planning is
//! cache-keyed, registration mints a fresh id).

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};

use crate::wire::{
    read_response, write_request, Request, Response, WireEdit, WireError, WireJob, WireOutcome,
    WireSoc, WireStats,
};

/// A blocking protocol client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    tenant: String,
    conn: Option<Conn>,
    /// Reconnections performed across the client's lifetime.
    reconnects: u64,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let reader = BufReader::new(stream.try_clone().map_err(WireError::from)?);
        Ok(Conn { reader, writer: BufWriter::new(stream) })
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, WireError> {
        write_request(&mut self.writer, request).map_err(WireError::from)?;
        read_response(&mut self.reader)
    }
}

impl Client {
    /// Connects to `addr`, serving as `tenant` (the shard key).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the server is unreachable.
    pub fn connect(addr: SocketAddr, tenant: impl Into<String>) -> Result<Self, WireError> {
        let conn = Conn::open(addr)?;
        Ok(Client { addr, tenant: tenant.into(), conn: Some(conn), reconnects: 0 })
    }

    /// The tenant this client submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Reconnections performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// One request/response exchange with a single reconnect retry on
    /// transport failure.
    fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(self.addr)?);
            self.reconnects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        match conn.exchange(request) {
            Ok(response) => Ok(response),
            Err(WireError::Io(_)) | Err(WireError::Truncated) => {
                // The transport died; try once more on a fresh
                // connection, then report honestly.
                self.conn = Some(Conn::open(self.addr)?);
                self.reconnects += 1;
                self.conn.as_mut().expect("fresh connection").exchange(request)
            }
            Err(e) => {
                // Protocol-level failures leave the stream position
                // untrustworthy — drop the connection but surface the
                // error unchanged.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Registers a SOC, returning its server-side id.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] when the server
    /// answers with anything but a registration.
    pub fn register(&mut self, soc: WireSoc) -> Result<u64, WireError> {
        match self.call(&Request::Register { tenant: self.tenant.clone(), soc })? {
            Response::Registered { soc_id } => Ok(soc_id),
            other => Err(unexpected(other)),
        }
    }

    /// Submits a batch, returning one outcome per job in input order.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] on a non-outcome
    /// reply.
    pub fn submit(&mut self, jobs: Vec<WireJob>) -> Result<Vec<WireOutcome>, WireError> {
        match self.call(&Request::Submit { tenant: self.tenant.clone(), jobs })? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            other => Err(unexpected(other)),
        }
    }

    /// Applies edits to a registered SOC, returning its new revision.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] on a non-revision
    /// reply.
    pub fn revise(&mut self, soc_id: u64, edits: Vec<WireEdit>) -> Result<u64, WireError> {
        match self.call(&Request::Revise { tenant: self.tenant.clone(), soc_id, edits })? {
            Response::Revised { revision, .. } => Ok(revision),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the tenant's shard statistics.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] on a non-stats
    /// reply.
    pub fn stats(&mut self) -> Result<WireStats, WireError> {
        match self.call(&Request::Stats { tenant: self.tenant.clone() })? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Forces a snapshot of every shard, returning how many persisted a
    /// new generation.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] on an unexpected
    /// reply.
    pub fn snapshot_now(&mut self) -> Result<u64, WireError> {
        match self.call(&Request::SnapshotNow)? {
            Response::SnapshotDone { persisted } => Ok(persisted),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Corrupt`] on an unexpected
    /// reply.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => {
                self.conn = None;
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> WireError {
    match response {
        Response::Error { message } => WireError::Corrupt(format!("server error: {message}")),
        other => WireError::Corrupt(format!("unexpected response {other:?}")),
    }
}
