//! The `msocd` daemon: N [`PlanService`] shards behind one TCP
//! listener.
//!
//! Tenants are sharded by name fingerprint — every request a tenant
//! sends lands on the same shard, so its SOC registrations, cache
//! warmth and statistics are shard-local and two tenants on different
//! shards never contend on a lock. Each shard owns:
//!
//! - a [`PlanService`] (recovered from `shard-<i>/` under the store
//!   root at boot, cold otherwise) with the configured per-batch
//!   admission cap and service-wide queue-depth cap applied, so
//!   overload sheds the lowest-priority work as structured
//!   `Overloaded` responses instead of queueing unboundedly;
//! - a [`SnapshotDaemon`] driven from the ticker thread's poll loop
//!   (differential exports, only dirty service shards re-export) and
//!   flushed once more on graceful shutdown;
//! - a SOC registry ([`Request::Register`] / [`Request::Revise`])
//!   and per-outcome-class latency histograms served back through
//!   [`Request::Stats`].
//!
//! Connections are thread-per-client inside one [`std::thread::scope`],
//! so every shard borrow is checked and the listener cannot outlive the
//! services it serves.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use msoc_core::{
    recover, CoreEdit, DaemonConfig, Deadline, DirStore, ExportOutcome, JobBuilder,
    LatencyHistogram, PlanService, Priority, ServiceStats, SnapshotDaemon, SocHandle,
};
use msoc_tam::StableHasher;

use crate::wire::{
    checked_weights, read_request, write_response, Request, Response, WireError, WireJob,
    WireLatency, WireOutcome, WireSocRef, WireStats,
};

/// Outcome classes with a dedicated latency histogram, in histogram
/// index order.
const OUTCOME_CLASSES: [&str; 4] = ["completed", "interrupted", "rejected", "failed"];

/// How the daemon serves: shard count, persistence, admission control
/// and the snapshot cadence.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tenant shards — independent [`PlanService`]s (at least 1).
    pub shards: usize,
    /// Snapshot root; each shard persists under `shard-<i>/` and
    /// recovers from it at boot. `None` = in-memory only.
    pub store_root: Option<PathBuf>,
    /// Per-batch admission cap applied to every shard
    /// ([`PlanService::with_admission_cap`]).
    pub admission_cap: Option<usize>,
    /// Service-wide queue-depth cap applied to every shard
    /// ([`PlanService::with_queue_depth_cap`]).
    pub queue_depth_cap: Option<usize>,
    /// Ticker cadence for the per-shard snapshot daemons.
    pub snapshot_tick: Duration,
    /// Export a final generation per shard on graceful shutdown. Turn
    /// off to simulate a crash (the kill-mid-load recovery drill).
    pub flush_on_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            store_root: None,
            admission_cap: None,
            queue_depth_cap: None,
            snapshot_tick: Duration::from_millis(25),
            flush_on_shutdown: true,
        }
    }
}

/// What one shard did over the server's lifetime (in [`ServerReport`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// The shard's final service statistics.
    pub stats: ServiceStats,
    /// Snapshot generations the shard's daemon persisted.
    pub generations_persisted: u64,
    /// Service shards the daemon's differential exporter reused.
    pub shard_exports_reused: u64,
}

/// What [`serve`] did, returned after the listener drains.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Per-shard accounting, shard index order.
    pub shards: Vec<ShardReport>,
}

/// The tenant → shard map: stable fingerprint of the tenant name,
/// reduced mod the shard count. Exposed so tests and clients can
/// predict placement.
pub fn tenant_shard(tenant: &str, shards: usize) -> usize {
    let mut h = StableHasher::new();
    h.write_bytes(tenant.as_bytes());
    (h.finish() % shards.max(1) as u64) as usize
}

/// One shard's serving state (registry ids are shard-local).
struct ShardRuntime<'a, 'b> {
    service: &'a PlanService,
    daemon: Option<Mutex<SnapshotDaemon<'b, DirStore>>>,
    registry: Mutex<HashMap<u64, SocHandle>>,
    next_soc_id: AtomicU64,
    latency: Mutex<[LatencyHistogram; OUTCOME_CLASSES.len()]>,
}

impl<'a, 'b> ShardRuntime<'a, 'b> {
    fn new(service: &'a PlanService, daemon: Option<SnapshotDaemon<'b, DirStore>>) -> Self {
        ShardRuntime {
            service,
            daemon: daemon.map(Mutex::new),
            registry: Mutex::new(HashMap::new()),
            next_soc_id: AtomicU64::new(1),
            latency: Mutex::new([LatencyHistogram::new(); OUTCOME_CLASSES.len()]),
        }
    }
}

fn class_index(class: &str) -> usize {
    OUTCOME_CLASSES.iter().position(|&c| c == class).unwrap_or(OUTCOME_CLASSES.len() - 1)
}

/// Builds and runs a batch of wire jobs on a service, producing the
/// canonical wire outcomes in input order.
///
/// This is **the** submission path: the TCP dispatch layer and the
/// loadgen's serial in-process replay both call it, so "bit-identical
/// outcomes" compares two runs of the same code over the same inputs —
/// never two reimplementations. Jobs that fail wire-level validation
/// (bad weights, bad partitions, unknown registered ids) become
/// `Rejected` outcomes at their position without disturbing siblings,
/// exactly like server-side admission does.
pub fn execute_jobs(
    service: &PlanService,
    registry: &HashMap<u64, SocHandle>,
    jobs: &[WireJob],
) -> Vec<WireOutcome> {
    let mut outcomes: Vec<Option<WireOutcome>> = vec![None; jobs.len()];
    let mut built = Vec::with_capacity(jobs.len());
    let mut positions = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        match build_job(registry, job) {
            Ok(core_job) => {
                built.push(core_job);
                positions.push(i);
            }
            Err(e) => outcomes[i] = Some(WireOutcome::Rejected { error: e.to_string() }),
        }
    }
    let ran = service.submit(&built);
    for (position, outcome) in positions.into_iter().zip(&ran) {
        outcomes[position] = Some(WireOutcome::from_outcome(outcome));
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every job slot is filled by validation or submission"))
        .collect()
}

/// Builds one core job from its wire form, resolving registered SOC
/// ids through the shard's registry.
fn build_job(
    registry: &HashMap<u64, SocHandle>,
    job: &WireJob,
) -> Result<msoc_core::Job, WireError> {
    let mut builder = match &job.soc {
        WireSocRef::Registered(id) => {
            let handle = registry
                .get(id)
                .ok_or_else(|| WireError::Corrupt(format!("unknown registered soc id {id}")))?;
            JobBuilder::for_handle(handle)
        }
        WireSocRef::Inline(soc) => JobBuilder::new(soc.to_soc()?),
    };
    builder = match &job.spec {
        crate::wire::WireSpec::Single { width } => builder.single(*width),
        crate::wire::WireSpec::Table { widths } => builder.table(widths.clone()),
        crate::wire::WireSpec::BestWidth { widths } => builder.best_width(widths.clone()),
    };
    if let Some(configs) = &job.configs {
        let configs =
            configs.iter().map(|c| c.to_config()).collect::<Result<Vec<_>, WireError>>()?;
        builder = builder.configs(configs);
    }
    builder = builder
        .weights(checked_weights(job.w_time, job.w_area)?)
        .cost_optimizer_delta(job.delta)
        .priority(match job.priority {
            0 => Priority::Low,
            2 => Priority::High,
            _ => Priority::Normal,
        });
    builder = builder.opts(msoc_core::planner::PlannerOptions {
        effort: job.effort,
        engine: job.engine,
        ..Default::default()
    });
    if let Some(checks) = job.deadline_checks {
        builder = builder.deadline(Deadline::checks(checks));
    }
    if job.cancelled {
        let token = msoc_core::CancelToken::new();
        token.cancel();
        builder = builder.cancel_token(&token);
    }
    builder.build().map_err(|e| WireError::Corrupt(e.to_string()))
}

/// Serves the protocol on `listener` until a [`Request::Shutdown`]
/// frame arrives, then reports what every shard did.
///
/// Boot recovers each shard from `store_root/shard-<i>/` (newest intact
/// generation; tampered ones are quarantined), serving resumes with
/// warm caches, and graceful shutdown flushes one final generation per
/// shard unless `flush_on_shutdown` is off.
///
/// # Errors
///
/// [`WireError::Io`] when the store root or listener address cannot be
/// used. Per-connection protocol errors are answered on that
/// connection and never take the server down.
pub fn serve(listener: TcpListener, config: &ServerConfig) -> Result<ServerReport, WireError> {
    let n_shards = config.shards.max(1);

    // Shard services first — recovery and cap application both consume
    // and return the service by value, so this happens before anything
    // borrows.
    let mut services = Vec::with_capacity(n_shards);
    let mut stores = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let (service, store) = match &config.store_root {
            Some(root) => {
                let store = DirStore::open(root.join(format!("shard-{i}")))
                    .map_err(|e| WireError::Io(e.to_string()))?;
                (recover(&store).service, Some(store))
            }
            None => (PlanService::new(), None),
        };
        let service = match config.admission_cap {
            Some(cap) => service.with_admission_cap(cap),
            None => service,
        };
        let service = match config.queue_depth_cap {
            Some(depth) => service.with_queue_depth_cap(depth),
            None => service,
        };
        services.push(service);
        stores.push(store);
    }

    let stop = AtomicBool::new(false);
    // Runtimes are built before the scope: scoped threads may only
    // borrow from outside it.
    let shards: Vec<ShardRuntime<'_, '_>> = services
        .iter()
        .zip(stores)
        .map(|(service, store)| {
            let daemon = store
                .map(|store| SnapshotDaemon::with_config(service, store, DaemonConfig::default()));
            ShardRuntime::new(service, daemon)
        })
        .collect();
    let report = std::thread::scope(|scope| {
        let shards = &shards;
        let stop = &stop;

        // The ticker drives every shard's snapshot daemon on one
        // cadence; polls are cheap when clean (tick comparison only).
        let tick = config.snapshot_tick;
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick.min(Duration::from_millis(10)));
                for shard in shards {
                    if let Some(daemon) = &shard.daemon {
                        daemon.lock().expect("daemon lock").poll();
                    }
                }
            }
        });

        for stream in listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let Ok(stream) = stream else { continue };
            scope.spawn(move || {
                let _ = handle_connection(stream, shards, stop);
            });
        }
        // Unblocked by the shutdown handler's self-connection; the
        // scope now waits for in-flight connections to drain.
        drop(listener);

        ServerReport {
            shards: shards
                .iter()
                .map(|shard| {
                    let mut generations_persisted = 0;
                    let mut shard_exports_reused = 0;
                    if let Some(daemon) = &shard.daemon {
                        let mut daemon = daemon.lock().expect("daemon lock");
                        if config.flush_on_shutdown {
                            daemon.export_now();
                        }
                        let stats = daemon.stats();
                        generations_persisted = stats.exports_persisted;
                        shard_exports_reused = stats.shard_exports_reused;
                    }
                    ShardReport {
                        stats: shard.service.stats(),
                        generations_persisted,
                        shard_exports_reused,
                    }
                })
                .collect(),
        }
    });
    Ok(report)
}

/// One connection's request loop: decode → dispatch → respond, until
/// the peer disconnects, a protocol error desynchronizes the stream,
/// or a shutdown frame arrives.
fn handle_connection(
    stream: TcpStream,
    shards: &[ShardRuntime<'_, '_>],
    stop: &AtomicBool,
) -> Result<(), WireError> {
    // Server-side, the stream's local address IS the listening socket
    // — the shutdown handler self-connects to it to unblock accept.
    let listener_addr = stream.local_addr().map_err(WireError::from)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(WireError::from)?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            // A clean disconnect surfaces as Truncated at the frame
            // boundary; anything else is answered before closing
            // because the stream position is no longer trustworthy.
            Err(WireError::Truncated) => return Ok(()),
            Err(e) => {
                let _ = write_response(&mut writer, &Response::Error { message: e.to_string() });
                return Err(e);
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(request, shards);
        write_response(&mut writer, &response).map_err(WireError::from)?;
        writer.flush().map_err(WireError::from)?;
        if shutdown {
            stop.store(true, Ordering::Relaxed);
            // Unblock the accept loop so the scope can drain. The
            // accept loop discards the wake-up once `stop` reads true.
            let _ = TcpStream::connect(listener_addr);
            return Ok(());
        }
    }
}

fn dispatch(request: Request, shards: &[ShardRuntime<'_, '_>]) -> Response {
    match request {
        Request::Register { tenant, soc } => {
            let shard = &shards[tenant_shard(&tenant, shards.len())];
            match soc.to_soc() {
                Ok(soc) => {
                    let handle = shard.service.register(soc);
                    let soc_id = shard.next_soc_id.fetch_add(1, Ordering::Relaxed);
                    shard.registry.lock().expect("registry lock").insert(soc_id, handle);
                    Response::Registered { soc_id }
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Submit { tenant, jobs } => {
            let shard = &shards[tenant_shard(&tenant, shards.len())];
            let registry = shard.registry.lock().expect("registry lock").clone();
            let started = Instant::now();
            let outcomes = execute_jobs(shard.service, &registry, &jobs);
            let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            let mut latency = shard.latency.lock().expect("latency lock");
            for outcome in &outcomes {
                latency[class_index(outcome.class())].record(elapsed_us);
            }
            drop(latency);
            Response::Outcomes(outcomes)
        }
        Request::Revise { tenant, soc_id, edits } => {
            let shard = &shards[tenant_shard(&tenant, shards.len())];
            let mut core_edits = Vec::with_capacity(edits.len());
            for edit in &edits {
                let core_edit = match edit {
                    crate::wire::WireEdit::ReplaceAnalog { index, core } => match core.to_core() {
                        Ok(core) => CoreEdit::ReplaceAnalog { index: *index as usize, core },
                        Err(e) => return Response::Error { message: e.to_string() },
                    },
                    crate::wire::WireEdit::ReplaceDigital { id, module } => {
                        CoreEdit::ReplaceDigital { id: *id, module: module.to_module() }
                    }
                };
                core_edits.push(core_edit);
            }
            let mut registry = shard.registry.lock().expect("registry lock");
            let Some(handle) = registry.get(&soc_id) else {
                return Response::Error { message: format!("unknown registered soc id {soc_id}") };
            };
            match handle.revise(&core_edits) {
                Ok(revised) => {
                    let revision = revised.revision();
                    registry.insert(soc_id, revised);
                    Response::Revised { soc_id, revision }
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Stats { tenant } => {
            let index = tenant_shard(&tenant, shards.len());
            let shard = &shards[index];
            let stats = shard.service.stats();
            let (snapshots_persisted, shard_exports_reused) = match &shard.daemon {
                Some(daemon) => {
                    let stats = daemon.lock().expect("daemon lock").stats();
                    (stats.exports_persisted, stats.shard_exports_reused)
                }
                None => (0, 0),
            };
            let latency = shard.latency.lock().expect("latency lock");
            let latency = OUTCOME_CLASSES
                .iter()
                .zip(latency.iter())
                .filter(|(_, h)| h.count() > 0)
                .map(|(&outcome, h)| WireLatency {
                    outcome: outcome.to_string(),
                    count: h.count(),
                    p50_us: h.quantile(0.5),
                    p99_us: h.quantile(0.99),
                })
                .collect();
            Response::Stats(WireStats {
                shard: index as u64,
                jobs_submitted: stats.jobs_submitted,
                jobs_shed: stats.jobs_shed,
                jobs_failed: stats.jobs_failed,
                schedule_hits: stats.schedule_hits,
                schedule_misses: stats.schedule_misses,
                session_hits: stats.session_hits,
                session_misses: stats.session_misses,
                live_sessions: stats.live_sessions,
                snapshots_persisted,
                shard_exports_reused,
                latency,
            })
        }
        Request::SnapshotNow => {
            let mut persisted = 0;
            for shard in shards {
                if let Some(daemon) = &shard.daemon {
                    if let ExportOutcome::Persisted { .. } =
                        daemon.lock().expect("daemon lock").export_now()
                    {
                        persisted += 1;
                    }
                }
            }
            Response::SnapshotDone { persisted }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}
