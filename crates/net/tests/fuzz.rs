//! Protocol robustness: hostile bytes decode to structured errors.
//!
//! Same harness style as the repo's snapshot resilience suite — take
//! real framed messages, then (a) truncate at **every** byte offset and
//! (b) flip bits on a stride across the frame, and require every
//! mutation to decode to a structured [`WireError`]: no panic, no
//! unbounded allocation, no wrong-type success.

use msoc_core::MixedSignalSoc;
use msoc_net::wire::{
    frame_request, frame_response, read_request, read_response, Request, Response, WireAnalogCore,
    WireEdit, WireEntry, WireError, WireJob, WireLatency, WireOutcome, WireResult, WireSoc,
    WireSocRef, WireSpec, WireStats,
};

fn corpus_requests() -> Vec<Request> {
    let soc = WireSoc::from_soc(&MixedSignalSoc::d695m());
    let mut job =
        WireJob::new(WireSocRef::Inline(soc.clone()), WireSpec::Table { widths: vec![16, 24] });
    job.priority = 2;
    job.deadline_checks = Some(500);
    vec![
        Request::Register { tenant: "acme".into(), soc: soc.clone() },
        Request::Submit {
            tenant: "acme".into(),
            jobs: vec![
                job,
                WireJob::new(WireSocRef::Registered(3), WireSpec::Single { width: 16 }),
            ],
        },
        Request::Revise {
            tenant: "acme".into(),
            soc_id: 3,
            edits: vec![WireEdit::ReplaceAnalog {
                index: 1,
                core: WireAnalogCore::from_core(&msoc_analog::paper_cores()[1]),
            }],
        },
        Request::Stats { tenant: "acme".into() },
        Request::SnapshotNow,
        Request::Shutdown,
    ]
}

fn corpus_responses() -> Vec<Response> {
    vec![
        Response::Registered { soc_id: 9 },
        Response::Outcomes(vec![
            WireOutcome::Completed(WireResult::Plan {
                config: "{A,B,C}{D,E}".into(),
                tam_width: 24,
                makespan: 40_000,
                cost_bits: 0.37f64.to_bits(),
                schedule: vec![
                    WireEntry { job: 0, width: 16, start: 0, end: 100 },
                    WireEntry { job: 1, width: 8, start: 100, end: 420 },
                ],
            }),
            WireOutcome::Overloaded { cap: 2, batch: 7 },
            WireOutcome::Failed { message: "panic: synthetic".into() },
        ]),
        Response::Revised { soc_id: 9, revision: 4 },
        Response::Stats(WireStats {
            shard: 1,
            jobs_submitted: 100,
            schedule_hits: 80,
            latency: vec![WireLatency {
                outcome: "completed".into(),
                count: 90,
                p50_us: 255,
                p99_us: 4095,
            }],
            ..WireStats::default()
        }),
        Response::SnapshotDone { persisted: 3 },
        Response::ShuttingDown,
        Response::Error { message: "unknown registered soc id 4".into() },
    ]
}

/// Drives both decoders over one mutated frame. Either may fail — both
/// must fail *structurally*. Successful decodes are fine too (a bit
/// flip inside a string payload can still be a valid message); what
/// this test bans is a panic or an abort, which the harness would
/// surface as a test failure.
fn decode_both(bytes: &[u8]) {
    let _: Result<_, WireError> = read_request(&mut &bytes[..]);
    let _: Result<_, WireError> = read_response(&mut &bytes[..]);
}

#[test]
fn every_truncation_offset_decodes_to_a_structured_error() {
    let frames: Vec<Vec<u8>> = corpus_requests()
        .iter()
        .map(frame_request)
        .chain(corpus_responses().iter().map(frame_response))
        .collect();
    // Debug builds walk a stride to keep the suite quick; release (the
    // tier-1 configuration) visits every offset of every frame.
    let stride = if cfg!(debug_assertions) { 37 } else { 1 };
    for frame in &frames {
        for cut in (0..frame.len()).step_by(stride) {
            let truncated = &frame[..cut];
            assert!(
                read_request(&mut &truncated[..]).is_err(),
                "a cut frame cannot decode as a request (cut at {cut}/{})",
                frame.len(),
            );
            assert!(
                read_response(&mut &truncated[..]).is_err(),
                "a cut frame cannot decode as a response (cut at {cut}/{})",
                frame.len(),
            );
        }
    }
}

#[test]
fn strided_bit_flips_never_panic_the_decoders() {
    let frames: Vec<Vec<u8>> = corpus_requests()
        .iter()
        .map(frame_request)
        .chain(corpus_responses().iter().map(frame_response))
        .collect();
    let stride = if cfg!(debug_assertions) { 37 } else { 1 };
    for frame in &frames {
        for offset in (0..frame.len()).step_by(stride) {
            for bit in 0..8 {
                let mut mutated = frame.clone();
                mutated[offset] ^= 1 << bit;
                decode_both(&mutated);
                // Flips inside the header/length region also get the
                // double-length treatment: append garbage so a length
                // flipped *up* finds bytes to misparse rather than a
                // clean EOF.
                if offset < 16 {
                    mutated.extend_from_slice(frame);
                    decode_both(&mutated);
                }
            }
        }
    }
}

#[test]
fn hostile_lengths_cannot_force_allocation() {
    // A frame whose varint length claims the 4 MiB maximum, backed by 6
    // bytes of actual payload: the decoder must report truncation after
    // at most one read chunk, not reserve the claimed size.
    let mut frame = frame_request(&Request::SnapshotNow);
    frame.truncate(6); // keep magic + version + kind
    frame.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0x01]); // varint ≈ 4 MiB - 1
    frame.extend_from_slice(b"abcdef");
    assert_eq!(read_request(&mut &frame[..]), Err(WireError::Truncated));

    // Over the cap: rejected before any payload read.
    let mut frame = frame_request(&Request::SnapshotNow);
    frame.truncate(6);
    frame.extend_from_slice(&[0x81, 0x80, 0x80, 0x80, 0x7F]); // huge varint
    let decoded = read_request(&mut &frame[..]);
    assert!(
        matches!(decoded, Err(WireError::FrameTooLarge(_))),
        "oversized length must be rejected structurally: {decoded:?}",
    );

    // An in-payload collection count larger than the remaining bytes is
    // caught by the per-element floor, not trusted into with_capacity.
    let submit = Request::Submit { tenant: "t".into(), jobs: vec![] };
    let mut frame = frame_request(&submit);
    let last = frame.len() - 1;
    frame[last] = 0xFF; // jobs count varint becomes multi-byte…
    frame.push(0x7F); // …claiming ~16k jobs with zero bytes behind them
                      // Fix up the frame length for the extra byte (old payload was ≤127
                      // bytes, still single-byte varint).
    frame[6] += 1;
    let decoded = read_request(&mut &frame[..]);
    assert!(decoded.is_err(), "a lying count must fail: {decoded:?}");
}
