//! End-to-end loopback: a live TCP server under concurrent multi-client
//! load produces outcomes **bit-identical** to a serial in-process
//! replay — plus the full register→submit→revise→stats→shutdown
//! round trip and boot recovery from persisted snapshots.

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use msoc_analog::paper_cores;
use msoc_core::MixedSignalSoc;
use msoc_net::wire::WireEdit;
use msoc_net::{
    build_trace, run_loopback, Client, ServerConfig, ServerReport, WireAnalogCore, WireJob,
    WireOutcome, WireSoc, WireSocRef, WireSpec,
};

/// Boots a server on an ephemeral loopback port and runs `f` against
/// it; shuts down through the protocol and returns what the server
/// reported alongside `f`'s output.
fn with_server<T>(config: ServerConfig, f: impl FnOnce(SocketAddr) -> T) -> (ServerReport, T) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("ephemeral addr");
    let server = std::thread::spawn(move || msoc_net::serve(listener, &config).expect("serve"));
    let out = f(addr);
    let mut control = Client::connect(addr, "control").expect("control client");
    control.shutdown().expect("graceful shutdown");
    (server.join().expect("server thread"), out)
}

#[test]
fn concurrent_tcp_load_is_bit_identical_to_serial_replay() {
    // Three clients race 12 mixed-priority batches (plans, tables,
    // best-width sweeps, pre-cancelled jobs) into one shared tenant
    // shard; the oracle replays the same trace serially on a fresh
    // service. Canonical outcome bytes must match batch for batch.
    let trace = build_trace(12, 3, 0x5EED);
    let (_, report) = with_server(ServerConfig { shards: 2, ..ServerConfig::default() }, |addr| {
        run_loopback(addr, "determinism", &trace, 3).expect("loopback run")
    });
    assert!(report.replay_identical, "TCP outcomes diverged from the serial replay: {report:?}");
    assert_eq!(report.jobs, 36);
    assert!(report.jobs_per_sec > 0.0);
    assert!(report.p99_us >= report.p50_us);

    // The digest is a property of the trace, not of the run: a second
    // serial replay reproduces the same canonical bytes.
    let again = msoc_net::serial_replay(&trace);
    let first = msoc_net::serial_replay(&trace);
    assert_eq!(again, first, "serial replay must be self-consistent");
}

#[test]
fn register_submit_revise_stats_round_trip() {
    let (server_report, ()) = with_server(ServerConfig::default(), |addr| {
        let mut client = Client::connect(addr, "tenant-a").expect("connect");
        let soc_id = client
            .register(WireSoc::from_soc(&MixedSignalSoc::d695m()))
            .expect("register the paper SOC");

        // Submit against the registered id: one plan, one pre-cancelled.
        let mut cancelled =
            WireJob::new(WireSocRef::Registered(soc_id), WireSpec::Single { width: 24 });
        cancelled.cancelled = true;
        let outcomes = client
            .submit(vec![
                WireJob::new(WireSocRef::Registered(soc_id), WireSpec::Single { width: 16 }),
                cancelled,
            ])
            .expect("submit");
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(outcomes[0], WireOutcome::Completed(_)), "{:?}", outcomes[0]);
        assert!(matches!(outcomes[1], WireOutcome::Cancelled), "{:?}", outcomes[1]);

        // Revise core C, resubmit — the revision plans fine and the id
        // stays stable.
        let mut replacement = WireAnalogCore::from_core(&paper_cores()[2]);
        replacement.resolution_bits += 2;
        let revision = client
            .revise(soc_id, vec![WireEdit::ReplaceAnalog { index: 2, core: replacement }])
            .expect("revise");
        assert_eq!(revision, 1, "first revision of a fresh registration");
        let outcomes = client
            .submit(vec![WireJob::new(
                WireSocRef::Registered(soc_id),
                WireSpec::Single { width: 16 },
            )])
            .expect("submit revised");
        assert!(matches!(outcomes[0], WireOutcome::Completed(_)), "{:?}", outcomes[0]);

        // Stats see all of it, with latency quantiles per class.
        let stats = client.stats().expect("stats");
        assert_eq!(stats.jobs_submitted, 3);
        assert!(stats.session_misses >= 1);
        let completed =
            stats.latency.iter().find(|l| l.outcome == "completed").expect("completed class");
        assert_eq!(completed.count, 2);
        assert!(completed.p99_us >= completed.p50_us);
        let interrupted =
            stats.latency.iter().find(|l| l.outcome == "interrupted").expect("interrupted class");
        assert_eq!(interrupted.count, 1);

        // Unknown ids and malformed jobs answer structurally.
        let outcomes = client
            .submit(vec![WireJob::new(WireSocRef::Registered(999), WireSpec::Single { width: 16 })])
            .expect("submit with unknown id still answers");
        assert!(
            matches!(&outcomes[0], WireOutcome::Rejected { error } if error.contains("999")),
            "{:?}",
            outcomes[0],
        );
    });
    // The unknown-id job was rejected at wire validation, before the
    // service ever saw it — only the three real jobs were submitted.
    let total: u64 = server_report.shards.iter().map(|s| s.stats.jobs_submitted).sum();
    assert_eq!(total, 3);
}

#[test]
fn shutdown_flushes_snapshots_and_boot_recovers_them() {
    let root = std::env::temp_dir().join(format!("msoc_net_loopback_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ServerConfig {
        shards: 2,
        store_root: Some(root.clone()),
        snapshot_tick: Duration::from_millis(5),
        ..ServerConfig::default()
    };

    // Phase 1: warm one tenant, shut down gracefully (flush on).
    let (report, ()) = with_server(config.clone(), |addr| {
        let mut client = Client::connect(addr, "persist-me").expect("connect");
        let outcomes = client
            .submit(vec![WireJob::new(
                WireSocRef::Inline(WireSoc::from_soc(&MixedSignalSoc::d695m())),
                WireSpec::Single { width: 20 },
            )])
            .expect("submit");
        assert!(matches!(outcomes[0], WireOutcome::Completed(_)));
        assert!(client.snapshot_now().expect("forced snapshot") >= 1);
    });
    let persisted: u64 = report.shards.iter().map(|s| s.generations_persisted).sum();
    assert!(persisted >= 1, "graceful shutdown must leave generations: {report:?}");

    // Phase 2: boot a fresh server over the same root; the warm shard
    // replays the same job with zero schedule misses.
    let (report, ()) = with_server(config, |addr| {
        let mut client = Client::connect(addr, "persist-me").expect("reconnect");
        let outcomes = client
            .submit(vec![WireJob::new(
                WireSocRef::Inline(WireSoc::from_soc(&MixedSignalSoc::d695m())),
                WireSpec::Single { width: 20 },
            )])
            .expect("warm resubmit");
        assert!(matches!(outcomes[0], WireOutcome::Completed(_)));
        let stats = client.stats().expect("stats");
        // One plan job evaluates several candidate configurations, each
        // its own cache lookup — what matters is that *none* missed.
        assert_eq!(stats.schedule_misses, 0, "boot recovery must serve warm: {stats:?}");
        assert!(stats.schedule_hits >= 1, "{stats:?}");
    });
    let replayed: u64 = report.shards.iter().map(|s| s.stats.schedule_hits).sum();
    assert!(replayed >= 1, "{report:?}");

    let _ = std::fs::remove_dir_all(&root);
}
