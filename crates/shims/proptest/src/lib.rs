//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: [`Strategy`] over ranges, tuples, `prop_map`,
//! `prop::collection::vec` and `prop::option::of`, plus the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros. Case generation is
//! seeded and deterministic per test function; there is no shrinking and
//! no input echo — a failing case panics with the underlying assert's own
//! message, and because the per-function stream is deterministic the same
//! case reproduces on every rerun.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng as _, SeedableRng as _};

/// A generator of values for property tests (subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy combinators namespace (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng as _;
        use std::ops::{Range, RangeInclusive};

        /// An inclusive size range for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy for `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.lo..=self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy yielding `None` about a quarter of the time and
        /// `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Creates the deterministic RNG for one property-test function.
pub fn test_rng(fn_name: &str) -> TestRng {
    // Distinct functions get distinct but reproducible streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in fn_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Asserts a condition inside a property (panics with the message on
/// failure, like upstream's non-persisting mode).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property-test functions (subset of `proptest::proptest!`).
///
/// Each declared function runs its body for every generated case; the
/// optional leading `#![proptest_config(..)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Attributes pass through verbatim (callers write `#[test]`, and
        // `#[ignore]`/`#[should_panic]` keep their upstream meaning).
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = (&$strat).generate(&mut rng);)+
                let run = || { $body };
                let _ = case;
                run();
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($rest:tt)+) => {
        compile_error!("proptest! shim: expected `fn name(pat in strategy, ...) { .. }` items");
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            (a, b) in (1u32..=10, 0.0f64..1.0),
            v in prop::collection::vec(5u64..8, 0..=4),
            o in prop::option::of(1usize..3),
        ) {
            prop_assert!((1..=10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(v.len() <= 4);
            prop_assert!(v.iter().all(|x| (5..8).contains(x)));
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
        }

        #[test]
        fn prop_map_applies(x in (1u8..=8).prop_map(|b| b * 2)) {
            prop_assert!(x % 2 == 0 && x <= 16);
        }
    }

    #[test]
    fn deterministic_per_function_name() {
        use crate::Strategy as _;
        let mut a = crate::test_rng("f");
        let mut b = crate::test_rng("f");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
