//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! measured-iteration timer instead of criterion's statistical machinery.
//! Each benchmark warms up briefly, then runs timed batches for roughly
//! [`Criterion::measurement_millis`] and reports the mean iteration time
//! on stdout, so `cargo bench` gives comparable A/B numbers without any
//! external dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// A benchmark identifier with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id labelled only by a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep default runs quick; MSOC_BENCH_MS overrides for more stable
        // numbers on quiet machines.
        let millis =
            std::env::var("MSOC_BENCH_MS").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(300);
        Criterion { measurement_millis: millis }
    }
}

impl Criterion {
    /// Target measurement time per benchmark, in milliseconds.
    pub fn measurement_millis(&self) -> u64 {
        self.measurement_millis
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement_millis, &mut f);
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.measurement_millis, &mut f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<D: fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let millis = self.criterion.measurement_millis;
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, millis, &mut wrapped);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the number of iterations the driver requested.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, millis: u64, f: &mut F) {
    // Calibration: single iteration to size the measured batches.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(millis);
    let total_iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher { iters: total_iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed / u32::try_from(total_iters).unwrap_or(u32::MAX);
    println!("bench: {label:<48} {:>12} /iter ({total_iters} iters)", format_duration(mean));
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { measurement_millis: 1 };
        let mut ran = 0u64;
        c.bench_function("shim/selftest", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion { measurement_millis: 1 };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).contains("µs"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
