//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds hermetically (no crates.io), so the handful of
//! `rand` APIs it uses resolve to this in-tree implementation: a seeded
//! [`StdRng`] (splitmix64 core) and [`Rng::gen_range`] over integer and
//! float ranges. Determinism per seed is the only contract callers rely
//! on; the streams intentionally do *not* match upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges that can be sampled (subset of `rand::distributions::uniform`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Fast, full-period over its 64-bit state, and plenty for synthetic
    /// benchmark generation and dither — cryptographic quality is
    /// explicitly a non-goal.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5DEE_CE66_D6C1_B4A3 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..=17);
            assert!((3..=17).contains(&v));
            let w = rng.gen_range(5usize..9);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
