//! Digital core test wrapper design.
//!
//! Implements the `Design_wrapper` algorithm of Iyengar, Chakrabarty and
//! Marinissen ("Co-optimization of test wrapper and test access architecture
//! for embedded cores", JETTA 2002, reference \[13\] of the reproduced paper):
//! given a core and a TAM width `w`, the core's internal scan chains and
//! functional terminals are partitioned into `w` wrapper scan chains so that
//! the longest scan-in/scan-out path is minimized. The resulting test time
//!
//! ```text
//! t(w) = (1 + max(si, so)) · p + min(si, so)
//! ```
//!
//! (with `p` test patterns) decreases in a *staircase* as `w` grows, which is
//! the property the TAM scheduler exploits.
//!
//! # Examples
//!
//! ```
//! use msoc_itc02::Module;
//! use msoc_wrapper::{WrapperDesign, Staircase};
//!
//! let core = Module::new_scan_core(1, 10, 10, 0, vec![40, 40, 20], 50);
//! let design = WrapperDesign::design(&core, 2);
//! assert!(design.scan_in_length() >= 55); // ceil((100+10)/2)
//!
//! let stairs = Staircase::for_module(&core, 16);
//! assert!(stairs.time_at(16) <= stairs.time_at(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod staircase;

pub use design::WrapperDesign;
pub use staircase::{Staircase, StaircasePoint};
