//! Wrapper scan-chain construction for a single core at a fixed TAM width.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use msoc_itc02::Module;

/// A wrapper design for one core at one TAM width.
///
/// Construction partitions the core's internal scan chains over the wrapper
/// chains with the LPT (longest processing time first) heuristic, then
/// water-fills functional input cells onto the scan-in side and output cells
/// onto the scan-out side. Bidirectional terminals contribute a cell to both
/// sides, as in the JETTA 2002 `Design_wrapper` algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperDesign {
    width: u32,
    /// `chain_assignment[c]` = wrapper-chain index of internal scan chain `c`.
    chain_assignment: Vec<usize>,
    /// Scan-in length per wrapper chain (scan bits + input/bidir cells).
    in_lengths: Vec<u64>,
    /// Scan-out length per wrapper chain (scan bits + output/bidir cells).
    out_lengths: Vec<u64>,
}

impl WrapperDesign {
    /// Designs a wrapper for `module` using `width` TAM wires.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`; a zero-width wrapper cannot transport data.
    pub fn design(module: &Module, width: u32) -> Self {
        assert!(width > 0, "wrapper width must be at least 1");
        let bins = width as usize;

        // LPT partition of internal scan chains over the wrapper chains.
        let mut chains: Vec<(u32, usize)> = module.scan_chains.iter().copied().zip(0..).collect();
        chains.sort_unstable_by_key(|&(len, idx)| (Reverse(len), idx));

        let mut scan_load = vec![0u64; bins];
        let mut chain_assignment = vec![0usize; module.scan_chains.len()];
        // Min-heap over (current load, bin index) for deterministic ties.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..bins).map(|b| Reverse((0, b))).collect();
        for (len, idx) in chains {
            let Reverse((load, bin)) = heap.pop().expect("heap has `width` bins");
            chain_assignment[idx] = bin;
            let new_load = load + u64::from(len);
            scan_load[bin] = new_load;
            heap.push(Reverse((new_load, bin)));
        }

        // Water-fill IO cells. Inputs and bidirs feed the scan-in side,
        // outputs and bidirs the scan-out side.
        let in_cells = u64::from(module.inputs) + u64::from(module.bidirs);
        let out_cells = u64::from(module.outputs) + u64::from(module.bidirs);
        let in_lengths = water_fill(&scan_load, in_cells);
        let out_lengths = water_fill(&scan_load, out_cells);

        WrapperDesign { width, chain_assignment, in_lengths, out_lengths }
    }

    /// TAM width this wrapper was designed for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Wrapper-chain index assigned to each internal scan chain, in the
    /// order the chains appear in the module description.
    pub fn chain_assignment(&self) -> &[usize] {
        &self.chain_assignment
    }

    /// Longest scan-in path over all wrapper chains (`si`).
    pub fn scan_in_length(&self) -> u64 {
        self.in_lengths.iter().copied().max().unwrap_or(0)
    }

    /// Longest scan-out path over all wrapper chains (`so`).
    pub fn scan_out_length(&self) -> u64 {
        self.out_lengths.iter().copied().max().unwrap_or(0)
    }

    /// Test application time for one test of `patterns` patterns:
    /// `(1 + max(si, so)) · p + min(si, so)`.
    pub fn test_time(&self, patterns: u64) -> u64 {
        let si = self.scan_in_length();
        let so = self.scan_out_length();
        (1 + si.max(so)) * patterns + si.min(so)
    }

    /// Total test time of all TAM-using tests of `module` through this
    /// wrapper (each test reuses the same wrapper chains).
    pub fn module_test_time(&self, module: &Module) -> u64 {
        module.tests.iter().filter(|t| t.tam_used).map(|t| self.test_time(t.patterns)).sum()
    }
}

/// Distributes `cells` unit-length items over bins with initial loads
/// `base`, minimizing the maximum resulting load (water-filling), and
/// returns the resulting loads.
fn water_fill(base: &[u64], cells: u64) -> Vec<u64> {
    let mut loads = base.to_vec();
    if loads.is_empty() || cells == 0 {
        return loads;
    }
    // Fill the valleys level by level; O(n log n), exact.
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_unstable_by_key(|&i| loads[i]);
    let mut remaining = cells;
    let mut level = loads[order[0]];
    let mut k = 0usize; // number of bins currently at `level`
    while remaining > 0 {
        // Extend the plateau to include every bin at the current level.
        while k < order.len() && loads[order[k]] <= level {
            k += 1;
        }
        let next = if k < order.len() { loads[order[k]] } else { u64::MAX };
        let gap = next.saturating_sub(level);
        let capacity = gap.saturating_mul(k as u64);
        if capacity >= remaining {
            let per_bin = remaining / k as u64;
            let extra = (remaining % k as u64) as usize;
            for (j, &i) in order[..k].iter().enumerate() {
                loads[i] = level + per_bin + u64::from(j < extra);
            }
            remaining = 0;
        } else {
            for &i in &order[..k] {
                loads[i] = next;
            }
            remaining -= capacity;
            level = next;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use msoc_itc02::{Module, ModuleTest};

    fn core(chains: Vec<u32>, inputs: u32, outputs: u32, patterns: u64) -> Module {
        Module::new_scan_core(1, inputs, outputs, 0, chains, patterns)
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        WrapperDesign::design(&core(vec![10], 1, 1, 1), 0);
    }

    #[test]
    fn single_wire_serializes_everything() {
        let m = core(vec![10, 20], 5, 7, 3);
        let d = WrapperDesign::design(&m, 1);
        assert_eq!(d.scan_in_length(), 35); // 30 scan + 5 inputs
        assert_eq!(d.scan_out_length(), 37); // 30 scan + 7 outputs
        assert_eq!(d.test_time(3), (1 + 37) * 3 + 35);
    }

    #[test]
    fn lpt_balances_two_bins() {
        // Chains 40,40,20 over 2 bins -> {40, 40+20} = max 60.
        let m = core(vec![40, 40, 20], 0, 0, 1);
        let d = WrapperDesign::design(&m, 2);
        assert_eq!(d.scan_in_length(), 60);
    }

    #[test]
    fn io_cells_fill_valleys_first() {
        // Scan loads {40, 60}; 25 input cells -> {40+22=62 vs level}:
        // water level: raise 40 to 60 (20 cells), 5 left -> 63/62.
        let m = core(vec![40, 60], 25, 0, 1);
        let d = WrapperDesign::design(&m, 2);
        assert_eq!(d.scan_in_length(), 63);
        // Outputs absent: scan-out is the bare scan partition.
        assert_eq!(d.scan_out_length(), 60);
    }

    #[test]
    fn bidirs_count_on_both_sides() {
        let mut m = core(vec![10], 0, 0, 1);
        m.bidirs = 4;
        let d = WrapperDesign::design(&m, 1);
        assert_eq!(d.scan_in_length(), 14);
        assert_eq!(d.scan_out_length(), 14);
    }

    #[test]
    fn combinational_core_is_io_only() {
        let m = core(vec![], 16, 8, 10);
        let d = WrapperDesign::design(&m, 4);
        assert_eq!(d.scan_in_length(), 4); // 16 inputs over 4 chains
        assert_eq!(d.scan_out_length(), 2);
        assert_eq!(d.test_time(10), (1 + 4) * 10 + 2);
    }

    #[test]
    fn width_beyond_items_saturates() {
        let m = core(vec![30, 20], 2, 2, 5);
        let wide = WrapperDesign::design(&m, 64);
        // Longest single chain dominates once each chain sits alone.
        assert_eq!(wide.scan_in_length(), 30);
        assert_eq!(wide.scan_out_length(), 30);
    }

    #[test]
    fn test_time_is_zero_for_zero_patterns() {
        let m = core(vec![10], 0, 0, 0);
        let d = WrapperDesign::design(&m, 1);
        assert_eq!(d.test_time(0), 10); // min(si,so) shift-out remains
    }

    #[test]
    fn module_test_time_sums_tam_tests_only() {
        let mut m = core(vec![10], 0, 0, 4);
        m.tests.push(ModuleTest::bist(1_000));
        m.tests.push(ModuleTest::scan(6));
        let d = WrapperDesign::design(&m, 1);
        assert_eq!(d.module_test_time(&m), d.test_time(4) + d.test_time(6));
    }

    #[test]
    fn chain_assignment_covers_all_chains() {
        let m = core(vec![9, 8, 7, 6, 5], 3, 3, 2);
        let d = WrapperDesign::design(&m, 3);
        assert_eq!(d.chain_assignment().len(), 5);
        assert!(d.chain_assignment().iter().all(|&b| b < 3));
    }

    #[test]
    fn water_fill_exact_levels() {
        fn sorted(mut v: Vec<u64>) -> Vec<u64> {
            v.sort_unstable();
            v
        }
        assert_eq!(sorted(water_fill(&[0, 0, 0], 7)), vec![2, 2, 3]);
        assert_eq!(sorted(water_fill(&[5, 1, 1], 2)), vec![2, 2, 5]);
        assert_eq!(sorted(water_fill(&[5, 1, 1], 9)), vec![5, 5, 6]);
        assert_eq!(water_fill(&[], 3), Vec::<u64>::new());
        // Conservation: cells are neither created nor destroyed.
        assert_eq!(water_fill(&[7, 3], 11).iter().sum::<u64>(), 21);
    }

    #[test]
    fn si_lower_bound_holds() {
        // si >= ceil((scan bits + inputs) / width) and >= longest chain.
        let m = core(vec![33, 21, 17, 9], 13, 0, 1);
        for w in 1..=8u32 {
            let d = WrapperDesign::design(&m, w);
            let total = 33 + 21 + 17 + 9 + 13u64;
            let lb = total.div_ceil(u64::from(w)).max(33);
            assert!(d.scan_in_length() >= lb, "w={w}");
        }
    }
}
