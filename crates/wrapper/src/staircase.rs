//! Test-time versus TAM-width staircases and their Pareto points.

use msoc_itc02::Module;

use crate::design::WrapperDesign;

/// One Pareto-optimal `(width, time)` point of a core's staircase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaircasePoint {
    /// TAM width in wires.
    pub width: u32,
    /// Core test time in TAM clock cycles at this width.
    pub time: u64,
}

/// The Pareto-optimal test-time staircase of one core.
///
/// Digital core test time decreases step-wise with TAM width; the staircase
/// keeps only widths at which the (cumulative-minimum) test time actually
/// drops. The TAM scheduler picks one point per core.
///
/// # Examples
///
/// ```
/// use msoc_itc02::Module;
/// use msoc_wrapper::Staircase;
///
/// let m = Module::new_scan_core(1, 8, 8, 0, vec![30, 30, 30, 30], 20);
/// let s = Staircase::for_module(&m, 8);
/// assert_eq!(s.points().first().unwrap().width, 1);
/// // Width axis is strictly increasing, time strictly decreasing.
/// for pair in s.points().windows(2) {
///     assert!(pair[0].width < pair[1].width && pair[0].time > pair[1].time);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Staircase {
    points: Vec<StaircasePoint>,
}

impl Staircase {
    /// Builds the staircase of `module` for widths `1..=max_width`.
    ///
    /// The time at width `w` is the cumulative minimum of the
    /// [`WrapperDesign`] test time over widths `1..=w`, which makes the
    /// staircase monotone even where the LPT heuristic is not.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn for_module(module: &Module, max_width: u32) -> Self {
        assert!(max_width > 0, "staircase needs at least width 1");
        let mut points = Vec::new();
        let mut best = u64::MAX;
        for w in 1..=max_width {
            let t = WrapperDesign::design(module, w).module_test_time(module);
            if t < best {
                best = t;
                points.push(StaircasePoint { width: w, time: t });
            }
        }
        Staircase { points }
    }

    /// Builds a staircase from explicit points (used for analog cores whose
    /// time is width-independent and for tests).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, widths are not strictly increasing, or
    /// times are not strictly decreasing.
    pub fn from_points(points: Vec<StaircasePoint>) -> Self {
        assert!(!points.is_empty(), "a staircase needs at least one point");
        for pair in points.windows(2) {
            assert!(
                pair[0].width < pair[1].width && pair[0].time > pair[1].time,
                "staircase points must be strictly monotone"
            );
        }
        Staircase { points }
    }

    /// The Pareto points, ordered by increasing width.
    pub fn points(&self) -> &[StaircasePoint] {
        &self.points
    }

    /// Smallest width in the staircase (always ≥ 1).
    pub fn min_width(&self) -> u32 {
        self.points[0].width
    }

    /// Largest useful width: adding wires beyond this cannot reduce time.
    pub fn max_useful_width(&self) -> u32 {
        self.points.last().expect("staircase is non-empty").width
    }

    /// Best test time achievable with at most `width` wires.
    ///
    /// Returns `u64::MAX` when `width` is below the smallest staircase
    /// width, i.e. the core cannot be tested with that few wires.
    pub fn time_at(&self, width: u32) -> u64 {
        match self.points.binary_search_by_key(&width, |p| p.width) {
            Ok(i) => self.points[i].time,
            Err(0) => u64::MAX,
            Err(i) => self.points[i - 1].time,
        }
    }

    /// The widest point with `width ≤ limit`, if any.
    pub fn point_at(&self, limit: u32) -> Option<StaircasePoint> {
        match self.points.binary_search_by_key(&limit, |p| p.width) {
            Ok(i) => Some(self.points[i]),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1]),
        }
    }

    /// Minimum test time over the whole staircase (time at the widest point).
    pub fn min_time(&self) -> u64 {
        self.points.last().expect("staircase is non-empty").time
    }

    /// Test-data "area" lower bound: `min over points of width·time`.
    ///
    /// Any schedule must grant the core at least this many wire-cycles.
    pub fn area_lower_bound(&self) -> u64 {
        self.points
            .iter()
            .map(|p| u64::from(p.width) * p.time)
            .min()
            .expect("staircase is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msoc_itc02::synth;

    fn stairs() -> Staircase {
        Staircase::from_points(vec![
            StaircasePoint { width: 2, time: 100 },
            StaircasePoint { width: 4, time: 60 },
            StaircasePoint { width: 7, time: 40 },
        ])
    }

    #[test]
    fn time_at_steps_between_points() {
        let s = stairs();
        assert_eq!(s.time_at(1), u64::MAX);
        assert_eq!(s.time_at(2), 100);
        assert_eq!(s.time_at(3), 100);
        assert_eq!(s.time_at(4), 60);
        assert_eq!(s.time_at(6), 60);
        assert_eq!(s.time_at(7), 40);
        assert_eq!(s.time_at(100), 40);
    }

    #[test]
    fn point_at_returns_widest_feasible() {
        let s = stairs();
        assert_eq!(s.point_at(1), None);
        assert_eq!(s.point_at(5).unwrap().width, 4);
    }

    #[test]
    fn extremes_are_exposed() {
        let s = stairs();
        assert_eq!(s.min_width(), 2);
        assert_eq!(s.max_useful_width(), 7);
        assert_eq!(s.min_time(), 40);
        assert_eq!(s.area_lower_bound(), 200); // min over 2x100, 4x70, 7x40
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_points_rejected() {
        Staircase::from_points(vec![
            StaircasePoint { width: 1, time: 10 },
            StaircasePoint { width: 2, time: 10 },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_rejected() {
        Staircase::from_points(vec![]);
    }

    #[test]
    fn staircase_of_real_core_is_monotone_and_saturates() {
        let soc = synth::d695s();
        for core in soc.cores() {
            let s = Staircase::for_module(core, 32);
            for pair in s.points().windows(2) {
                assert!(pair[0].time > pair[1].time);
            }
            // Saturation: widening past the last point changes nothing.
            assert_eq!(s.time_at(32), s.min_time());
        }
    }

    #[test]
    fn big_core_calibration_band() {
        // The dominant p93791s core should bottom out near 0.46 M cycles —
        // the calibration target described in DESIGN.md.
        let soc = synth::p93791s();
        let big = soc.module(6).unwrap();
        let s = Staircase::for_module(big, 64);
        let t = s.min_time();
        assert!((430_000..530_000).contains(&t), "dominant core floor {t} out of calibration band");
    }
}
