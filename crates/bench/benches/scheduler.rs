//! Benchmarks for the TAM scheduler: the inner loop of every planning run
//! (each cost evaluation schedules the full SOC once).
//!
//! Every scenario runs across the full packer engine roster: the
//! event-skyline hot path and the naive rebuild-sort-scan reference
//! produce identical schedules (a pure data-structure and pruning
//! comparison), while MaxRects, guillotine and the portfolio race trade
//! placement policy for packing quality — the portfolio's makespan is
//! never above the skyline's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use msoc_core::{MixedSignalSoc, Planner, SharingConfig};
use msoc_itc02::synth;
use msoc_tam::{schedule_with_engine, Effort, Engine, ScheduleProblem};

const ENGINES: [(&str, Engine); 5] = [
    ("skyline", Engine::Skyline),
    ("naive", Engine::Naive),
    ("maxrects", Engine::MaxRects),
    ("guillotine", Engine::Guillotine),
    ("portfolio", Engine::Portfolio),
];

fn digital_scheduling(c: &mut Criterion) {
    let soc = synth::p93791s();
    let mut group = c.benchmark_group("schedule/p93791s");
    group.sample_size(20);
    for w in [16u32, 32, 64] {
        let problem = ScheduleProblem::from_soc(&soc, w);
        for (name, engine) in ENGINES {
            group.bench_with_input(BenchmarkId::new(name, w), &problem, |b, p| {
                b.iter(|| {
                    schedule_with_engine(black_box(p), Effort::Standard, engine).unwrap().makespan()
                })
            });
        }
    }
    group.finish();
}

fn mixed_signal_scheduling(c: &mut Criterion) {
    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::new(&soc);
    let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
    let problem = planner.build_problem(&config, 48);
    let mut group = c.benchmark_group("schedule/p93791m");
    group.sample_size(20);
    for (name, engine) in ENGINES {
        group.bench_function(format!("abe_cd_w48/{name}"), |b| {
            b.iter(|| {
                schedule_with_engine(black_box(&problem), Effort::Standard, engine)
                    .unwrap()
                    .makespan()
            })
        });
    }
    group.finish();
}

fn effort_levels(c: &mut Criterion) {
    let soc = synth::d695s();
    let problem = ScheduleProblem::from_soc(&soc, 24);
    let mut group = c.benchmark_group("schedule/effort_d695s");
    for (name, effort) in
        [("quick", Effort::Quick), ("standard", Effort::Standard), ("thorough", Effort::Thorough)]
    {
        for (engine_name, engine) in ENGINES {
            group.bench_function(format!("{name}/{engine_name}"), |b| {
                b.iter(|| {
                    schedule_with_engine(black_box(&problem), effort, engine).unwrap().makespan()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, digital_scheduling, mixed_signal_scheduling, effort_levels);
criterion_main!(benches);
