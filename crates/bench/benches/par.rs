//! Benchmarks for the `msoc-par` dispatch path: the persistent
//! work-stealing pool versus the pre-pool reference that spawns fresh
//! scoped threads on every call.
//!
//! The workload mirrors the planner's hot shape — a ~26-item map (one item
//! per surviving sharing configuration) whose items each do a small bounded
//! amount of arithmetic — so the numbers isolate *dispatch* cost: thread
//! spawn/join for the reference versus unpark/claim/steal for the pool.
//! `par/dispatch` also runs a hand-timed A/B guard asserting the pool is
//! no slower than spawn-per-map once warm; a regression here means the
//! pool's handoff path has picked up overhead the spawn path never had.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// One planner-candidate-sized work item: bounded arithmetic, no
/// allocation, long enough that the map is not pure dispatch noise.
fn evaluate(seed: u64) -> u64 {
    let mut acc = seed;
    for i in 0..2_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 29;
    }
    acc
}

const ITEMS: usize = 26;
const WIDTH: usize = 4;

fn items() -> Vec<u64> {
    (0..ITEMS as u64).map(|i| i * 977 + 13).collect()
}

fn dispatch(c: &mut Criterion) {
    let input = items();
    let mut group = c.benchmark_group("par/dispatch");
    group.bench_function(format!("pool_w{WIDTH}_n{ITEMS}"), |b| {
        b.iter(|| {
            msoc_par::with_threads(WIDTH, || {
                msoc_par::map(black_box(&input), |_, &seed| evaluate(seed))
            })
            .iter()
            .sum::<u64>()
        })
    });
    group.bench_function(format!("spawn_per_map_w{WIDTH}_n{ITEMS}"), |b| {
        b.iter(|| {
            msoc_par::with_threads(WIDTH, || {
                msoc_par::map_unpooled(black_box(&input), |_, &seed| evaluate(seed))
            })
            .iter()
            .sum::<u64>()
        })
    });
    group.finish();
}

/// Hand-timed A/B guard: warm both paths, then assert the pool's mean
/// dispatch time is no worse than spawn-per-map. The 1.10 margin absorbs
/// scheduler noise on loaded hosts; the pool's structural win (no thread
/// creation per call) is far larger than that in practice.
fn dispatch_guard(c: &mut Criterion) {
    let input = items();
    let time = |f: &dyn Fn() -> u64| {
        for _ in 0..20 {
            black_box(f());
        }
        let rounds = 200;
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(f());
        }
        start.elapsed().as_secs_f64() / rounds as f64
    };
    let pool = time(&|| {
        msoc_par::with_threads(WIDTH, || msoc_par::map(&input, |_, &s| evaluate(s)))
            .iter()
            .sum::<u64>()
    });
    let spawn = time(&|| {
        msoc_par::with_threads(WIDTH, || msoc_par::map_unpooled(&input, |_, &s| evaluate(s)))
            .iter()
            .sum::<u64>()
    });
    println!(
        "par/dispatch guard: pool {:.1} us/map vs spawn-per-map {:.1} us/map ({:.2}x)",
        pool * 1e6,
        spawn * 1e6,
        spawn / pool,
    );
    assert!(
        pool <= spawn * 1.10,
        "persistent pool dispatch regressed: {:.1} us/map vs {:.1} us/map spawn-per-map",
        pool * 1e6,
        spawn * 1e6,
    );
    // Keep the `Criterion` signature so `criterion_group!` accepts this
    // guard alongside the measured benches.
    let _ = c;
}

criterion_group!(benches, dispatch, dispatch_guard);
criterion_main!(benches);
