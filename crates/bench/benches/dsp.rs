//! Criterion benchmarks for the analog substrate: FFT, Goertzel and the
//! wrapped-core measurement chain that regenerates Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use msoc_analog::circuit::Biquad;
use msoc_analog::dsp::{amplitude_spectrum, fft, goertzel::tone_amplitude, Complex, Window};
use msoc_analog::signal::MultiTone;
use msoc_awrapper::WrapperDatapath;

fn fft_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp/fft");
    for log2n in [10usize, 12, 14] {
        let n = 1 << log2n;
        let data: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| {
                let mut buf = d.clone();
                fft(black_box(&mut buf));
                buf[1].abs()
            })
        });
    }
    group.finish();
}

/// Guards the 4-wide chunked FFT butterflies: the four-twiddle-chain hot
/// path (what `fft` runs) is benched against the serial one-chain
/// reference on measurement-sized transforms, so a regression to (or
/// below) scalar throughput shows up as a ratio shift. Target: ≥ 1.3×
/// over scalar.
fn fft_chunked_vs_scalar(c: &mut Criterion) {
    use msoc_analog::dsp::fft_scalar;
    let n = 1 << 12;
    let data: Vec<Complex> =
        (0..n).map(|i| Complex::new((i as f64 * 0.01).sin(), (i as f64 * 0.003).cos())).collect();
    let mut group = c.benchmark_group("dsp/fft_butterfly");
    group.bench_function("chunked_4k", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            fft(black_box(&mut buf));
            buf[1].abs()
        })
    });
    group.bench_function("scalar_4k", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            fft_scalar(black_box(&mut buf));
            buf[1].abs()
        })
    });
    group.finish();
}

/// Guards the 4-wide chunked Goertzel inner loop: the chunked hot path is
/// benched against the serial resonator on a measurement-sized block, so a
/// regression to (or below) scalar throughput shows up as a ratio shift.
fn goertzel_chunked_vs_scalar(c: &mut Criterion) {
    use msoc_analog::dsp::goertzel::{goertzel, goertzel_state_scalar};
    let fs = 1.7e6;
    let n = 1 << 16;
    let x = MultiTone::equal_amplitude(&[20e3, 50e3, 80e3], 0.5).generate(fs, n);
    let coeff = 2.0 * (2.0 * std::f64::consts::PI * 50e3 / fs).cos();
    let mut group = c.benchmark_group("dsp/goertzel_inner_loop");
    group.bench_function("chunked_64k", |b| b.iter(|| goertzel(black_box(&x), fs, 50e3).abs()));
    group
        .bench_function("scalar_64k", |b| b.iter(|| goertzel_state_scalar(black_box(&x), coeff).0));
    group.finish();
}

fn goertzel_vs_spectrum(c: &mut Criterion) {
    let fs = 1.7e6;
    let x = MultiTone::equal_amplitude(&[20e3, 50e3, 80e3], 0.5).generate(fs, 4551);
    let mut group = c.benchmark_group("dsp/tone_measurement");
    group.bench_function("goertzel_3_tones", |b| {
        b.iter(|| {
            tone_amplitude(black_box(&x), fs, 20e3)
                + tone_amplitude(black_box(&x), fs, 50e3)
                + tone_amplitude(black_box(&x), fs, 80e3)
        })
    });
    group.bench_function("full_spectrum", |b| {
        b.iter(|| amplitude_spectrum(black_box(&x), fs, Window::Hann).amplitudes()[10])
    });
    group.finish();
}

/// Guards the 4-wide chunked biquad block path: the chunked `process` is
/// benched against the per-sample reference on a measurement-sized held
/// waveform, so a regression to (or below) scalar throughput shows up as
/// a ratio shift.
fn biquad_chunked_vs_scalar(c: &mut Criterion) {
    let fs = 50e6;
    let n = 1 << 17; // ~the Fig. 5 held waveform (4551 × 29 system samples)
    let x = MultiTone::equal_amplitude(&[20e3, 50e3, 80e3], 0.5).generate(fs, n);
    let mut group = c.benchmark_group("dsp/biquad_block");
    let mut buf = x.clone();
    group.bench_function("chunked_128k", |b| {
        b.iter(|| {
            buf.copy_from_slice(&x);
            let mut core = Biquad::butterworth_lowpass(61e3, fs);
            core.process_in_place(black_box(&mut buf));
            buf[100]
        })
    });
    group.bench_function("scalar_128k", |b| {
        b.iter(|| {
            buf.copy_from_slice(&x);
            let mut core = Biquad::butterworth_lowpass(61e3, fs);
            for v in buf.iter_mut() {
                *v = core.process_sample(*v);
            }
            buf[100]
        })
    });
    group.finish();
}

fn wrapped_measurement_chain(c: &mut Criterion) {
    let dp = WrapperDatapath::new(8, -2.0, 2.0, 50e6, 1.7e6).unwrap();
    let fs = dp.sample_rate_hz();
    let stim = MultiTone::equal_amplitude(&[20e3, 50e3, 80e3], 0.5).generate(fs, 4551);
    c.bench_function("dsp/fig5_wrapped_chain", |b| {
        b.iter(|| {
            let mut core = Biquad::butterworth_lowpass(61e3, dp.system_clock_hz());
            dp.apply(black_box(&stim), |v| core.process_sample(v)).voltages[100]
        })
    });
    // The block form engages the chunked `Biquad::process_in_place`;
    // this is what the fig5 binary runs.
    c.bench_function("dsp/fig5_wrapped_chain_block", |b| {
        b.iter(|| {
            let mut core = Biquad::butterworth_lowpass(61e3, dp.system_clock_hz());
            dp.apply_block(black_box(&stim), |held| core.process_in_place(held)).voltages[100]
        })
    });
}

criterion_group!(
    benches,
    fft_sizes,
    fft_chunked_vs_scalar,
    goertzel_chunked_vs_scalar,
    biquad_chunked_vs_scalar,
    goertzel_vs_spectrum,
    wrapped_measurement_chain
);
criterion_main!(benches);
