//! Benchmarks for the planners: the paper's headline runtime claim is
//! `Cost_Optimizer` ≈ 3× faster than exhaustive evaluation (6 vs 20
//! minutes on the paper's 2005 workstation; milliseconds here, but the
//! *ratio* is the reproducible quantity).
//!
//! Both planners additionally run over the skyline and naive engines (so
//! the skyline path's end-to-end effect on full planning runs is tracked,
//! not just its effect on single schedules) plus the engine-portfolio
//! race, whose overhead over the skyline alone is the price of its
//! never-worse makespan guarantee.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use msoc_core::planner::PlannerOptions;
use msoc_core::{CostWeights, MixedSignalSoc, Planner};
use msoc_tam::{Effort, Engine};

const ENGINES: [(&str, Engine); 3] =
    [("skyline", Engine::Skyline), ("naive", Engine::Naive), ("portfolio", Engine::Portfolio)];

/// Fresh planner per iteration so caching does not hide the evaluation
/// count difference.
fn fresh(soc: &MixedSignalSoc, engine: Engine) -> Planner<'_> {
    Planner::with_options(
        soc,
        PlannerOptions { effort: Effort::Quick, engine, ..PlannerOptions::default() },
    )
}

fn heuristic_vs_exhaustive(c: &mut Criterion) {
    let soc = MixedSignalSoc::p93791m();
    let mut group = c.benchmark_group("planner/p93791m_w32");
    group.sample_size(10);
    for (name, engine) in ENGINES {
        group.bench_function(format!("exhaustive/{name}"), |b| {
            b.iter(|| {
                let mut p = fresh(&soc, engine);
                black_box(p.exhaustive(32, CostWeights::balanced()).unwrap().best.total_cost)
            })
        });
        group.bench_function(format!("cost_optimizer/{name}"), |b| {
            b.iter(|| {
                let mut p = fresh(&soc, engine);
                black_box(
                    p.cost_optimizer(32, CostWeights::balanced(), 0.0).unwrap().best.total_cost,
                )
            })
        });
    }
    group.finish();
}

fn preliminary_costs(c: &mut Criterion) {
    use msoc_awrapper::{AreaModel, SharingPolicy};
    use msoc_core::cost::preliminary_cost;
    use msoc_core::partition::enumerate_paper;

    let soc = MixedSignalSoc::p93791m();
    let configs = enumerate_paper(5, &soc.analog_equivalence_classes());
    let model = AreaModel::paper_calibrated();
    let policy = SharingPolicy::default();
    c.bench_function("planner/preliminary_costs_26", |b| {
        b.iter(|| {
            configs
                .iter()
                .map(|cfg| {
                    preliminary_cost(
                        black_box(cfg),
                        &soc.analog,
                        &model,
                        &policy,
                        CostWeights::balanced(),
                    )
                    .unwrap()
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, heuristic_vs_exhaustive, preliminary_costs);
criterion_main!(benches);
