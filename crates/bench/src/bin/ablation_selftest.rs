//! Ablation: accounting for the wrapper self-test (converter BIST) time
//! the paper excludes from its tables and lists as future work.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin ablation_selftest
//! ```
//!
//! Every wrapper must screen its DAC–ADC pair before testing cores (the
//! wrapper's self-test mode). With the session length derived from the
//! loopback + ramp screen of `msoc_awrapper::selftest`, wrapper sharing
//! saves *test time* as well as area — fewer wrappers means fewer BIST
//! sessions — shifting the cost optimum toward deeper sharing.

use msoc_awrapper::SelfTestReport;
use msoc_core::planner::PlannerOptions;
use msoc_core::{CostWeights, MixedSignalSoc, Planner};
use msoc_tam::Effort;

fn main() {
    let soc = MixedSignalSoc::p93791m();
    let session = SelfTestReport::session_cycles(8, 8);
    println!("Ablation: wrapper self-test accounting (session = {session} cycles)\n");

    let mut base = Planner::with_options(
        &soc,
        PlannerOptions { effort: Effort::Standard, ..PlannerOptions::default() },
    );
    let weights = CostWeights::balanced();

    // The quick loopback screen barely registers against ~1 M-cycle
    // makespans; an exhaustive histogram BIST (many hits per code, the
    // style of the paper's refs [16–18]) is long enough to move the
    // optimum toward deeper sharing.
    for (label, cycles) in [("loopback screen", session), ("histogram BIST", session * 32)] {
        let mut with_bist = Planner::with_options(
            &soc,
            PlannerOptions {
                effort: Effort::Standard,
                self_test_cycles: Some(cycles),
                ..PlannerOptions::default()
            },
        );
        let mut rows = Vec::new();
        for w in [32u32, 48, 64] {
            let plain = base.exhaustive(w, weights).expect("plan");
            let bist = with_bist.exhaustive(w, weights).expect("plan");
            rows.push(vec![
                w.to_string(),
                plain.best.config.to_string(),
                plain.best.makespan.to_string(),
                bist.best.config.to_string(),
                bist.best.makespan.to_string(),
                format!("{:+}", bist.best.makespan as i64 - plain.best.makespan as i64),
            ]);
        }
        println!("--- {label}: {cycles} cycles per wrapper ---");
        print!(
            "{}",
            msoc_bench::render_table(
                &["W", "combo (no BIST)", "T (no BIST)", "combo (BIST)", "T (BIST)", "dT"],
                &rows
            )
        );
        println!();
    }
    println!("With BIST sessions accounted, fewer wrappers also mean less");
    println!("self-test time; long sessions shift the optimum toward sharing.");
}
