//! Regenerates **Table 4** of the paper: the `Cost_Optimizer` heuristic
//! versus exhaustive evaluation across cost weights and TAM widths.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin table4
//!     [--delta-sweep]    ablation: elimination threshold δ
//!     [--weight-sweep]   ablation: W_T from 0 to 1
//! ```
//!
//! For each `(W_T, W_A)` block and TAM width, the exhaustive column
//! evaluates all 26 sharing combinations; the heuristic evaluates the
//! 4 shape-group representatives plus the surviving group (δ = 0), as the
//! paper does. `ΔN%` is the reduction in TAM-optimizer evaluations.

use std::time::Instant;

use msoc_core::{CostWeights, MixedSignalSoc, Planner, PlannerOptions};
use msoc_tam::Effort;

const WIDTHS: [u32; 5] = [32, 40, 48, 56, 64];

fn main() {
    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::with_options(
        &soc,
        PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() },
    );

    let blocks = [
        ("W_T = 0.5, W_A = 0.5", CostWeights::balanced()),
        ("W_T = 0.8, W_A = 0.2", CostWeights::time_heavy()),
        ("W_T = 0.2, W_A = 0.8", CostWeights::area_heavy()),
    ];

    println!("Table 4: Cost_Optimizer vs exhaustive evaluation (p93791m, delta = 0)\n");
    for (label, weights) in blocks {
        println!("--- {label} ---");
        let mut rows = Vec::new();
        let mut heur_evals = 0usize;
        for w in WIDTHS {
            let t0 = Instant::now();
            let exh = planner.exhaustive(w, weights).expect("exhaustive plan");
            let t_exh = t0.elapsed();
            let t0 = Instant::now();
            let heur = planner.cost_optimizer(w, weights, 0.0).expect("heuristic plan");
            let t_heur = t0.elapsed();
            heur_evals += heur.evaluations;
            let reduction =
                100.0 * (exh.evaluations - heur.evaluations) as f64 / exh.evaluations as f64;
            rows.push(vec![
                w.to_string(),
                format!("{:.1}", exh.best.total_cost),
                exh.evaluations.to_string(),
                exh.best.config.to_string(),
                format!("{:.1}", heur.best.total_cost),
                heur.evaluations.to_string(),
                heur.best.config.to_string(),
                format!("{reduction:.1}"),
                format!("{:.2}/{:.2}s", t_exh.as_secs_f64(), t_heur.as_secs_f64()),
            ]);
        }
        print!(
            "{}",
            msoc_bench::render_table(
                &["W", "C_exh", "N", "combo_exh", "C_heur", "N", "combo_heur", "dN%", "time"],
                &rows
            )
        );
        // The cross-width sweep answers "best width overall" as one
        // problem: a fresh planner (cold caches, honest accounting) runs
        // all five widths behind a single global cost incumbent.
        let mut sweep_planner = Planner::with_options(
            &soc,
            PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() },
        );
        let t0 = Instant::now();
        let sweep = sweep_planner.cost_optimizer_sweep(&WIDTHS, weights, 0.0).expect("cost sweep");
        println!(
            "cross-width sweep: best C = {:.1} at W = {} ({}), {} evals vs {} per-width \
             ({} members cost-bound pruned, {:.2}s)",
            sweep.best.total_cost,
            sweep.tam_width,
            sweep.best.config,
            sweep.evaluations,
            heur_evals,
            sweep_planner.stats().cost_bound_prunes,
            t0.elapsed().as_secs_f64(),
        );
        println!();
    }
    println!("paper: N_exh = 26 always; N_heur = 10 (61.5% reduction) or 7 (73.0%);");
    println!("heuristic optimal in all but one case. Wall times include cache reuse.");

    if msoc_bench::has_flag("--delta-sweep") {
        delta_sweep(&mut planner);
    }
    if msoc_bench::has_flag("--weight-sweep") {
        weight_sweep(&mut planner);
    }
}

/// Ablation: relaxing the elimination threshold δ trades evaluations for
/// a guarantee of optimality.
fn delta_sweep(planner: &mut Planner<'_>) {
    println!("\nablation: elimination threshold delta (W=48, balanced weights)");
    let weights = CostWeights::balanced();
    let exh = planner.exhaustive(48, weights).expect("exhaustive plan");
    let mut rows = Vec::new();
    for delta in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, f64::INFINITY] {
        let heur = planner.cost_optimizer(48, weights, delta).expect("plan");
        rows.push(vec![
            if delta.is_infinite() { "inf".into() } else { format!("{delta:.1}") },
            heur.evaluations.to_string(),
            format!("{:.2}", heur.best.total_cost),
            format!("{:.2}", heur.best.total_cost - exh.best.total_cost),
        ]);
    }
    print!("{}", msoc_bench::render_table(&["delta", "N", "C_heur", "gap to optimal"], &rows));
}

/// Ablation: the full W_T spectrum at W=48.
fn weight_sweep(planner: &mut Planner<'_>) {
    println!("\nablation: weight sweep (W=48)");
    let mut rows = Vec::new();
    for wt10 in 0..=10u32 {
        let wt = f64::from(wt10) / 10.0;
        let weights = CostWeights::new(wt, 1.0 - wt);
        let exh = planner.exhaustive(48, weights).expect("plan");
        rows.push(vec![
            format!("{wt:.1}"),
            format!("{:.1}", exh.best.total_cost),
            exh.best.config.to_string(),
            format!("{:.1}", exh.best.time_cost),
            format!("{:.1}", exh.best.area_cost),
        ]);
    }
    print!("{}", msoc_bench::render_table(&["W_T", "C", "combo", "C_T", "C_A"], &rows));
    println!("(time-heavy weights pick shallow sharing, area-heavy weights deep sharing)");
}
