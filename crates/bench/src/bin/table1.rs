//! Regenerates **Table 1** of the paper: area overhead cost `C_A` and
//! normalized analog test-time lower bound `T̄_LB` for every
//! wrapper-sharing combination, plus **Table 2** (the analog core test
//! specifications) with `--specs`.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin table1 [-- --specs]
//!     [--physical]     use the physically-derived area model
//!     [--beta-sweep]   ablation: routing factor β vs. the area-optimal combo
//! ```

use msoc_analog::paper_cores;
use msoc_awrapper::{AreaModel, SharingPolicy};
use msoc_core::cost::{area_cost, normalized_time_bound};
use msoc_core::partition::enumerate_paper;
use msoc_core::MixedSignalSoc;

fn main() {
    if msoc_bench::has_flag("--specs") {
        print_table2();
        println!();
    }

    let model = if msoc_bench::has_flag("--physical") {
        AreaModel::physical()
    } else {
        AreaModel::paper_calibrated()
    };
    let policy = SharingPolicy::default();
    let soc = MixedSignalSoc::p93791m();
    let classes = soc.analog_equivalence_classes();
    let cores = soc.analog.clone();

    let mut configs = enumerate_paper(cores.len(), &classes);
    configs.sort_by_key(|c| (std::cmp::Reverse(c.wrapper_count()), c.clone()));

    let mut rows = Vec::new();
    for config in &configs {
        let c_a = area_cost(config, &cores, &model, &policy)
            .unwrap_or_else(|e| panic!("area cost failed: {e}"));
        let t_lb = normalized_time_bound(config, &cores);
        rows.push(vec![
            config.wrapper_count().to_string(),
            config.to_string(),
            format!("{c_a:.1}"),
            format!("{t_lb:.1}"),
        ]);
    }
    println!("Table 1: area overhead cost and normalized analog test-time");
    println!("lower bound for all wrapper-sharing combinations");
    println!(
        "(area model: {})\n",
        if msoc_bench::has_flag("--physical") { "physical" } else { "paper-calibrated" }
    );
    print!("{}", msoc_bench::render_table(&["Nw", "sharing", "C_A", "T_LB"], &rows));
    println!(
        "\npaper anchors for T_LB: {{A,C}}=68.5 {{C,D}}=56.0 {{D,E}}=10.1 {{A,B,C,D}}=98.7 all=100"
    );

    if msoc_bench::has_flag("--beta-sweep") {
        println!();
        beta_sweep(&cores, &classes, &model);
    }
}

fn print_table2() {
    let mut rows = Vec::new();
    for core in paper_cores() {
        for t in &core.tests {
            rows.push(vec![
                format!("{} ({})", core.id, core.name),
                t.kind.to_string(),
                format!("{:.0} kHz", t.f_low_hz / 1e3),
                format!("{:.0} kHz", t.f_high_hz / 1e3),
                format!("{:.2} MHz", t.sample_rate_hz / 1e6),
                t.cycles.to_string(),
                t.tam_width.to_string(),
            ]);
        }
    }
    println!("Table 2: test requirements for the analog cores\n");
    print!(
        "{}",
        msoc_bench::render_table(
            &["core", "test", "f_low", "f_high", "f_sample", "cycles", "W"],
            &rows
        )
    );
}

fn beta_sweep(cores: &[msoc_analog::AnalogCoreSpec], classes: &[usize], model: &AreaModel) {
    println!("ablation: routing factor beta vs. area-optimal combination");
    let mut rows = Vec::new();
    for beta10 in 0..=10u32 {
        let beta = f64::from(beta10) / 10.0;
        let policy = SharingPolicy { beta, max_demand: None };
        let best = enumerate_paper(cores.len(), classes)
            .into_iter()
            .map(|c| {
                let cost = area_cost(&c, cores, model, &policy).expect("compatible");
                (c, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty candidate set");
        rows.push(vec![format!("{beta:.1}"), best.0.to_string(), format!("{:.1}", best.1)]);
    }
    print!("{}", msoc_bench::render_table(&["beta", "area-optimal sharing", "C_A"], &rows));
    println!(
        "(higher beta penalizes deep sharing; the optimum drifts toward shallower configurations)"
    );
}
