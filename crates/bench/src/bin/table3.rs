//! Regenerates **Table 3** of the paper: normalized SOC test time (`C_T`)
//! for every wrapper-sharing combination at several TAM widths.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin table3 [-- --all-widths]
//! ```
//!
//! The config × width matrix is planned through the cross-width table
//! engine ([`Planner::plan_table`]): one shared incumbent prunes the
//! cells that provably cannot matter, and the sweep summary below the
//! table shows what a pure best-cell query would have skipped. The full
//! Table 3 grid is then completed by evaluating the pruned cells too —
//! cache hits for everything the table engine already packed.
//!
//! Values are normalized to the all-cores-share-one-wrapper configuration
//! (= 100, the most constrained schedule). The paper's headline
//! observations, reproduced at the foot of the table: the spread between
//! the best and worst combination grows with TAM width, and the lowest
//! test times come from combinations with a low degree of sharing.

use msoc_core::report::render_table_report;
use msoc_core::{CostWeights, MixedSignalSoc, Planner, PlannerOptions};
use msoc_tam::Effort;

fn main() {
    let widths: Vec<u32> = if msoc_bench::has_flag("--all-widths") {
        vec![32, 40, 48, 56, 64]
    } else {
        vec![32, 48, 64]
    };

    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::with_options(
        &soc,
        PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() },
    );
    let candidates = planner.candidates();
    let weights = CostWeights::balanced(); // irrelevant: we report C_T only

    // The cross-width sweep: packs the cells one shared incumbent cannot
    // rule out, leaving prune markers elsewhere.
    let table = planner
        .plan_table(&candidates, &widths, weights)
        .expect("p93791m is feasible at every Table 3 width");
    println!("cross-width table sweep (w- width bound, c- cost bound, x- cross-width incumbent):");
    println!("{}", render_table_report(&table));

    // Full Table 3 fidelity: evaluate every cell — cache hits where the
    // table engine already packed, fresh packs only for pruned cells.
    let mut headers: Vec<String> = vec!["Nw".into(), "sharing".into()];
    headers.extend(widths.iter().map(|w| format!("W={w}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    // Evaluate everything and remember per-width minima for highlighting.
    let mut cells: Vec<Vec<f64>> = Vec::new();
    for config in &candidates {
        let mut row = Vec::new();
        for &w in &widths {
            let eval = planner
                .evaluate(config, w, weights)
                .unwrap_or_else(|e| panic!("evaluation failed at W={w}: {e}"));
            row.push(eval.time_cost);
        }
        cells.push(row);
    }
    let minima: Vec<f64> = (0..widths.len())
        .map(|i| cells.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min))
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (config, row) in candidates.iter().zip(&cells) {
        let mut out = vec![config.wrapper_count().to_string(), config.to_string()];
        for (i, &v) in row.iter().enumerate() {
            let marker = if (v - minima[i]).abs() < 1e-9 { " *" } else { "" };
            out.push(format!("{v:.1}{marker}"));
        }
        rows.push(out);
    }

    println!("Table 3: normalized test time C_T for SOC p93791m");
    println!("(100 = all analog cores share one wrapper; * = column minimum)\n");
    print!("{}", msoc_bench::render_table(&header_refs, &rows));

    println!("\nspread (max - min) per width:");
    for (i, &w) in widths.iter().enumerate() {
        let max = cells.iter().map(|r| r[i]).fold(0.0, f64::max);
        println!(
            "  W={w}: {:.2}   (paper reports 2.45 / 7.36 / 17.18 at W=32/48/64)",
            max - minima[i]
        );
    }
}
