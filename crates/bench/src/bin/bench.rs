//! Perf-tracking harness: schedules `p93791m` across TAM widths with both
//! packing engines, runs the full 26-candidate sharing sweep through a
//! `PackSession` versus from-scratch packs, and emits `BENCH_schedule.json`.
//!
//! The emitted file seeds the repo's performance trajectory:
//!
//! * `results` — the single-pack baseline: per width, the makespan
//!   (identical between engines by construction — they share the search
//!   layer) and the wall time of the skyline hot path versus the naive
//!   reference, at `Effort::Thorough` (the planning effort whose packing
//!   cost dominates real optimizer runs).
//! * `sweep` — the 26-candidate sharing sweep per width: session wall time
//!   versus packing every candidate from scratch, plus the session's
//!   skeleton hit/miss/prune counters. Every candidate's session schedule
//!   is asserted bit-identical to its from-scratch schedule, and the
//!   skeleton-reuse counters are asserted (≥ 20 reuses per width), so the
//!   sweep speedup can never come from a silently diverging result.
//!
//! Flags: `--quick` drops to one repetition per cell and a single sweep
//! width (CI smoke), `--out <path>` overrides the output path.

use std::time::Instant;

use msoc_core::{MixedSignalSoc, PlanStats, Planner, PlannerOptions, SharingConfig};
use msoc_tam::{schedule_with_engine, Effort, Engine, Schedule, ScheduleProblem};

const WIDTHS: [u32; 5] = [16, 24, 32, 48, 64];
const ACCEPTANCE_WIDTH: u32 = 32;
const MIN_SKELETON_REUSES_PER_WIDTH: u64 = 20;

struct Cell {
    tam_width: u32,
    makespan: u64,
    skyline_ms: f64,
    naive_ms: f64,
}

struct SweepCell {
    tam_width: u32,
    candidates: usize,
    winner_makespan: u64,
    session_ms: f64,
    scratch_ms: f64,
    skeleton_hits: u64,
    skeleton_misses: u64,
    pruned_passes: u64,
}

fn best_wall_ms(problem: &ScheduleProblem, engine: Engine, reps: usize) -> (Schedule, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = schedule_with_engine(problem, Effort::Thorough, engine)
            .expect("p93791m is feasible at every benched width");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(s);
    }
    (out.expect("at least one repetition"), best_ms)
}

/// One 26-candidate sweep at width `w`: session path vs from-scratch path,
/// with bit-identity and reuse-counter assertions.
fn run_sweep(soc: &MixedSignalSoc, w: u32) -> SweepCell {
    let opts = PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() };
    let mut planner = Planner::with_options(soc, opts);
    let candidates = planner.candidates();

    let t0 = Instant::now();
    planner.schedule_batch(&candidates, w).expect("sweep is feasible");
    let session_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats: PlanStats = planner.stats();

    // From-scratch reference: pack every candidate's problem directly.
    // Problems are pre-built and the bit-identity comparison runs after
    // the timer stops, so scratch_ms times nothing but the packs.
    let problems: Vec<ScheduleProblem> =
        candidates.iter().map(|c| planner.build_problem(c, w)).collect();
    let t0 = Instant::now();
    let scratch: Vec<Schedule> = problems
        .iter()
        .map(|p| {
            schedule_with_engine(p, Effort::Thorough, Engine::Skyline).expect("sweep is feasible")
        })
        .collect();
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut winner: Option<(u64, &SharingConfig)> = None;
    for (config, scratch) in candidates.iter().zip(&scratch) {
        let via_session = planner.schedule_for(config, w).expect("cached by the batch");
        assert_eq!(
            via_session, scratch,
            "session schedule diverged from from-scratch for {config} at w={w}"
        );
        if winner.is_none_or(|(m, _)| scratch.makespan() < m) {
            winner = Some((scratch.makespan(), config));
        }
    }
    let (winner_makespan, _) = winner.expect("candidate set is never empty");

    assert!(
        stats.skeleton_hits >= MIN_SKELETON_REUSES_PER_WIDTH,
        "sweep at w={w} reused only {} skeleton checkpoints (want >= {MIN_SKELETON_REUSES_PER_WIDTH}): {stats:?}",
        stats.skeleton_hits,
    );
    assert!(
        stats.skeleton_hits > stats.skeleton_misses,
        "skeleton reuse should dominate packing at w={w}: {stats:?}"
    );

    SweepCell {
        tam_width: w,
        candidates: candidates.len(),
        winner_makespan,
        session_ms,
        scratch_ms,
        skeleton_hits: stats.skeleton_hits,
        skeleton_misses: stats.skeleton_misses,
        pruned_passes: stats.pruned_passes,
    }
}

fn main() {
    let quick = msoc_bench::has_flag("--quick");
    let reps = if quick { 1 } else { 3 };
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".into());

    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::new(&soc);
    // The paper's headline sharing configuration: {A, B, E}, {C, D}.
    let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);

    let mut cells: Vec<Cell> = Vec::new();
    for w in WIDTHS {
        let problem = planner.build_problem(&config, w);
        let (fast, skyline_ms) = best_wall_ms(&problem, Engine::Skyline, reps);
        let (reference, naive_ms) = best_wall_ms(&problem, Engine::Naive, reps);
        assert_eq!(fast, reference, "engines must produce identical schedules (w={w})");
        fast.validate(&problem).expect("benched schedule must validate");
        println!(
            "w={w:<3} makespan={:<9} skyline={skyline_ms:>8.2} ms  naive={naive_ms:>8.2} ms  speedup={:.2}x",
            fast.makespan(),
            naive_ms / skyline_ms,
        );
        cells.push(Cell { tam_width: w, makespan: fast.makespan(), skyline_ms, naive_ms });
    }

    let acceptance = cells
        .iter()
        .find(|c| c.tam_width == ACCEPTANCE_WIDTH)
        .expect("acceptance width is benched");
    let speedup = acceptance.naive_ms / acceptance.skyline_ms;
    println!(
        "acceptance: w={ACCEPTANCE_WIDTH} speedup {speedup:.2}x (target >= 3x), makespans identical"
    );

    // The 26-candidate sharing sweep: PackSession vs from-scratch.
    let sweep_widths: &[u32] = if quick { &[ACCEPTANCE_WIDTH] } else { &WIDTHS };
    let mut sweeps: Vec<SweepCell> = Vec::new();
    for &w in sweep_widths {
        let cell = run_sweep(&soc, w);
        println!(
            "sweep w={w:<3} {} candidates  session={:>9.2} ms  scratch={:>9.2} ms  speedup={:.2}x  \
             skeleton hits/misses={}/{}  pruned={}",
            cell.candidates,
            cell.session_ms,
            cell.scratch_ms,
            cell.scratch_ms / cell.session_ms,
            cell.skeleton_hits,
            cell.skeleton_misses,
            cell.pruned_passes,
        );
        sweeps.push(cell);
    }
    let sweep_acceptance =
        sweeps.iter().find(|c| c.tam_width == ACCEPTANCE_WIDTH).expect("acceptance width is swept");
    let sweep_speedup = sweep_acceptance.scratch_ms / sweep_acceptance.session_ms;
    println!(
        "sweep acceptance: w={ACCEPTANCE_WIDTH} session speedup {sweep_speedup:.2}x, \
         schedules bit-identical"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"p93791m\",\n");
    json.push_str("  \"sharing_config\": \"{A,B,E},{C,D}\",\n");
    json.push_str("  \"effort\": \"Thorough\",\n");
    json.push_str(&format!("  \"repetitions\": {reps},\n"));
    json.push_str(&format!("  \"host_threads\": {},\n", msoc_par::max_threads()));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tam_width\": {}, \"makespan\": {}, \"skyline_ms\": {:.3}, \"naive_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            c.tam_width,
            c.makespan,
            c.skyline_ms,
            c.naive_ms,
            c.naive_ms / c.skyline_ms,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": [\n");
    for (i, c) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tam_width\": {}, \"candidates\": {}, \"winner_makespan\": {}, \"session_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {:.3}, \"skeleton_hits\": {}, \"skeleton_misses\": {}, \"pruned_passes\": {}}}{}\n",
            c.tam_width,
            c.candidates,
            c.winner_makespan,
            c.session_ms,
            c.scratch_ms,
            c.scratch_ms / c.session_ms,
            c.skeleton_hits,
            c.skeleton_misses,
            c.pruned_passes,
            if i + 1 == sweeps.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"tam_width\": {ACCEPTANCE_WIDTH}, \"speedup\": {speedup:.3}, \"sweep_speedup\": {sweep_speedup:.3}, \"identical_makespans\": true}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_schedule.json");
    println!("wrote {out_path}");

    assert!(
        quick || speedup >= 3.0,
        "skyline path regressed below the 3x acceptance bar: {speedup:.2}x"
    );
    assert!(
        sweep_speedup >= 1.0,
        "the pack session made the sweep slower than from-scratch: {sweep_speedup:.2}x"
    );
}
