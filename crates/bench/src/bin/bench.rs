//! Perf-tracking harness: schedules `p93791m` across TAM widths with both
//! packing engines and emits `BENCH_schedule.json`.
//!
//! The emitted file seeds the repo's performance trajectory: each row
//! records the makespan (identical between engines by construction — the
//! engines share the search layer) and the wall time of the skyline hot
//! path versus the naive reference, at `Effort::Thorough` (the planning
//! effort whose packing cost dominates real optimizer runs).
//!
//! Flags: `--quick` drops to one repetition per cell (CI smoke),
//! `--out <path>` overrides the output path.

use std::time::Instant;

use msoc_core::{MixedSignalSoc, Planner, SharingConfig};
use msoc_tam::{schedule_with_engine, Effort, Engine, Schedule, ScheduleProblem};

const WIDTHS: [u32; 5] = [16, 24, 32, 48, 64];
const ACCEPTANCE_WIDTH: u32 = 32;

struct Cell {
    tam_width: u32,
    makespan: u64,
    skyline_ms: f64,
    naive_ms: f64,
}

fn best_wall_ms(problem: &ScheduleProblem, engine: Engine, reps: usize) -> (Schedule, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = schedule_with_engine(problem, Effort::Thorough, engine)
            .expect("p93791m is feasible at every benched width");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(s);
    }
    (out.expect("at least one repetition"), best_ms)
}

fn main() {
    let quick = msoc_bench::has_flag("--quick");
    let reps = if quick { 1 } else { 3 };
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".into());

    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::new(&soc);
    // The paper's headline sharing configuration: {A, B, E}, {C, D}.
    let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);

    let mut cells: Vec<Cell> = Vec::new();
    for w in WIDTHS {
        let problem = planner.build_problem(&config, w);
        let (fast, skyline_ms) = best_wall_ms(&problem, Engine::Skyline, reps);
        let (reference, naive_ms) = best_wall_ms(&problem, Engine::Naive, reps);
        assert_eq!(fast, reference, "engines must produce identical schedules (w={w})");
        fast.validate(&problem).expect("benched schedule must validate");
        println!(
            "w={w:<3} makespan={:<9} skyline={skyline_ms:>8.2} ms  naive={naive_ms:>8.2} ms  speedup={:.2}x",
            fast.makespan(),
            naive_ms / skyline_ms,
        );
        cells.push(Cell { tam_width: w, makespan: fast.makespan(), skyline_ms, naive_ms });
    }

    let acceptance = cells
        .iter()
        .find(|c| c.tam_width == ACCEPTANCE_WIDTH)
        .expect("acceptance width is benched");
    let speedup = acceptance.naive_ms / acceptance.skyline_ms;
    println!(
        "acceptance: w={ACCEPTANCE_WIDTH} speedup {speedup:.2}x (target >= 3x), makespans identical"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"p93791m\",\n");
    json.push_str("  \"sharing_config\": \"{A,B,E},{C,D}\",\n");
    json.push_str("  \"effort\": \"Thorough\",\n");
    json.push_str(&format!("  \"repetitions\": {reps},\n"));
    json.push_str(&format!("  \"host_threads\": {},\n", msoc_par::max_threads()));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tam_width\": {}, \"makespan\": {}, \"skyline_ms\": {:.3}, \"naive_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            c.tam_width,
            c.makespan,
            c.skyline_ms,
            c.naive_ms,
            c.naive_ms / c.skyline_ms,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"tam_width\": {ACCEPTANCE_WIDTH}, \"speedup\": {speedup:.3}, \"identical_makespans\": true}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_schedule.json");
    println!("wrote {out_path}");

    assert!(
        quick || speedup >= 3.0,
        "skyline path regressed below the 3x acceptance bar: {speedup:.2}x"
    );
}
