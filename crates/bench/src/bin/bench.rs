//! Perf-tracking harness: schedules `p93791m` across TAM widths with both
//! packing engines, runs the full 26-candidate sharing sweep through the
//! session/service stack, drives a multi-SOC fleet through a shared
//! [`PlanService`], and emits `BENCH_schedule.json`.
//!
//! The emitted file seeds the repo's performance trajectory:
//!
//! * `results` — the single-pack baseline: per width, the makespan
//!   (identical between engines by construction — they share the search
//!   layer) and the wall time of the skyline hot path versus the naive
//!   reference, at `Effort::Thorough` (the planning effort whose packing
//!   cost dominates real optimizer runs).
//! * `sweep` — the 26-candidate sharing sweep per width, three ways: a
//!   per-instance PR 2-style session sweep, packing every candidate from
//!   scratch, and a *warm* `PlanService` replaying the sweep from its
//!   fingerprint caches. Every candidate's session schedule is asserted
//!   bit-identical to its from-scratch schedule, skeleton reuse and
//!   delta-prefix-restore counters are asserted non-trivial, and the warm
//!   service must beat the per-instance sweep by ≥ 1.3× at the acceptance
//!   width — so no speedup can come from a silently diverging result.
//! * `service` — the multi-SOC front-end: a fleet of ITC'02-derived and
//!   synthetic mixed-signal SOCs registered as `SocHandle`s and planned
//!   twice through one service's job API (`submit`); cold vs warm wall
//!   time, cache hit counters, and the ≥ 1.2× warm speedup the CI smoke
//!   asserts.
//! * `service_api` — the incremental-revision and persistence paths: two
//!   analog cores of the largest SOC are revised (`SocHandle::revise`)
//!   and the whole fleet re-planned — unchanged SOCs must be
//!   bit-identical pure cache hits, the revised SOC bit-identical to a
//!   cold plan of the revised content, ≥ 1.2× faster than the cold fleet
//!   with `revision_cache_hits > 0` — and the schedule cache round-trips
//!   export → bytes → import with a bit-identical, zero-miss replay.
//! * `snapshot` — the persistence tier: the v2 snapshot codec's size and
//!   speed (bytes/schedule, encode/decode MB/s, compression vs the v1
//!   layout) plus the warm-from-disk boot path — import wall time, a
//!   warm-RAM vs warm-disk replay ratio the full run holds to ≤ 1.3×,
//!   and a starved-schedule-cache sweep that must restore checkpoint
//!   prefixes from the persisted tries with *zero* skeleton re-packs.
//! * `load` — the streaming throughput tier: a 10k-SOC synthetic fleet
//!   (300 under `--quick`) registered on one sharded service, then a
//!   deterministic popularity-skewed job-arrival trace — mixed widths,
//!   priorities, generous and zero-budget deadlines, pre-cancelled
//!   tokens, and per-submitter revision jobs — streamed from several
//!   submitter OS threads, each recording per-submit latency into a
//!   mergeable log2 histogram. Every concurrent outcome is asserted
//!   bit-identical to a serial single-thread replay of the same trace on
//!   a fresh service; the section records jobs/sec (concurrent and
//!   1-thread), p50/p99/max latency, per-shard lookup spread and lock
//!   contention, and the persistent pool's dispatch/steal/park counters.
//! * `portfolio` — the engine race: two synthetic fleets with opposite
//!   dominance profiles (chain-dominated: a few long pattern-heavy scan
//!   chains make tall serial jobs; area-dominated: many short chains make
//!   malleable jobs where 2D packing quality decides) are swept through
//!   the full candidate batch twice, once skyline-only and once with
//!   `Engine::Portfolio` racing skyline, MaxRects and guillotine behind a
//!   shared frozen incumbent. Every `(config, width)` cell asserts
//!   portfolio makespan ≤ skyline makespan (the race's structural
//!   guarantee), and the per-engine win/prune counters plus the
//!   test-time speedup (summed skyline cycles over summed portfolio
//!   cycles — test application time is the paper's objective, so ≥ 1.0×
//!   by construction and > 1.0× whenever a non-skyline engine wins a
//!   race) land in the report's `engine_wins` entries.
//!
//! Flags: `--quick` drops to one repetition per cell, a single sweep
//! width and a smaller fleet (CI smoke), `--out <path>` overrides the
//! output path.

use std::time::{Duration, Instant};

use msoc_analog::paper_cores;
use msoc_bench::LatencyHistogram;
use msoc_core::{
    blob_name, parse_blob_name, recover, CancelToken, CoreEdit, CostWeights, DaemonConfig,
    Deadline, DirStore, ExportOutcome, FaultyStore, Job, JobBuilder, JobOutcome, MixedSignalSoc,
    PlanError, PlanReport, PlanService, PlanStats, Planner, PlannerOptions, Priority,
    ServiceSnapshot, SharingConfig, SnapshotDaemon, SnapshotStore, SocHandle, TableReport,
};
use msoc_tam::{schedule_with_engine, Effort, Engine, Schedule, ScheduleProblem};

const WIDTHS: [u32; 5] = [16, 24, 32, 48, 64];
const ACCEPTANCE_WIDTH: u32 = 32;
const MIN_SKELETON_REUSES_PER_WIDTH: u64 = 20;
/// Required warm-service advantage over the per-instance session sweep.
const MIN_WARM_SWEEP_SPEEDUP: f64 = 1.3;
/// Required warm-over-cold advantage for the multi-SOC fleet batch.
const MIN_FLEET_WARM_SPEEDUP: f64 = 1.2;
/// Required table-engine advantage over the equivalent per-width loop.
const MIN_TABLE_SPEEDUP: f64 = 1.2;
/// Required fleet advantage of a two-cores-revised re-plan over the cold
/// fleet plan (the incremental-revision API's reason to exist).
const MIN_REVISION_SPEEDUP: f64 = 1.2;
/// The portfolio must win at least this many races with a non-skyline
/// engine across the two synthetic fleets — otherwise the extra engines
/// are dead weight and the race degenerates to the skyline alone.
const MIN_NON_SKYLINE_WINS: u64 = 1;

struct Cell {
    tam_width: u32,
    makespan: u64,
    skyline_ms: f64,
    naive_ms: f64,
}

struct SweepCell {
    tam_width: u32,
    candidates: usize,
    winner_makespan: u64,
    session_ms: f64,
    scratch_ms: f64,
    service_warm_ms: f64,
    skeleton_hits: u64,
    skeleton_misses: u64,
    pruned_passes: u64,
    prefix_hits: u64,
    prefix_jobs_restored: u64,
    max_prefix_depth: u64,
}

struct ServiceCell {
    socs: usize,
    requests: usize,
    cold_ms: f64,
    warm_ms: f64,
    session_hits: u64,
    schedule_hits: u64,
    schedule_misses: u64,
    prefix_jobs_restored: u64,
    max_prefix_depth: u64,
    /// Warm re-plan of the whole fleet after revising two analog cores of
    /// one SOC: unchanged SOCs are pure cache hits, the revised SOC
    /// re-hits its sessions and repacks only its deltas.
    warm_revision_ms: f64,
    revision_cache_hits: u64,
    /// Snapshot roundtrip: export -> bytes -> import -> warm replay.
    snapshot_bytes: usize,
    snapshot_schedules: usize,
}

fn best_wall_ms(problem: &ScheduleProblem, engine: Engine, reps: usize) -> (Schedule, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let s = schedule_with_engine(problem, Effort::Thorough, engine)
            .expect("p93791m is feasible at every benched width");
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(s);
    }
    (out.expect("at least one repetition"), best_ms)
}

/// One 26-candidate sweep at width `w`: per-instance session path vs
/// from-scratch path vs warm-service replay, with bit-identity and
/// reuse-counter assertions.
fn run_sweep(soc: &MixedSignalSoc, w: u32) -> SweepCell {
    let opts = || PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() };
    let mut planner = Planner::with_options(soc, opts());
    let candidates = planner.candidates();

    let t0 = Instant::now();
    planner.schedule_batch(&candidates, w).expect("sweep is feasible");
    let session_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats: PlanStats = planner.stats();

    // From-scratch reference: pack every candidate's problem directly.
    // Problems are pre-built and the bit-identity comparison runs after
    // the timer stops, so scratch_ms times nothing but the packs.
    let problems: Vec<ScheduleProblem> =
        candidates.iter().map(|c| planner.build_problem(c, w)).collect();
    let t0 = Instant::now();
    let scratch: Vec<Schedule> = problems
        .iter()
        .map(|p| {
            schedule_with_engine(p, Effort::Thorough, Engine::Skyline).expect("sweep is feasible")
        })
        .collect();
    let scratch_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut winner: Option<(u64, &SharingConfig)> = None;
    for (config, scratch) in candidates.iter().zip(&scratch) {
        let via_session = planner.schedule_for(config, w).expect("cached by the batch");
        assert_eq!(
            via_session, scratch,
            "session schedule diverged from from-scratch for {config} at w={w}"
        );
        if winner.is_none_or(|(m, _)| scratch.makespan() < m) {
            winner = Some((scratch.makespan(), config));
        }
    }
    let (winner_makespan, _) = winner.expect("candidate set is never empty");

    // Warm-service replay: fill a persistent service once, then time a
    // *new* planner instance running the same sweep against it. This is
    // the cross-instance persistence PR 2 lacked — the warm run must be
    // pure cache traffic.
    let service = PlanService::new();
    let mut cold = Planner::with_service(soc, opts(), &service);
    cold.schedule_batch(&candidates, w).expect("sweep is feasible");
    let t0 = Instant::now();
    let mut warm = Planner::with_service(soc, opts(), &service);
    warm.schedule_batch(&candidates, w).expect("sweep is feasible");
    let service_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    for (config, scratch) in candidates.iter().zip(&scratch) {
        let via_warm = warm.schedule_for(config, w).expect("cached by the warm batch");
        assert_eq!(
            via_warm, scratch,
            "warm-service schedule diverged from from-scratch for {config} at w={w}"
        );
    }

    assert!(
        stats.skeleton_hits >= MIN_SKELETON_REUSES_PER_WIDTH,
        "sweep at w={w} reused only {} skeleton checkpoints (want >= {MIN_SKELETON_REUSES_PER_WIDTH}): {stats:?}",
        stats.skeleton_hits,
    );
    assert!(
        stats.skeleton_hits > stats.skeleton_misses,
        "skeleton reuse should dominate packing at w={w}: {stats:?}"
    );
    assert!(
        stats.prefix_jobs_restored > 0 && stats.max_prefix_depth > 0,
        "the delta-prefix trie must restore shared prefixes at w={w}: {stats:?}"
    );

    SweepCell {
        tam_width: w,
        candidates: candidates.len(),
        winner_makespan,
        session_ms,
        scratch_ms,
        service_warm_ms,
        skeleton_hits: stats.skeleton_hits,
        skeleton_misses: stats.skeleton_misses,
        pruned_passes: stats.pruned_passes,
        prefix_hits: stats.prefix_hits,
        prefix_jobs_restored: stats.prefix_jobs_restored,
        max_prefix_depth: stats.max_prefix_depth,
    }
}

struct TableBench {
    report: TableReport,
    per_width_ms: f64,
    table_ms: f64,
    table_ms_1t: f64,
}

/// The full 26-config × 5-width matrix, three ways: the PR 3-style
/// per-width loop (five independent `schedule_batch` sweeps on one
/// planner), the cross-width table engine (`plan_table`, one shared
/// incumbent), and a 1-thread replay of the table for `msoc_par` scaling.
/// Every packed table cell is asserted bit-identical to the per-width
/// loop's makespan for the same `(config, width)`, and the 1-thread
/// replay must reproduce the table exactly (prune decisions are
/// wave-frozen, so thread count cannot change them).
fn run_table(soc: &MixedSignalSoc) -> TableBench {
    let opts = || PlannerOptions { effort: Effort::Thorough, ..PlannerOptions::default() };
    let candidates = Planner::with_options(soc, opts()).candidates();
    let weights = CostWeights::balanced();

    let t0 = Instant::now();
    let mut loop_planner = Planner::with_options(soc, opts());
    for &w in &WIDTHS {
        loop_planner.schedule_batch(&candidates, w).expect("per-width sweep is feasible");
    }
    let per_width_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut table_planner = Planner::with_options(soc, opts());
    let report =
        table_planner.plan_table(&candidates, &WIDTHS, weights).expect("table is feasible");
    let table_ms = t0.elapsed().as_secs_f64() * 1e3;

    for (ci, config) in candidates.iter().enumerate() {
        for (wi, &w) in WIDTHS.iter().enumerate() {
            if let Some(m) = report.makespan(ci, wi) {
                let loop_m = loop_planner.makespan(config, w).expect("cached by the loop");
                assert_eq!(
                    m, loop_m,
                    "table cell ({config}, w={w}) diverged from the per-width loop"
                );
            }
        }
    }
    assert!(
        report.stats.cross_width_prunes > 0,
        "the shared incumbent must prune across widths: {:?}",
        report.stats
    );

    let t0 = Instant::now();
    let report_1t = msoc_par::with_threads(1, || {
        let mut p = Planner::with_options(soc, opts());
        p.plan_table(&candidates, &WIDTHS, weights).expect("table is feasible")
    });
    let table_ms_1t = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report_1t, report, "thread count must not change the table result");

    TableBench { report, per_width_ms, table_ms, table_ms_1t }
}

/// The multi-SOC fleet through the job API: ITC'02-derived SOCs plus
/// synthetic ones, registered as handles and planned through `submit` —
/// cold, warm replay, a two-cores-revised re-plan, and a snapshot
/// export/import replay.
fn run_service_fleet(quick: bool) -> ServiceCell {
    let mut fleet: Vec<MixedSignalSoc> = vec![
        MixedSignalSoc::d695m(),
        MixedSignalSoc::new("p22810m", msoc_itc02::synth::p22810s(), paper_cores()),
    ];
    if !quick {
        fleet.push(MixedSignalSoc::p93791m());
    }
    let synth_count = if quick { 2 } else { 4 };
    for digital in msoc_itc02::synth::random_fleet(
        41,
        synth_count,
        msoc_itc02::synth::RandomSocParams::default(),
    ) {
        let name = digital.name.clone();
        fleet.push(MixedSignalSoc::new(format!("{name}m"), digital, paper_cores()));
    }

    let widths: &[u32] = if quick { &[ACCEPTANCE_WIDTH] } else { &[24, ACCEPTANCE_WIDTH] };
    let opts = PlannerOptions { effort: Effort::Standard, ..PlannerOptions::default() };
    let service = PlanService::new();
    let handles: Vec<SocHandle> = fleet.iter().map(|soc| service.register(soc.clone())).collect();
    let jobs_for = |handles: &[SocHandle]| -> Vec<Job> {
        handles
            .iter()
            .flat_map(|handle| {
                widths.iter().map(|&w| {
                    JobBuilder::for_handle(handle)
                        .single(w)
                        .weights(CostWeights::balanced())
                        .opts(opts.clone())
                        .build()
                        .expect("fleet jobs are well-formed")
                })
            })
            .collect()
    };
    let jobs = jobs_for(&handles);
    let plan_of = |outcome: &JobOutcome, what: &str| -> PlanReport {
        match outcome {
            JobOutcome::Completed(report) => {
                report.result.plan().expect("single jobs return plans").clone()
            }
            other => panic!("{what} job did not complete: {other:?}"),
        }
    };

    let t0 = Instant::now();
    let cold = service.submit(&jobs);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let warm = service.submit(&jobs);
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

    for ((job, c), w) in jobs.iter().zip(&cold).zip(&warm) {
        let name = &job.soc().name;
        let (c, w) = (plan_of(c, "cold"), plan_of(w, "warm"));
        assert_eq!(c.best, w.best, "warm plan diverged for {name} w={}", c.tam_width);
        assert_eq!(c.schedule, w.schedule, "warm schedule diverged for {name}");
    }

    let stats = service.stats();
    assert!(stats.session_hits > 0, "warm batch must reuse sessions: {stats:?}");
    assert!(stats.schedule_hits > 0, "warm batch must hit the schedule cache: {stats:?}");

    // Revise two analog cores of the largest SOC (longer IIP3/THD tests)
    // and re-plan the *whole* fleet: unchanged SOCs replay from the
    // schedule cache, the revised SOC re-hits its sessions (warm skeleton
    // checkpoints + prefix trie) and repacks only its analog deltas.
    let revised_idx = fleet.iter().position(|soc| soc.name == "p93791m").unwrap_or(0);
    let handle = &handles[revised_idx];
    let mut core_d = handle.soc().analog[3].clone();
    core_d.tests[0].cycles += 5_000;
    let mut core_e = handle.soc().analog[4].clone();
    core_e.tests[0].cycles += 5_000;
    let revised = handle
        .revise(&[
            CoreEdit::ReplaceAnalog { index: 3, core: core_d },
            CoreEdit::ReplaceAnalog { index: 4, core: core_e },
        ])
        .expect("revision edits are well-formed");
    let mut revised_handles = handles.clone();
    revised_handles[revised_idx] = revised;
    let revised_jobs = jobs_for(&revised_handles);
    let hits_before_revision = service.stats().revision_cache_hits;
    let t0 = Instant::now();
    let revision = service.submit(&revised_jobs);
    let warm_revision_ms = t0.elapsed().as_secs_f64() * 1e3;
    let revision_cache_hits = service.stats().revision_cache_hits - hits_before_revision;
    assert!(
        revision_cache_hits > 0,
        "the revised SOC must re-hit warm content: {:?}",
        service.stats()
    );
    // Unchanged SOCs stay bit-identical to the cold batch; the revised
    // SOC must match a cold service planning the revised fleet member.
    let fresh = PlanService::new();
    for (i, ((job, c), r)) in revised_jobs.iter().zip(&cold).zip(&revision).enumerate() {
        let name = &job.soc().name;
        let r = plan_of(r, "revision");
        if i / widths.len() == revised_idx {
            let cold_revised = plan_of(&fresh.submit(std::slice::from_ref(job))[0], "cold-revised");
            assert_eq!(r.best, cold_revised.best, "revised plan diverged for {name}");
            assert_eq!(r.schedule, cold_revised.schedule, "revised schedule diverged for {name}");
        } else {
            let c = plan_of(c, "cold");
            assert_eq!(c.best, r.best, "unchanged cell diverged for {name} w={}", c.tam_width);
            assert_eq!(c.schedule, r.schedule, "unchanged schedule diverged for {name}");
        }
    }

    // Snapshot roundtrip: the exported schedule cache must replay the
    // original fleet bit-identically in a fresh process, without packing.
    let snapshot = service.export_snapshot();
    let bytes = snapshot.to_bytes();
    let imported = PlanService::from_snapshot(
        &ServiceSnapshot::from_bytes(&bytes).expect("own snapshot bytes decode"),
    )
    .expect("own snapshot imports");
    let replay = imported.submit(&jobs);
    for ((job, c), r) in jobs.iter().zip(&cold).zip(&replay) {
        let name = &job.soc().name;
        let (c, r) = (plan_of(c, "cold"), plan_of(r, "snapshot-replay"));
        assert_eq!(c.best, r.best, "snapshot replay diverged for {name} w={}", c.tam_width);
        assert_eq!(c.schedule, r.schedule, "snapshot replay schedule diverged for {name}");
    }
    let imported_stats = imported.stats();
    assert_eq!(
        imported_stats.schedule_misses, 0,
        "snapshot replay must be pure cache traffic: {imported_stats:?}"
    );

    ServiceCell {
        socs: fleet.len(),
        requests: jobs.len(),
        cold_ms,
        warm_ms,
        session_hits: stats.session_hits,
        schedule_hits: stats.schedule_hits,
        schedule_misses: stats.schedule_misses,
        prefix_jobs_restored: stats.sessions.prefix_jobs_restored,
        max_prefix_depth: stats.sessions.max_prefix_depth,
        warm_revision_ms,
        revision_cache_hits,
        snapshot_bytes: bytes.len(),
        snapshot_schedules: snapshot.schedule_count(),
    }
}

/// The persistence run's metrics: v2 codec throughput and size, plus
/// the warm-from-disk vs warm-from-RAM replay comparison and the
/// starved-cache trie acceptance counters.
struct SnapshotCell {
    sessions: usize,
    schedules: usize,
    trie_nodes: usize,
    checkpoints: usize,
    total_bytes: usize,
    bytes_per_schedule: f64,
    v1_bytes: usize,
    compression_ratio: f64,
    encode_mbps: f64,
    decode_mbps: f64,
    import_ms: f64,
    warm_ram_replay_ms: f64,
    warm_disk_replay_ms: f64,
    disk_over_ram: f64,
    cold_rebuild_ms: f64,
    /// Skeleton orderings the disk-restored sessions re-packed during a
    /// full sweep-level replay — the acceptance demands zero.
    rebuild_packs: u64,
    /// Delta-prefix restores those sessions served during the same
    /// replay.
    prefix_hits: u64,
    import_restored: u64,
    import_dropped: u64,
}

/// The persistence bench: warm a fleet service, push its caches through
/// the v2 byte format, and prove a disk boot replays like the original
/// process — schedule hits at full caps, prefix-trie restores (zero
/// skeleton re-packs) when the schedule cache is starved away.
fn run_snapshot(quick: bool) -> SnapshotCell {
    let mut fleet: Vec<MixedSignalSoc> = vec![MixedSignalSoc::d695m()];
    if !quick {
        fleet.push(MixedSignalSoc::new("p22810m", msoc_itc02::synth::p22810s(), paper_cores()));
    }
    let synth_count = if quick { 2 } else { 3 };
    for digital in msoc_itc02::synth::random_fleet(
        43,
        synth_count,
        msoc_itc02::synth::RandomSocParams::default(),
    ) {
        let name = digital.name.clone();
        fleet.push(MixedSignalSoc::new(format!("{name}m"), digital, paper_cores()));
    }
    let widths: &[u32] = if quick { &[ACCEPTANCE_WIDTH] } else { &[24, ACCEPTANCE_WIDTH] };
    let opts = PlannerOptions { effort: Effort::Standard, ..PlannerOptions::default() };
    let jobs: Vec<Job> = fleet
        .iter()
        .flat_map(|soc| {
            widths.iter().map(|&w| {
                JobBuilder::new(soc.clone())
                    .single(w)
                    .weights(CostWeights::balanced())
                    .opts(opts.clone())
                    .build()
                    .expect("snapshot bench jobs are well-formed")
            })
        })
        .collect();
    let plan_of = |outcome: &JobOutcome, what: &str| -> PlanReport {
        match outcome {
            JobOutcome::Completed(report) => {
                report.result.plan().expect("single jobs return plans").clone()
            }
            other => panic!("{what} job did not complete: {other:?}"),
        }
    };

    let service = PlanService::new();
    let t0 = Instant::now();
    let baseline = service.submit(&jobs);
    let cold_rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Codec throughput and size accounting.
    let snapshot = service.export_snapshot();
    let t0 = Instant::now();
    let bytes = snapshot.to_bytes();
    let encode_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let decoded = ServiceSnapshot::from_bytes(&bytes).expect("own snapshot bytes decode");
    let decode_s = t0.elapsed().as_secs_f64();
    assert_eq!(decoded, snapshot, "snapshot must roundtrip through bytes");
    let stats = snapshot.stats();
    let mb = bytes.len() as f64 / (1024.0 * 1024.0);

    // Boot warm from "disk" (the decoded bytes) at full caps.
    let t0 = Instant::now();
    let imported = PlanService::from_snapshot(&decoded).expect("own snapshot imports");
    let import_ms = t0.elapsed().as_secs_f64() * 1e3;
    let booted = imported.stats();
    assert!(booted.sessions.import_restored > 0, "boot must restore checkpoints: {booted:?}");
    assert_eq!(booted.sessions.import_dropped, 0, "own snapshots drop nothing: {booted:?}");

    // Warm-from-disk vs warm-from-RAM: replay the whole workload on the
    // original (RAM-warm) service and on the disk boot; both are pure
    // cache service, so best-of-N walls should agree within noise.
    let replay_reps = 5;
    let replay_ms = |svc: &PlanService| -> f64 {
        (0..replay_reps)
            .map(|_| {
                let t = Instant::now();
                let replay = svc.submit(&jobs);
                let wall = t.elapsed().as_secs_f64() * 1e3;
                assert!(replay.iter().all(|o| o.report().is_some()), "replay jobs must plan");
                wall
            })
            .fold(f64::INFINITY, f64::min)
    };
    let warm_ram_replay_ms = replay_ms(&service);
    let warm_disk_replay_ms = replay_ms(&imported);
    let replay = imported.submit(&jobs);
    for ((job, b), r) in jobs.iter().zip(&baseline).zip(&replay) {
        let name = &job.soc().name;
        let (b, r) = (plan_of(b, "baseline"), plan_of(r, "disk-replay"));
        assert_eq!(b.best, r.best, "disk replay diverged for {name} w={}", b.tam_width);
        assert_eq!(b.schedule, r.schedule, "disk replay schedule diverged for {name}");
    }
    assert_eq!(
        imported.stats().schedule_misses,
        0,
        "full-cap disk replay must be pure schedule hits: {:?}",
        imported.stats()
    );

    // The trie acceptance: starve the schedule cache (one entry per
    // shard) so the replay is forced down to session-level packs — the
    // disk-restored tries must serve every skeleton ordering (zero
    // rebuild packs) and restore delta prefixes.
    let starved = PlanService::from_snapshot_with_caps(&decoded, 1, 256).expect("starved import");
    let before = starved.stats();
    let sweep = starved.submit(&jobs);
    for ((job, b), s) in jobs.iter().zip(&baseline).zip(&sweep) {
        let name = &job.soc().name;
        let (b, s) = (plan_of(b, "baseline"), plan_of(s, "starved-replay"));
        assert_eq!(b.best, s.best, "starved replay diverged for {name} w={}", b.tam_width);
        assert_eq!(b.schedule, s.schedule, "starved replay schedule diverged for {name}");
    }
    let after = starved.stats();
    let rebuild_packs = after.sessions.skeleton_misses - before.sessions.skeleton_misses;
    let prefix_hits = after.sessions.prefix_hits - before.sessions.prefix_hits;
    assert_eq!(
        rebuild_packs, 0,
        "disk-restored tries must serve every skeleton ordering: {after:?}"
    );
    assert!(prefix_hits > 0, "sweep replay must restore delta prefixes: {after:?}");

    SnapshotCell {
        sessions: stats.sessions,
        schedules: stats.schedules,
        trie_nodes: stats.trie_nodes,
        checkpoints: stats.checkpoints,
        total_bytes: stats.total_bytes,
        bytes_per_schedule: stats.total_bytes as f64 / stats.schedules.max(1) as f64,
        v1_bytes: stats.v1_bytes,
        compression_ratio: stats.compression_ratio,
        encode_mbps: mb / encode_s.max(1e-9),
        decode_mbps: mb / decode_s.max(1e-9),
        import_ms,
        warm_ram_replay_ms,
        warm_disk_replay_ms,
        disk_over_ram: warm_disk_replay_ms / warm_ram_replay_ms.max(1e-9),
        cold_rebuild_ms,
        rebuild_packs,
        prefix_hits,
        import_restored: booted.sessions.import_restored,
        import_dropped: booted.sessions.import_dropped,
    }
}

/// The streaming load run: a synthetic 10k-SOC fleet, one deterministic
/// popularity-skewed job-arrival trace, several submitter OS threads
/// against one sharded service — and the same trace replayed serially on
/// a fresh service for the bit-identity check and the 1-thread scaling
/// baseline.
struct LoadCell {
    socs: usize,
    jobs: usize,
    submitters: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
    /// One submitter, `with_threads(1)` — the serial replay's throughput.
    jobs_per_sec_1t: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    interrupted: u64,
    revision_cache_hits: u64,
    session_lookups: u64,
    schedule_lookups: u64,
    schedule_hits: u64,
    schedule_misses: u64,
    lock_contentions: u64,
    shard_max_contentions: u64,
    shard_max_lookups: u64,
    shard_min_lookups: u64,
    /// Pool counter deltas over the concurrent phase.
    pool_dispatches: u64,
    pool_steals: u64,
    pool_parks: u64,
    pool_unparks: u64,
    pool_workers: u64,
}

/// What one trace slot expects back, derived from how the job was built
/// (deterministic, so serial and concurrent runs are comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadExpect {
    Plan,
    DeadlineExceeded,
    Cancelled,
}

fn run_load(quick: bool) -> LoadCell {
    // Small synthetic cores keep a cold Quick plan cheap enough that a
    // 10k-SOC fleet's cold tail stays a load test, not a soak test.
    let params = msoc_itc02::synth::RandomSocParams {
        cores: 6,
        chains: (1, 6),
        chain_len: (20, 120),
        patterns: (10, 60),
        terminals: (4, 40),
    };
    let fleet_size = if quick { 300 } else { 10_000 };
    let trace_len = if quick { 240 } else { 4_000 };
    let submitters = if quick { 3 } else { 4 };
    let opts = PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() };
    let widths = [16u32, 24, 32];

    let service = PlanService::new();
    let handles: Vec<SocHandle> = msoc_itc02::synth::random_fleet(977, fleet_size, params)
        .into_iter()
        .map(|digital| {
            let name = format!("{}m", digital.name);
            service.register(MixedSignalSoc::new(name, digital, paper_cores()))
        })
        .collect();
    // The hot set: popularity-skewed traffic concentrates here, so warm
    // cache hits dominate the trace the way a real fleet's would.
    let hot: Vec<usize> = (0..32.min(fleet_size)).map(|i| (i * 97) % fleet_size).collect();
    // One revised handle per submitter (analog-only edits: same digital
    // skeleton, so the revision re-hits the original's session).
    let revised: Vec<SocHandle> = (0..submitters)
        .map(|s| {
            let handle = &handles[hot[s]];
            let mut core = handle.soc().analog[0].clone();
            core.tests[0].cycles += 1_000 * (s as u64 + 1);
            handle.revise(&[CoreEdit::ReplaceAnalog { index: 0, core }]).expect("edit well-formed")
        })
        .collect();

    // Deterministic trace: an LCG drives SOC choice, width, priority and
    // deadline mix. Slot `s` plans the original of hot SOC `s`, and the
    // *last* slot of submitter `s`'s round-robin partition plans its
    // revision — same partition, so the original is always planned first
    // and the revision provably re-hits warm content in both runs.
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng >> 33
    };
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let mut trace: Vec<(Job, LoadExpect)> = Vec::with_capacity(trace_len);
    for i in 0..trace_len {
        let leader = i < submitters;
        let closer = i + submitters >= trace_len;
        let (soc_idx, r) = if leader {
            (hot[i], next())
        } else {
            let r = next();
            let pick = next() as usize;
            (if r % 5 < 4 { hot[pick % hot.len()] } else { pick % fleet_size }, next())
        };
        let revision_slot = closer.then(|| i % submitters);
        // Leaders and revision closers share one pinned width, so each
        // closer's session lookup provably re-hits what its partition's
        // leader created.
        let width = if leader || closer { 24 } else { widths[r as usize % widths.len()] };
        let mut builder = match revision_slot {
            Some(s) => JobBuilder::for_handle(&revised[s]),
            None => JobBuilder::for_handle(&handles[soc_idx]),
        }
        .single(width)
        .weights(CostWeights::balanced())
        .opts(opts.clone());
        builder = match r % 7 {
            0 => builder.priority(Priority::High),
            1 => builder.priority(Priority::Low),
            _ => builder,
        };
        // Leaders, closers and most slots run to completion (some under a
        // generous deadline); a deterministic sprinkle of zero-budget
        // deadlines and pre-cancelled tokens exercises the interrupt
        // paths without touching the caches.
        let mut expect = LoadExpect::Plan;
        if !leader && !closer {
            match r % 23 {
                2 => {
                    builder = builder.deadline(Deadline::checks(0));
                    expect = LoadExpect::DeadlineExceeded;
                }
                3 => {
                    builder = builder.cancel_token(&cancelled);
                    expect = LoadExpect::Cancelled;
                }
                4..=8 => builder = builder.deadline(Deadline::checks(u64::MAX)),
                _ => {}
            }
        }
        trace.push((builder.build().expect("load jobs are well-formed"), expect));
    }

    let check = |outcome: &JobOutcome, expect: LoadExpect, i: usize| -> Option<PlanReport> {
        match (outcome, expect) {
            (JobOutcome::Completed(report), LoadExpect::Plan) => {
                Some(report.result.plan().expect("single jobs return plans").clone())
            }
            (JobOutcome::DeadlineExceeded { .. }, LoadExpect::DeadlineExceeded) => None,
            (JobOutcome::Cancelled, LoadExpect::Cancelled) => None,
            (other, expect) => panic!("load job {i} expected {expect:?}, got {other:?}"),
        }
    };

    // Serial reference: the whole trace, one job at a time, one thread,
    // fresh service. This is both the bit-identity oracle and the
    // 1-thread scaling baseline.
    let serial_service = PlanService::new();
    let t0 = Instant::now();
    let serial: Vec<Option<PlanReport>> = msoc_par::with_threads(1, || {
        trace
            .iter()
            .enumerate()
            .map(|(i, (job, expect))| {
                let outcome = &serial_service.submit(std::slice::from_ref(job))[0];
                check(outcome, *expect, i)
            })
            .collect()
    });
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Concurrent run: `submitters` OS threads stream their round-robin
    // partition through the shared sharded service, each recording its
    // own latency histogram (merged after the barrier). Planner-internal
    // maps run at a forced width ≥ 2 so the persistent pool engages even
    // on a 1-core host.
    let inner_width = msoc_par::max_threads().max(2);
    let pool_before = msoc_par::pool_stats();
    let t0 = Instant::now();
    let (histogram, outcomes) = std::thread::scope(|scope| {
        let spawned: Vec<_> = (0..submitters)
            .map(|s| {
                let (trace, service) = (&trace, &service);
                scope.spawn(move || {
                    let mut histogram = LatencyHistogram::new();
                    let mut ran: Vec<(usize, JobOutcome)> = Vec::new();
                    for (i, (job, _)) in trace.iter().enumerate().skip(s).step_by(submitters) {
                        let t = Instant::now();
                        let outcome = msoc_par::with_threads(inner_width, || {
                            service.submit(std::slice::from_ref(job)).pop().expect("one outcome")
                        });
                        histogram.record(t.elapsed().as_micros() as u64);
                        ran.push((i, outcome));
                    }
                    (histogram, ran)
                })
            })
            .collect();
        let mut merged = LatencyHistogram::new();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..trace.len()).map(|_| None).collect();
        for handle in spawned {
            let (histogram, ran) = handle.join().expect("submitter thread");
            merged.merge(&histogram);
            for (i, outcome) in ran {
                outcomes[i] = Some(outcome);
            }
        }
        (merged, outcomes)
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pool_after = msoc_par::pool_stats();

    // The acceptance gate: every concurrent outcome bit-identical to the
    // serial replay (interrupted slots must interrupt the same way).
    for (i, (outcome, reference)) in outcomes.iter().zip(&serial).enumerate() {
        let outcome = outcome.as_ref().expect("every trace slot ran");
        let concurrent = check(outcome, trace[i].1, i);
        match (&concurrent, reference) {
            (Some(c), Some(r)) => {
                assert_eq!(c.best, r.best, "load job {i} diverged from serial replay");
                assert_eq!(c.schedule, r.schedule, "load job {i} schedule diverged");
            }
            (None, None) => {}
            other => panic!("load job {i} outcome kind diverged: {other:?}"),
        }
    }

    let stats = service.stats();
    assert!(stats.jobs_interrupted > 0, "the trace carries interrupts: {stats:?}");
    assert!(
        stats.revision_cache_hits >= submitters as u64,
        "every revision closer must re-hit warm content: {stats:?}"
    );
    assert_eq!(
        stats.session_hits + stats.session_misses,
        stats.session_lookups,
        "sharded session counters incoherent: {stats:?}"
    );
    assert_eq!(
        stats.schedule_hits + stats.schedule_misses,
        stats.schedule_lookups,
        "sharded schedule counters incoherent: {stats:?}"
    );
    let shards = service.shard_stats();
    assert_eq!(
        shards.iter().map(|s| s.live_sessions).sum::<u64>(),
        stats.live_sessions,
        "shard occupancy must sum to the aggregate"
    );

    LoadCell {
        socs: fleet_size,
        jobs: trace.len(),
        submitters,
        wall_ms,
        jobs_per_sec: trace.len() as f64 / (wall_ms / 1e3),
        jobs_per_sec_1t: trace.len() as f64 / (serial_ms / 1e3),
        p50_us: histogram.quantile(0.5),
        p99_us: histogram.quantile(0.99),
        max_us: histogram.quantile(1.0),
        interrupted: stats.jobs_interrupted,
        revision_cache_hits: stats.revision_cache_hits,
        session_lookups: stats.session_lookups,
        schedule_lookups: stats.schedule_lookups,
        schedule_hits: stats.schedule_hits,
        schedule_misses: stats.schedule_misses,
        lock_contentions: stats.lock_contentions,
        shard_max_contentions: shards.iter().map(|s| s.contentions).max().unwrap_or(0),
        shard_max_lookups: shards
            .iter()
            .map(|s| s.session_lookups + s.schedule_lookups)
            .max()
            .unwrap_or(0),
        shard_min_lookups: shards
            .iter()
            .map(|s| s.session_lookups + s.schedule_lookups)
            .min()
            .unwrap_or(0),
        pool_dispatches: pool_after.dispatches - pool_before.dispatches,
        pool_steals: pool_after.steals - pool_before.steals,
        pool_parks: pool_after.parks - pool_before.parks,
        pool_unparks: pool_after.unparks - pool_before.unparks,
        pool_workers: pool_after.workers,
    }
}

/// One fleet's trip through the engine race: the same full candidate
/// batch, once skyline-only and once through `Engine::Portfolio`.
struct RaceProfile {
    name: &'static str,
    socs: usize,
    /// `(config, width)` cells compared between the two runs.
    cells: u64,
    /// Races run (one per portfolio delta pack); the per-engine wins
    /// below sum to exactly this.
    races: u64,
    wins_skyline: u64,
    wins_maxrects: u64,
    wins_guillotine: u64,
    /// Improvement passes cut short because another engine's frozen
    /// incumbent was tighter than the member's own best.
    race_prunes: u64,
    /// Summed 1-based index of the check boundary where each race's
    /// winning makespan was first published (race convergence speed).
    checks_to_best: u64,
    /// Cells where the portfolio's makespan is *strictly* below the
    /// skyline's (ties go to the skyline by rank).
    improved_cells: u64,
    skyline_cycles: u128,
    portfolio_cycles: u128,
    skyline_ms: f64,
    portfolio_ms: f64,
}

impl RaceProfile {
    /// Test-application-time speedup of the portfolio over skyline-only —
    /// makespan is the paper's objective, and the race's guarantee makes
    /// this ≥ 1.0 by construction.
    fn test_time_speedup(&self) -> f64 {
        self.skyline_cycles as f64 / self.portfolio_cycles as f64
    }
}

struct ResilienceCell {
    fault_percent: u32,
    rounds: usize,
    exports_persisted: u64,
    exports_failed: u64,
    put_retries: u64,
    backoff_ms: f64,
    injected_faults: u64,
    unchanged_skips: u64,
    pruned_generations: u64,
    export_ms: f64,
    recover_ms: f64,
    scanned: usize,
    quarantined: u64,
    quarantine_coherent: bool,
    recovered_generation: u64,
    replay_hits: u64,
    replay_misses: u64,
    replay_identical: bool,
    panic_failed_jobs: u64,
    shed_jobs: u64,
}

/// The fault-tolerance bench: an export→crash→boot loop through a
/// `FaultyStore` injecting IO errors, torn writes, silent bit flips and
/// stale reads into ≥30% of operations. The daemon must persist every
/// dirty generation within its backoff budget; after a crash plus
/// deliberate on-disk corruption, recovery must quarantine exactly the
/// damaged generations and replay the newest intact one with zero
/// schedule misses. Per-job degradation rides along: a deliberately
/// panicking job must fail alone (siblings bit-identical) and a capped
/// service must shed overflow as structured rejections.
fn run_resilience(quick: bool) -> ResilienceCell {
    let fault_percent = 35u32;
    let widths: &[u32] = if quick { &[16, 24, 32] } else { &[16, 20, 24, 28, 32] };
    let opts = PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() };
    let root = std::env::temp_dir().join(format!("msoc_bench_resilience_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = FaultyStore::new(
        DirStore::open(&root).expect("temp dir store"),
        0xBE7C_0DE5,
        fault_percent,
    );
    let service = PlanService::new();
    let config = DaemonConfig {
        max_attempts: 40,
        base_backoff: Duration::from_micros(20),
        max_backoff: Duration::from_millis(1),
        ..DaemonConfig::default()
    };
    let mut daemon = SnapshotDaemon::with_config(&service, &store, config);

    // Traffic rounds: warm new content, poll, and demand a persisted
    // generation each time — the daemon's core eventual-persistence
    // guarantee under fault injection.
    let job_of = |w: u32| {
        JobBuilder::new(MixedSignalSoc::d695m())
            .single(w)
            .weights(CostWeights::balanced())
            .opts(opts.clone())
            .build()
            .expect("resilience bench jobs are well-formed")
    };
    let mut baselines: Vec<PlanReport> = Vec::new();
    let t0 = Instant::now();
    for &width in widths {
        let outcome = service.submit(&[job_of(width)]).pop().expect("one outcome");
        baselines
            .push(outcome.report().expect("warm jobs plan").result.plan().expect("plan").clone());
        match daemon.poll() {
            ExportOutcome::Persisted { .. } => {}
            other => panic!(
                "the daemon must persist every dirty generation at {fault_percent}% faults: \
                 {other:?}"
            ),
        }
    }
    let export_ms = t0.elapsed().as_secs_f64() * 1e3;
    let dstats = daemon.stats();

    // Per-job panic isolation on the same service: the poisoned job
    // degrades to Failed, its sibling re-plans bit-identically.
    let poisoned = [
        job_of(widths[0]),
        JobBuilder::new(MixedSignalSoc::d695m())
            .single(widths[0])
            .opts(opts.clone())
            .inject_panic("bench fault injection")
            .build()
            .expect("poison job builds"),
    ];
    // The injected panic is caught per-job; silence the global hook so
    // the deliberate backtrace does not pollute the bench report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = service.submit(&poisoned);
    std::panic::set_hook(prev_hook);
    assert!(
        matches!(outcomes[1], JobOutcome::Failed { .. }),
        "the poisoned job must degrade to Failed: {:?}",
        outcomes[1]
    );
    let sibling = outcomes[0].report().expect("sibling completes").result.plan().unwrap();
    assert_eq!(
        sibling.best, baselines[0].best,
        "a panicked neighbor must not perturb sibling results"
    );
    let panic_failed_jobs = service.stats().jobs_failed;

    // Admission shedding on a capped twin: structured Overloaded
    // rejections for the overflow, never a panic or a hang.
    let capped = PlanService::new().with_admission_cap(1);
    let shed_outcomes = capped.submit(&[job_of(widths[0]), job_of(widths[0])]);
    assert!(
        shed_outcomes
            .iter()
            .any(|o| matches!(o, JobOutcome::Rejected(PlanError::Overloaded { .. }))),
        "a capped service must shed overflow as Overloaded"
    );
    let shed_jobs = capped.stats().jobs_shed;

    // Crash, then corrupt the newest generation the way a torn copy
    // would: recovery must quarantine it and boot the newest intact.
    let _ = daemon;
    drop(service);
    let inner = store.inner();
    let newest = inner
        .list()
        .expect("inner list")
        .into_iter()
        .filter(|n| parse_blob_name(n).is_some())
        .max_by_key(|n| parse_blob_name(n).unwrap().0)
        .expect("generations persisted");
    let mut bytes = inner.get(&newest).expect("inner get");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    inner.put(&newest, &bytes).expect("inject corruption");

    // Ground truth before recovery: which generations are intact?
    let mut on_disk: Vec<(u64, bool)> = Vec::new();
    for name in inner.list().expect("inner list") {
        let Some((generation, _)) = parse_blob_name(&name) else { continue };
        let intact = blob_name(generation, &inner.get(&name).expect("inner get")) == name;
        on_disk.push((generation, intact));
    }
    let newest_intact = on_disk
        .iter()
        .filter(|(_, intact)| *intact)
        .map(|(g, _)| *g)
        .max()
        .expect("an intact generation survives");
    let corrupt_newer =
        on_disk.iter().filter(|(g, intact)| !*intact && *g > newest_intact).count() as u64;

    let t0 = Instant::now();
    let report = recover(&store);
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.generation,
        Some(newest_intact),
        "recovery must boot the newest intact generation"
    );
    assert!(report.quarantined >= 1, "the corrupted generation must be quarantined");
    let quarantine_coherent = report.quarantined == corrupt_newer
        && report.service.stats().quarantined_generations == report.quarantined;

    // Bit-identical warm replay of everything the booted generation saw.
    let mut replay_identical = true;
    for (i, &width) in widths.iter().take(newest_intact as usize).enumerate() {
        let outcome = report.service.submit(&[job_of(width)]).pop().expect("one outcome");
        let plan = outcome.report().expect("replay plans").result.plan().expect("plan").clone();
        replay_identical &= plan.best == baselines[i].best;
    }
    let rstats = report.service.stats();
    let _ = std::fs::remove_dir_all(&root);

    ResilienceCell {
        fault_percent,
        rounds: widths.len(),
        exports_persisted: dstats.exports_persisted,
        exports_failed: dstats.exports_failed,
        put_retries: dstats.put_retries,
        backoff_ms: dstats.backoff_total.as_secs_f64() * 1e3,
        injected_faults: store.fault_counters().total(),
        unchanged_skips: dstats.unchanged_skips,
        pruned_generations: dstats.pruned_generations,
        export_ms,
        recover_ms,
        scanned: report.scanned,
        quarantined: report.quarantined,
        quarantine_coherent,
        recovered_generation: newest_intact,
        replay_hits: rstats.schedule_hits,
        replay_misses: rstats.schedule_misses,
        replay_identical,
        panic_failed_jobs,
        shed_jobs,
    }
}

/// Two deterministic synthetic fleets with opposite dominance profiles.
///
/// *Chain-dominated* is anchored on `p93791s`, whose dominant core holds
/// about two thirds of the test data: its tall job chain sets the
/// makespan, most races tie (ties go to the skyline by rank), and
/// MaxRects wins only at the wide TAMs where the dominant job leaves
/// awkward corners. *Area-dominated* is anchored on `p22810s`, whose
/// flat data distribution makes the schedule capacity-limited — the
/// free-rectangle geometry finds placements the skyline's earliest-fit
/// misses at the narrow widths. Seeded `random_fleet` members ride along
/// in each fleet so the counters also cover unstructured instances.
fn race_fleets(quick: bool) -> (Vec<MixedSignalSoc>, Vec<MixedSignalSoc>) {
    use msoc_itc02::synth::{p22810s, random_fleet, RandomSocParams};
    let extras = if quick { 1 } else { 2 };
    let chain_params = RandomSocParams {
        cores: 10,
        chains: (1, 3),
        chain_len: (250, 400),
        patterns: (150, 300),
        terminals: (4, 40),
    };
    let area_params = RandomSocParams {
        cores: 14,
        chains: (8, 14),
        chain_len: (20, 70),
        patterns: (40, 160),
        terminals: (16, 120),
    };
    let extend = |fleet: &mut Vec<MixedSignalSoc>, prefix: &str, seed: u64, params| {
        for digital in random_fleet(seed, extras, params) {
            let name = format!("{prefix}-{}", digital.name);
            fleet.push(MixedSignalSoc::new(name, digital, paper_cores()));
        }
    };
    let mut chain = vec![MixedSignalSoc::p93791m()];
    extend(&mut chain, "chain", 1913, chain_params);
    let mut area = vec![MixedSignalSoc::new("p22810m", p22810s(), paper_cores())];
    extend(&mut area, "area", 2005, area_params);
    (chain, area)
}

/// Sweeps one fleet's full candidate batch at every width, skyline-only
/// and portfolio, then compares the two cell by cell: the portfolio must
/// never lose a single `(config, width)` makespan.
fn run_race_profile(
    name: &'static str,
    fleet: &[MixedSignalSoc],
    widths: &[u32],
    effort: Effort,
) -> RaceProfile {
    let opts = |engine| PlannerOptions { effort, engine, ..PlannerOptions::default() };
    let sweep = |engine: Engine| -> (Vec<Planner<'_>>, f64) {
        let t0 = Instant::now();
        let mut planners: Vec<Planner<'_>> =
            fleet.iter().map(|soc| Planner::with_options(soc, opts(engine))).collect();
        for planner in &mut planners {
            let candidates = planner.candidates();
            for &w in widths {
                planner.schedule_batch(&candidates, w).expect("race fleet is feasible");
            }
        }
        (planners, t0.elapsed().as_secs_f64() * 1e3)
    };
    let (mut skyline, skyline_ms) = sweep(Engine::Skyline);
    let (mut portfolio, portfolio_ms) = sweep(Engine::Portfolio);

    let mut out = RaceProfile {
        name,
        socs: fleet.len(),
        cells: 0,
        races: 0,
        wins_skyline: 0,
        wins_maxrects: 0,
        wins_guillotine: 0,
        race_prunes: 0,
        checks_to_best: 0,
        improved_cells: 0,
        skyline_cycles: 0,
        portfolio_cycles: 0,
        skyline_ms,
        portfolio_ms,
    };
    for (sky, race) in skyline.iter_mut().zip(&mut portfolio) {
        let candidates = sky.candidates();
        for &w in widths {
            for config in &candidates {
                let s = sky.makespan(config, w).expect("cached by the skyline sweep");
                let r = race.makespan(config, w).expect("cached by the portfolio sweep");
                assert!(r <= s, "portfolio lost to the skyline for {config} at w={w}: {r} vs {s}");
                out.cells += 1;
                out.improved_cells += u64::from(r < s);
                out.skyline_cycles += u128::from(s);
                out.portfolio_cycles += u128::from(r);
            }
        }
        let stats: PlanStats = race.stats();
        out.races += stats.delta_packs;
        out.wins_skyline += stats.portfolio_wins_skyline;
        out.wins_maxrects += stats.portfolio_wins_maxrects;
        out.wins_guillotine += stats.portfolio_wins_guillotine;
        out.race_prunes += stats.portfolio_race_prunes;
        out.checks_to_best += stats.portfolio_checks_to_best;
    }
    assert_eq!(
        out.wins_skyline + out.wins_maxrects + out.wins_guillotine,
        out.races,
        "every race records exactly one winner ({name})"
    );
    out
}

/// The `server` section: the `msocd` daemon under concurrent TCP load,
/// with a kill-mid-load recovery drill.
struct ServerBench {
    clients: usize,
    jobs: u64,
    jobs_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    replay_identical: bool,
    queue_shed: u64,
    generations_persisted: u64,
    shard_exports_reused: u64,
    recovered_generation: u64,
    recover_ms: f64,
    warm_replay_hits: u64,
    warm_replay_misses: u64,
}

/// Boots the TCP daemon with persistent snapshots, streams a
/// deterministic mixed-priority trace from several concurrent clients
/// (outcomes compared byte-for-byte against a serial in-process
/// replay), forces a generation, pushes more traffic, then *kills* the
/// server (no shutdown flush) and recovers the tenant's shard from its
/// newest intact generation — the pre-kill trace must replay warm with
/// zero schedule misses. A second, depth-capped server demonstrates
/// queue-depth shedding as structured `Overloaded` outcomes.
fn run_server(quick: bool) -> ServerBench {
    use msoc_net::{build_trace, run_loopback, Client, ServerConfig, WireJob, WireOutcome};

    let root = std::env::temp_dir().join(format!("msoc_bench_server_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ServerConfig {
        shards: 2,
        store_root: Some(root.clone()),
        snapshot_tick: Duration::from_millis(5),
        // The shutdown below simulates a kill: no final flush, so
        // recovery must work from what the ticker and the forced
        // snapshot persisted mid-load.
        flush_on_shutdown: false,
        ..ServerConfig::default()
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("ephemeral addr");
    let serve_config = config.clone();
    let server =
        std::thread::spawn(move || msoc_net::serve(listener, &serve_config).expect("serve"));

    // Phase 1: the measured load — concurrent clients, mixed
    // priorities, bit-identity against the serial oracle.
    let tenant = "bench-tenant";
    let clients = 3;
    let trace = build_trace(if quick { 10 } else { 30 }, 3, 0xB13D);
    let load = run_loopback(addr, tenant, &trace, clients).expect("loopback load");

    // Force a generation that provably covers phase 1, then push tail
    // traffic the kill is allowed to lose.
    let mut control = Client::connect(addr, tenant).expect("control client");
    control.snapshot_now().expect("forced snapshot");
    for batch in &build_trace(4, 2, 0xAF7E) {
        control.submit(batch.clone()).expect("tail traffic");
    }
    control.shutdown().expect("kill");
    let report = server.join().expect("server thread");
    let generations_persisted: u64 = report.shards.iter().map(|s| s.generations_persisted).sum();
    let shard_exports_reused: u64 = report.shards.iter().map(|s| s.shard_exports_reused).sum();

    // Recovery: open the killed tenant shard's store directly, boot the
    // newest intact generation, and replay the pre-kill trace — pure
    // cache traffic if the snapshot really carried the load.
    let shard = msoc_net::tenant_shard(tenant, config.shards);
    let store = DirStore::open(root.join(format!("shard-{shard}"))).expect("open shard store");
    let t0 = Instant::now();
    let recovered = recover(&store);
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let recovered_generation =
        recovered.generation.expect("a generation survived the mid-load kill");
    let registry = std::collections::HashMap::new();
    for batch in &trace {
        msoc_net::execute_jobs(&recovered.service, &registry, batch);
    }
    let warm = recovered.service.stats();

    // Queue-depth backpressure, demonstrated deterministically: depth 1
    // against a batch of 4 sheds exactly the 3 lowest-priority jobs.
    let shed_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let shed_addr = shed_listener.local_addr().expect("ephemeral addr");
    let shed_config =
        ServerConfig { shards: 1, queue_depth_cap: Some(1), ..ServerConfig::default() };
    let shed_server =
        std::thread::spawn(move || msoc_net::serve(shed_listener, &shed_config).expect("serve"));
    let mut shed_client = Client::connect(shed_addr, tenant).expect("shed client");
    let soc = msoc_net::WireSoc::from_soc(&MixedSignalSoc::d695m());
    let batch: Vec<WireJob> = [16u32, 20, 24, 28]
        .iter()
        .map(|&w| {
            WireJob::new(
                msoc_net::WireSocRef::Inline(soc.clone()),
                msoc_net::WireSpec::Single { width: w },
            )
        })
        .collect();
    let outcomes = shed_client.submit(batch).expect("overloaded submit");
    let queue_shed =
        outcomes.iter().filter(|o| matches!(o, WireOutcome::Overloaded { .. })).count() as u64;
    shed_client.shutdown().expect("shed server shutdown");
    shed_server.join().expect("shed server thread");

    let _ = std::fs::remove_dir_all(&root);
    ServerBench {
        clients,
        jobs: load.jobs,
        jobs_per_sec: load.jobs_per_sec,
        p50_us: load.p50_us,
        p99_us: load.p99_us,
        replay_identical: load.replay_identical,
        queue_shed,
        generations_persisted,
        shard_exports_reused,
        recovered_generation,
        recover_ms,
        warm_replay_hits: warm.schedule_hits,
        warm_replay_misses: warm.schedule_misses,
    }
}

fn main() {
    let quick = msoc_bench::has_flag("--quick");
    let reps = if quick { 1 } else { 3 };
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_schedule.json".into());

    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::new(&soc);
    // The paper's headline sharing configuration: {A, B, E}, {C, D}.
    let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);

    let mut cells: Vec<Cell> = Vec::new();
    for w in WIDTHS {
        let problem = planner.build_problem(&config, w);
        let (fast, skyline_ms) = best_wall_ms(&problem, Engine::Skyline, reps);
        let (reference, naive_ms) = best_wall_ms(&problem, Engine::Naive, reps);
        assert_eq!(fast, reference, "engines must produce identical schedules (w={w})");
        fast.validate(&problem).expect("benched schedule must validate");
        println!(
            "w={w:<3} makespan={:<9} skyline={skyline_ms:>8.2} ms  naive={naive_ms:>8.2} ms  speedup={:.2}x",
            fast.makespan(),
            naive_ms / skyline_ms,
        );
        cells.push(Cell { tam_width: w, makespan: fast.makespan(), skyline_ms, naive_ms });
    }

    let acceptance = cells
        .iter()
        .find(|c| c.tam_width == ACCEPTANCE_WIDTH)
        .expect("acceptance width is benched");
    let speedup = acceptance.naive_ms / acceptance.skyline_ms;
    println!(
        "acceptance: w={ACCEPTANCE_WIDTH} speedup {speedup:.2}x (target >= 3x), makespans identical"
    );

    // The 26-candidate sharing sweep: per-instance session vs from-scratch
    // vs warm service.
    let sweep_widths: &[u32] = if quick { &[ACCEPTANCE_WIDTH] } else { &WIDTHS };
    let mut sweeps: Vec<SweepCell> = Vec::new();
    for &w in sweep_widths {
        let cell = run_sweep(&soc, w);
        println!(
            "sweep w={w:<3} {} candidates  session={:>9.2} ms  scratch={:>9.2} ms  speedup={:.2}x  \
             warm-service={:>7.2} ms ({:.1}x vs session)  skeleton hits/misses={}/{}  \
             prefix restores={} (depth<={})  pruned={}",
            cell.candidates,
            cell.session_ms,
            cell.scratch_ms,
            cell.scratch_ms / cell.session_ms,
            cell.service_warm_ms,
            cell.session_ms / cell.service_warm_ms,
            cell.skeleton_hits,
            cell.skeleton_misses,
            cell.prefix_jobs_restored,
            cell.max_prefix_depth,
            cell.pruned_passes,
        );
        sweeps.push(cell);
    }
    let sweep_acceptance =
        sweeps.iter().find(|c| c.tam_width == ACCEPTANCE_WIDTH).expect("acceptance width is swept");
    let sweep_speedup = sweep_acceptance.scratch_ms / sweep_acceptance.session_ms;
    let warm_sweep_speedup = sweep_acceptance.session_ms / sweep_acceptance.service_warm_ms;
    println!(
        "sweep acceptance: w={ACCEPTANCE_WIDTH} session speedup {sweep_speedup:.2}x, \
         warm service {warm_sweep_speedup:.2}x vs per-instance, schedules bit-identical"
    );

    // The cross-width table engine vs the per-width loop.
    let table = run_table(&soc);
    let ts = table.report.stats;
    let table_speedup = table.per_width_ms / table.table_ms;
    let cells_per_sec = ts.cells as f64 / (table.table_ms / 1e3);
    let cells_per_sec_1t = ts.cells as f64 / (table.table_ms_1t / 1e3);
    println!(
        "table {}x{} = {} cells  packed={}  pruned: width={} cost={} cross-width={}  \
         per-width-loop={:.2} ms  table={:.2} ms ({table_speedup:.2}x)",
        ts.cells / WIDTHS.len(),
        WIDTHS.len(),
        ts.cells,
        ts.packed,
        ts.width_bound_prunes,
        ts.cost_bound_prunes,
        ts.cross_width_prunes,
        table.per_width_ms,
        table.table_ms,
    );
    println!(
        "table msoc_par scaling: {cells_per_sec_1t:.1} cells/s at 1 thread vs \
         {cells_per_sec:.1} cells/s at {} threads ({:.2}x)  winner {} at W={} ({} cycles)",
        msoc_par::max_threads(),
        cells_per_sec / cells_per_sec_1t,
        table.report.best.config,
        table.report.winner_width,
        table.report.winner_makespan,
    );

    // The multi-SOC service fleet through the job API.
    let fleet = run_service_fleet(quick);
    let fleet_speedup = fleet.cold_ms / fleet.warm_ms;
    let revision_speedup = fleet.cold_ms / fleet.warm_revision_ms;
    println!(
        "service fleet: {} SOCs, {} jobs  cold={:.2} ms  warm={:.2} ms  speedup={:.2}x  \
         session hits={}  schedule hits/misses={}/{}",
        fleet.socs,
        fleet.requests,
        fleet.cold_ms,
        fleet.warm_ms,
        fleet_speedup,
        fleet.session_hits,
        fleet.schedule_hits,
        fleet.schedule_misses,
    );
    println!(
        "service api: 2-core revision re-plan={:.2} ms ({revision_speedup:.2}x vs cold, \
         {} revision cache hits)  snapshot={} schedules / {} bytes, replay bit-identical",
        fleet.warm_revision_ms,
        fleet.revision_cache_hits,
        fleet.snapshot_schedules,
        fleet.snapshot_bytes,
    );

    // The persistence tier: v2 snapshot codec + warm-from-disk boot.
    let snap = run_snapshot(quick);
    println!(
        "snapshot: {} sessions  {} schedules  {} trie nodes ({} checkpoints)  {} bytes \
         ({:.1} B/schedule, {:.1}x vs v1 layout)  encode={:.1} MB/s  decode={:.1} MB/s",
        snap.sessions,
        snap.schedules,
        snap.trie_nodes,
        snap.checkpoints,
        snap.total_bytes,
        snap.bytes_per_schedule,
        snap.compression_ratio,
        snap.encode_mbps,
        snap.decode_mbps,
    );
    println!(
        "snapshot boot: import={:.2} ms ({} checkpoints restored, {} dropped)  replay \
         ram={:.2} ms  disk={:.2} ms ({:.2}x)  cold rebuild={:.2} ms  \
         starved-cache sweep: rebuild packs={}  prefix restores={}",
        snap.import_ms,
        snap.import_restored,
        snap.import_dropped,
        snap.warm_ram_replay_ms,
        snap.warm_disk_replay_ms,
        snap.disk_over_ram,
        snap.cold_rebuild_ms,
        snap.rebuild_packs,
        snap.prefix_hits,
    );

    // The streaming load harness: a synthetic fleet under a deterministic
    // multi-submitter job trace, with a serial bit-identity replay.
    let load = run_load(quick);
    println!(
        "load: {} SOCs  {} jobs  {} submitters  {:.2} ms  {:.1} jobs/s ({:.1} at 1 thread)  \
         p50={} us  p99={} us  interrupted={}  revision hits={}",
        load.socs,
        load.jobs,
        load.submitters,
        load.wall_ms,
        load.jobs_per_sec,
        load.jobs_per_sec_1t,
        load.p50_us,
        load.p99_us,
        load.interrupted,
        load.revision_cache_hits,
    );
    println!(
        "load shards/pool: contentions={} (max/shard {})  lookups/shard min..max={}..{}  \
         pool dispatches={} steals={} parks={} unparks={} workers={}",
        load.lock_contentions,
        load.shard_max_contentions,
        load.shard_min_lookups,
        load.shard_max_lookups,
        load.pool_dispatches,
        load.pool_steals,
        load.pool_parks,
        load.pool_unparks,
        load.pool_workers,
    );

    // The fault-tolerance loop: export→crash→boot through a seeded
    // faulty store, with panic isolation and admission shedding riding
    // along.
    let res = run_resilience(quick);
    println!(
        "resilience: {}% faults  {} rounds  {} generations persisted ({} failed)  {} retries  \
         {:.2} ms backoff  {} faults injected  {} pruned",
        res.fault_percent,
        res.rounds,
        res.exports_persisted,
        res.exports_failed,
        res.put_retries,
        res.backoff_ms,
        res.injected_faults,
        res.pruned_generations,
    );
    println!(
        "resilience boot: scanned {}  quarantined {} (coherent={})  booted generation {}  \
         replay hits={} misses={} identical={}  recover={:.2} ms  panic-failed jobs={}  \
         shed jobs={}",
        res.scanned,
        res.quarantined,
        res.quarantine_coherent,
        res.recovered_generation,
        res.replay_hits,
        res.replay_misses,
        res.replay_identical,
        res.recover_ms,
        res.panic_failed_jobs,
        res.shed_jobs,
    );

    // The network tier: the msocd daemon under concurrent TCP load,
    // killed mid-load and recovered from its snapshots.
    let srv = run_server(quick);
    println!(
        "server: {} clients  {} jobs  {:.1} jobs/s  p50={} us  p99={} us  \
         replay identical={}  queue shed={}",
        srv.clients,
        srv.jobs,
        srv.jobs_per_sec,
        srv.p50_us,
        srv.p99_us,
        srv.replay_identical,
        srv.queue_shed,
    );
    println!(
        "server recovery: {} generations persisted mid-load ({} shard exports reused)  \
         kill-recovered generation {} in {:.2} ms  warm replay hits/misses={}/{}",
        srv.generations_persisted,
        srv.shard_exports_reused,
        srv.recovered_generation,
        srv.recover_ms,
        srv.warm_replay_hits,
        srv.warm_replay_misses,
    );

    // The engine portfolio race on two opposite-profile synthetic fleets.
    // Both width bands matter: MaxRects beats the skyline on the
    // chain-dominated profile at wide TAMs and on the area-dominated
    // profile at narrow ones.
    let race_widths: &[u32] =
        if quick { &[16, ACCEPTANCE_WIDTH] } else { &[16, 24, ACCEPTANCE_WIDTH, 48] };
    let race_effort = if quick { Effort::Quick } else { Effort::Standard };
    let (chain_fleet, area_fleet) = race_fleets(quick);
    let profiles = [
        run_race_profile("chain-dominated", &chain_fleet, race_widths, race_effort),
        run_race_profile("area-dominated", &area_fleet, race_widths, race_effort),
    ];
    let mut non_skyline_wins = 0u64;
    let (mut race_sky_cycles, mut race_pf_cycles) = (0u128, 0u128);
    for p in &profiles {
        non_skyline_wins += p.wins_maxrects + p.wins_guillotine;
        race_sky_cycles += p.skyline_cycles;
        race_pf_cycles += p.portfolio_cycles;
        println!(
            "portfolio {:<15} {} SOCs  {} cells  {} races  wins sky/maxrects/guillotine={}/{}/{}  \
             race prunes={}  improved cells={}  test-time speedup={:.4}x  \
             skyline-only={:.2} ms  portfolio={:.2} ms",
            p.name,
            p.socs,
            p.cells,
            p.races,
            p.wins_skyline,
            p.wins_maxrects,
            p.wins_guillotine,
            p.race_prunes,
            p.improved_cells,
            p.test_time_speedup(),
            p.skyline_ms,
            p.portfolio_ms,
        );
    }
    let portfolio_speedup = race_sky_cycles as f64 / race_pf_cycles as f64;
    println!(
        "portfolio acceptance: {} non-skyline wins (target >= {MIN_NON_SKYLINE_WINS}), \
         test-time speedup {portfolio_speedup:.4}x vs skyline-only, never worse per cell",
        non_skyline_wins,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"p93791m\",\n");
    json.push_str("  \"sharing_config\": \"{A,B,E},{C,D}\",\n");
    json.push_str("  \"effort\": \"Thorough\",\n");
    json.push_str(&format!("  \"repetitions\": {reps},\n"));
    json.push_str(&format!("  \"host_threads\": {},\n", msoc_par::max_threads()));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tam_width\": {}, \"makespan\": {}, \"skyline_ms\": {:.3}, \"naive_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            c.tam_width,
            c.makespan,
            c.skyline_ms,
            c.naive_ms,
            c.naive_ms / c.skyline_ms,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": [\n");
    for (i, c) in sweeps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tam_width\": {}, \"candidates\": {}, \"winner_makespan\": {}, \"session_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {:.3}, \"service_warm_ms\": {:.3}, \"warm_speedup\": {:.3}, \"skeleton_hits\": {}, \"skeleton_misses\": {}, \"pruned_passes\": {}, \"prefix_hits\": {}, \"prefix_jobs_restored\": {}, \"max_prefix_depth\": {}}}{}\n",
            c.tam_width,
            c.candidates,
            c.winner_makespan,
            c.session_ms,
            c.scratch_ms,
            c.scratch_ms / c.session_ms,
            c.service_warm_ms,
            c.session_ms / c.service_warm_ms,
            c.skeleton_hits,
            c.skeleton_misses,
            c.pruned_passes,
            c.prefix_hits,
            c.prefix_jobs_restored,
            c.max_prefix_depth,
            if i + 1 == sweeps.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"table\": {{\"configs\": {}, \"widths\": {}, \"cells\": {}, \"packed\": {}, \"width_bound_prunes\": {}, \"cost_bound_prunes\": {}, \"cross_width_prunes\": {}, \"waves\": {}, \"per_width_ms\": {:.3}, \"table_ms\": {:.3}, \"speedup\": {:.3}, \"table_ms_1t\": {:.3}, \"cells_per_sec_1t\": {:.1}, \"cells_per_sec\": {:.1}, \"host_threads\": {}, \"winner_config\": \"{}\", \"winner_width\": {}, \"winner_makespan\": {}}},\n",
        ts.cells / WIDTHS.len(),
        WIDTHS.len(),
        ts.cells,
        ts.packed,
        ts.width_bound_prunes,
        ts.cost_bound_prunes,
        ts.cross_width_prunes,
        ts.waves,
        table.per_width_ms,
        table.table_ms,
        table_speedup,
        table.table_ms_1t,
        cells_per_sec_1t,
        cells_per_sec,
        msoc_par::max_threads(),
        table.report.best.config,
        table.report.winner_width,
        table.report.winner_makespan,
    ));
    json.push_str(&format!(
        "  \"service\": {{\"effort\": \"Standard\", \"socs\": {}, \"requests\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"warm_speedup\": {:.3}, \"session_hits\": {}, \"schedule_hits\": {}, \"schedule_misses\": {}, \"prefix_jobs_restored\": {}, \"max_prefix_depth\": {}}},\n",
        fleet.socs,
        fleet.requests,
        fleet.cold_ms,
        fleet.warm_ms,
        fleet_speedup,
        fleet.session_hits,
        fleet.schedule_hits,
        fleet.schedule_misses,
        fleet.prefix_jobs_restored,
        fleet.max_prefix_depth,
    ));
    json.push_str(&format!(
        "  \"service_api\": {{\"jobs\": {}, \"revised_cores\": 2, \"cold_ms\": {:.3}, \"warm_revision_ms\": {:.3}, \"warm_revision_speedup\": {revision_speedup:.3}, \"revision_cache_hits\": {}, \"snapshot_bytes\": {}, \"snapshot_schedules\": {}, \"snapshot_replay_misses\": 0}},\n",
        fleet.requests,
        fleet.cold_ms,
        fleet.warm_revision_ms,
        fleet.revision_cache_hits,
        fleet.snapshot_bytes,
        fleet.snapshot_schedules,
    ));
    json.push_str(&format!(
        "  \"snapshot\": {{\"sessions\": {}, \"schedules\": {}, \"trie_nodes\": {}, \"checkpoints\": {}, \"total_bytes\": {}, \"bytes_per_schedule\": {:.1}, \"v1_bytes\": {}, \"compression_ratio\": {:.3}, \"encode_mbps\": {:.1}, \"decode_mbps\": {:.1}, \"import_ms\": {:.3}, \"warm_ram_replay_ms\": {:.3}, \"warm_disk_replay_ms\": {:.3}, \"disk_over_ram\": {:.3}, \"cold_rebuild_ms\": {:.3}, \"rebuild_packs\": {}, \"prefix_hits\": {}, \"import_restored\": {}, \"import_dropped\": {}}},\n",
        snap.sessions,
        snap.schedules,
        snap.trie_nodes,
        snap.checkpoints,
        snap.total_bytes,
        snap.bytes_per_schedule,
        snap.v1_bytes,
        snap.compression_ratio,
        snap.encode_mbps,
        snap.decode_mbps,
        snap.import_ms,
        snap.warm_ram_replay_ms,
        snap.warm_disk_replay_ms,
        snap.disk_over_ram,
        snap.cold_rebuild_ms,
        snap.rebuild_packs,
        snap.prefix_hits,
        snap.import_restored,
        snap.import_dropped,
    ));
    json.push_str(&format!(
        "  \"load\": {{\"effort\": \"Quick\", \"socs\": {}, \"jobs\": {}, \"submitters\": {}, \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.1}, \"jobs_per_sec_1t\": {:.1}, \"scaling\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"interrupted\": {}, \"revision_cache_hits\": {}, \"session_lookups\": {}, \"schedule_lookups\": {}, \"schedule_hits\": {}, \"schedule_misses\": {}, \"shard_contentions\": {}, \"shard_max_contentions\": {}, \"shard_lookups_min\": {}, \"shard_lookups_max\": {}, \"pool_dispatches\": {}, \"pool_steals\": {}, \"pool_parks\": {}, \"pool_unparks\": {}, \"pool_workers\": {}, \"serial_replay_identical\": true}},\n",
        load.socs,
        load.jobs,
        load.submitters,
        load.wall_ms,
        load.jobs_per_sec,
        load.jobs_per_sec_1t,
        load.jobs_per_sec / load.jobs_per_sec_1t,
        load.p50_us,
        load.p99_us,
        load.max_us,
        load.interrupted,
        load.revision_cache_hits,
        load.session_lookups,
        load.schedule_lookups,
        load.schedule_hits,
        load.schedule_misses,
        load.lock_contentions,
        load.shard_max_contentions,
        load.shard_min_lookups,
        load.shard_max_lookups,
        load.pool_dispatches,
        load.pool_steals,
        load.pool_parks,
        load.pool_unparks,
        load.pool_workers,
    ));
    json.push_str(&format!(
        "  \"resilience\": {{\"fault_percent\": {}, \"rounds\": {}, \"exports_persisted\": {}, \"exports_failed\": {}, \"put_retries\": {}, \"backoff_ms\": {:.3}, \"injected_faults\": {}, \"unchanged_skips\": {}, \"pruned_generations\": {}, \"export_ms\": {:.3}, \"recover_ms\": {:.3}, \"scanned\": {}, \"quarantined\": {}, \"quarantine_coherent\": {}, \"recovered_generation\": {}, \"replay_hits\": {}, \"replay_misses\": {}, \"replay_identical\": {}, \"panic_failed_jobs\": {}, \"shed_jobs\": {}}},\n",
        res.fault_percent,
        res.rounds,
        res.exports_persisted,
        res.exports_failed,
        res.put_retries,
        res.backoff_ms,
        res.injected_faults,
        res.unchanged_skips,
        res.pruned_generations,
        res.export_ms,
        res.recover_ms,
        res.scanned,
        res.quarantined,
        res.quarantine_coherent,
        res.recovered_generation,
        res.replay_hits,
        res.replay_misses,
        res.replay_identical,
        res.panic_failed_jobs,
        res.shed_jobs,
    ));
    json.push_str(&format!(
        "  \"server\": {{\"clients\": {}, \"jobs\": {}, \"jobs_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"replay_identical\": {}, \"queue_shed\": {}, \"generations_persisted\": {}, \"shard_exports_reused\": {}, \"recovered_generation\": {}, \"recover_ms\": {:.3}, \"warm_replay_hits\": {}, \"warm_replay_misses\": {}}},\n",
        srv.clients,
        srv.jobs,
        srv.jobs_per_sec,
        srv.p50_us,
        srv.p99_us,
        srv.replay_identical,
        srv.queue_shed,
        srv.generations_persisted,
        srv.shard_exports_reused,
        srv.recovered_generation,
        srv.recover_ms,
        srv.warm_replay_hits,
        srv.warm_replay_misses,
    ));
    json.push_str(&format!(
        "  \"portfolio\": {{\"effort\": \"{:?}\", \"widths\": {race_widths:?}, \"engine_wins\": [\n",
        race_effort,
    ));
    for (i, p) in profiles.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"profile\": \"{}\", \"socs\": {}, \"cells\": {}, \"races\": {}, \"wins_skyline\": {}, \"wins_maxrects\": {}, \"wins_guillotine\": {}, \"race_prunes\": {}, \"checks_to_best\": {}, \"improved_cells\": {}, \"skyline_cycles\": {}, \"portfolio_cycles\": {}, \"test_time_speedup\": {:.4}, \"skyline_ms\": {:.3}, \"portfolio_ms\": {:.3}}}{}\n",
            p.name,
            p.socs,
            p.cells,
            p.races,
            p.wins_skyline,
            p.wins_maxrects,
            p.wins_guillotine,
            p.race_prunes,
            p.checks_to_best,
            p.improved_cells,
            p.skyline_cycles,
            p.portfolio_cycles,
            p.test_time_speedup(),
            p.skyline_ms,
            p.portfolio_ms,
            if i + 1 == profiles.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  ], \"non_skyline_wins\": {non_skyline_wins}, \"portfolio_speedup\": {portfolio_speedup:.4}, \"portfolio_never_worse\": true}},\n",
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{\"tam_width\": {ACCEPTANCE_WIDTH}, \"speedup\": {speedup:.3}, \"sweep_speedup\": {sweep_speedup:.3}, \"warm_sweep_speedup\": {warm_sweep_speedup:.3}, \"fleet_warm_speedup\": {fleet_speedup:.3}, \"table_speedup\": {table_speedup:.3}, \"table_cross_width_prunes\": {}, \"warm_revision_speedup\": {revision_speedup:.3}, \"non_skyline_wins\": {non_skyline_wins}, \"portfolio_speedup\": {portfolio_speedup:.4}, \"load_jobs_per_sec\": {:.1}, \"load_p99_us\": {}, \"load_pool_steals\": {}, \"load_serial_replay_identical\": true, \"snapshot_compression_ratio\": {:.3}, \"snapshot_disk_over_ram\": {:.3}, \"snapshot_rebuild_packs\": {}, \"snapshot_prefix_hits\": {}, \"identical_makespans\": true}}\n",
        ts.cross_width_prunes,
        load.jobs_per_sec,
        load.p99_us,
        load.pool_steals,
        snap.compression_ratio,
        snap.disk_over_ram,
        snap.rebuild_packs,
        snap.prefix_hits,
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_schedule.json");
    println!("wrote {out_path}");

    assert!(
        quick || speedup >= 3.0,
        "skyline path regressed below the 3x acceptance bar: {speedup:.2}x"
    );
    assert!(
        sweep_speedup >= 1.0,
        "the pack session made the sweep slower than from-scratch: {sweep_speedup:.2}x"
    );
    assert!(
        warm_sweep_speedup >= MIN_WARM_SWEEP_SPEEDUP,
        "warm service must beat the per-instance sweep by >= {MIN_WARM_SWEEP_SPEEDUP}x: \
         {warm_sweep_speedup:.2}x"
    );
    assert!(
        fleet_speedup >= MIN_FLEET_WARM_SPEEDUP,
        "warm fleet batch must beat cold by >= {MIN_FLEET_WARM_SPEEDUP}x: {fleet_speedup:.2}x"
    );
    assert!(
        table_speedup >= MIN_TABLE_SPEEDUP,
        "the table engine must beat the per-width loop by >= {MIN_TABLE_SPEEDUP}x: \
         {table_speedup:.2}x"
    );
    assert!(
        revision_speedup >= MIN_REVISION_SPEEDUP,
        "a 2-core revision re-plan must beat the cold fleet by >= {MIN_REVISION_SPEEDUP}x: \
         {revision_speedup:.2}x"
    );
    assert!(
        fleet.revision_cache_hits > 0,
        "the revised fleet re-plan recorded no revision cache hits"
    );
    assert!(
        non_skyline_wins >= MIN_NON_SKYLINE_WINS,
        "MaxRects and guillotine won no races on either synthetic fleet \
         (want >= {MIN_NON_SKYLINE_WINS}): the portfolio degenerated to the skyline"
    );
    assert!(
        portfolio_speedup >= 1.0,
        "the portfolio's test-time speedup fell below 1.0x vs skyline-only: \
         {portfolio_speedup:.4}x (the never-worse guarantee is broken)"
    );
    assert!(load.jobs_per_sec > 0.0, "the load harness recorded no throughput");
    assert!(load.p99_us > 0, "the load harness recorded no latency");
    assert!(
        load.pool_dispatches > 0 && load.pool_steals > 0,
        "the persistent pool never engaged under load: dispatches={} steals={}",
        load.pool_dispatches,
        load.pool_steals,
    );
    assert!(
        snap.compression_ratio > 1.5,
        "the v2 snapshot codec must beat the v1 layout by > 1.5x on shared content: \
         {:.3}x",
        snap.compression_ratio,
    );
    assert_eq!(
        snap.rebuild_packs, 0,
        "a warm-from-disk service re-packed a skeleton the snapshot carried"
    );
    assert!(
        snap.prefix_hits > 0,
        "the starved-cache sweep restored no checkpoint prefixes from disk"
    );
    assert!(
        quick || snap.disk_over_ram <= 1.3,
        "warm-from-disk replay must stay within 1.3x of warm-from-RAM: {:.3}x",
        snap.disk_over_ram,
    );
    assert_eq!(
        res.exports_failed, 0,
        "the daemon gave up on a generation inside its backoff budget"
    );
    assert!(
        res.put_retries > 0,
        "a {}% fault rate forced no retries — the injector is dead",
        res.fault_percent,
    );
    assert!(res.injected_faults > 0, "the faulty store injected nothing");
    assert!(
        res.quarantined >= 1 && res.quarantine_coherent,
        "boot-time quarantine accounting is incoherent: quarantined={} coherent={}",
        res.quarantined,
        res.quarantine_coherent,
    );
    assert_eq!(
        res.replay_misses, 0,
        "the recovered service re-packed schedules its snapshot carried"
    );
    assert!(res.replay_identical, "the recovered replay diverged from the exporter");
    assert!(res.panic_failed_jobs == 1 && res.shed_jobs == 1, "per-job degradation miscounted");
    assert!(
        srv.replay_identical,
        "concurrent TCP outcomes diverged from the serial in-process replay"
    );
    assert!(srv.jobs_per_sec > 0.0, "the TCP load harness recorded no throughput");
    assert!(srv.p99_us > 0, "the TCP load harness recorded no latency");
    assert!(srv.generations_persisted >= 1, "no generation persisted before the mid-load kill");
    assert!(srv.recovered_generation >= 1, "recovery booted no generation after the kill");
    assert_eq!(
        srv.warm_replay_misses, 0,
        "the kill-recovered shard re-packed schedules its snapshot carried"
    );
    assert!(srv.warm_replay_hits > 0, "the kill-recovered replay hit nothing");
    assert_eq!(srv.queue_shed, 3, "queue depth 1 against a 4-job batch must shed exactly 3 jobs");
}
