//! Ablation: flexible-width TAM scheduling versus fixed-width buses.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin ablation_buses
//! ```
//!
//! Section 4 of the paper justifies adopting the flexible-width rectangle
//! packing of \[6\] over fixed TAM partitions: analog cores have small,
//! rigid width requirements, so parking them on a fixed bus wastes wires.
//! This binary measures that claim on `p93791m`: for each TAM width, the
//! flexible schedule is compared against the best equal-split fixed-bus
//! schedule with up to 6 buses.

use msoc_core::{MixedSignalSoc, Planner, SharingConfig};
use msoc_tam::{best_fixed_bus_schedule, schedule_with_effort, Effort};

fn main() {
    let soc = MixedSignalSoc::p93791m();
    let mut planner = Planner::new(&soc);
    // A representative sharing configuration (the Table 4 winner).
    let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);

    let mut rows = Vec::new();
    for w in [32u32, 48, 64] {
        let problem = planner.build_problem(&config, w);
        let flexible = schedule_with_effort(&problem, Effort::Standard).expect("flexible schedule");
        let (partition, fixed) = best_fixed_bus_schedule(&problem, 6).expect("fixed-bus schedule");
        fixed.validate(&problem).expect("valid fixed schedule");
        rows.push(vec![
            w.to_string(),
            flexible.makespan().to_string(),
            fixed.makespan().to_string(),
            format!("{:?}", partition.widths()),
            format!("{:.2}x", fixed.makespan() as f64 / flexible.makespan() as f64),
            format!("{:.1}%", flexible.utilization() * 100.0),
            format!("{:.1}%", fixed.utilization() * 100.0),
        ]);
    }
    println!("Ablation: flexible-width TAM vs fixed-width buses (p93791m, {config})\n");
    print!(
        "{}",
        msoc_bench::render_table(
            &["W", "flexible", "fixed", "buses", "penalty", "util flex", "util fixed"],
            &rows
        )
    );
    println!("\nThe fixed-bus penalty is the paper's motivation for the");
    println!("flexible-width TAM architecture of reference [6].");
}
