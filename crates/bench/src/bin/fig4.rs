//! Regenerates the hardware-cost argument of the paper's **Figure 4**:
//! the modular pipelined ADC and modular DAC architectures versus their
//! monolithic flash / voltage-steering counterparts.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin fig4
//! ```
//!
//! The paper: "an 8-bit flash architecture typically requires 256
//! comparators. In contrast, the modular approach needs only 32" (255 vs
//! 30 counting exactly), and the modular DAC "reduces the number of
//! resistors used by a factor of 8".

use msoc_analog::converter::{FlashAdc, ModularDac, PipelinedAdc, VoltageSteeringDac};

fn main() {
    let mut rows = Vec::new();
    for bits in [4u8, 6, 8, 10, 12] {
        let flash = FlashAdc::new(bits, 0.0, 4.0).hardware_cost();
        let pipe = PipelinedAdc::new(bits, 0.0, 4.0).hardware_cost();
        let mono = VoltageSteeringDac::new(bits, 0.0, 4.0).hardware_cost();
        let modular = ModularDac::new(bits, 0.0, 4.0).hardware_cost();
        rows.push(vec![
            bits.to_string(),
            flash.comparators.to_string(),
            pipe.comparators.to_string(),
            format!("{:.1}x", f64::from(flash.comparators) / f64::from(pipe.comparators)),
            mono.resistors.to_string(),
            modular.resistors.to_string(),
            format!("{:.0}x", f64::from(mono.resistors) / f64::from(modular.resistors)),
        ]);
    }
    println!("Figure 4: hardware cost of the modular converter architectures\n");
    print!(
        "{}",
        msoc_bench::render_table(
            &[
                "bits",
                "flash cmp",
                "pipelined cmp",
                "saving",
                "mono DAC R",
                "modular DAC R",
                "saving",
            ],
            &rows
        )
    );
    println!("\npaper (8-bit): ~256 vs ~32 comparators; 8x fewer DAC resistors.");

    // Functional equivalence spot-check, printed so the figure's claim
    // ("modularity costs no accuracy for low-speed use") is visible.
    let flash = FlashAdc::new(8, 0.0, 4.0);
    let pipe = PipelinedAdc::new(8, 0.0, 4.0);
    let mismatches = (0..=10_000)
        .filter(|&i| {
            let v = 4.0 * f64::from(i) / 10_000.0;
            flash.convert(v) != pipe.convert(v)
        })
        .count();
    println!(
        "code-level mismatches between 8-bit flash and pipeline over 10001 points: {mismatches}"
    );
}
