//! Regenerates **Figure 5** of the paper: frequency spectra of the
//! cutoff-frequency test applied to analog core A directly and through the
//! 8-bit analog test wrapper, plus the extracted cutoff frequencies.
//!
//! ```text
//! cargo run --release -p msoc-bench --bin fig5 [-- --ideal] [--csv <path>]
//! ```
//!
//! The paper's setup (Section 5): a three-tone stimulus, 50 MHz system
//! clock, 1.7 MHz sampling, 4551 samples, 4 V supply, 8-bit converters in a
//! 0.5 µm process. HSPICE transistor-level simulation is replaced here by
//! the behavioral wrapper datapath; the paper measures f_c = 61 kHz
//! directly vs 58 kHz through the wrapper (≈5% error).
//!
//! By default the converters carry 0.5 µm-class nonidealities — comparator
//! offsets in the pipelined ADC's coarse stage (σ = 6 full-scale LSB,
//! i.e. ~0.4 coarse-stage LSB) and 4% element mismatch in the stimulus
//! DAC — which is what produces the paper-scale extraction error. Pass
//! `--ideal` to see that ideal 8-bit quantization alone costs almost
//! nothing (≈0.1%), isolating where the wrapper error actually comes from.

use std::path::PathBuf;

use msoc_analog::circuit::Biquad;
use msoc_analog::dsp::{amplitude_spectrum, magnitude_db, Window};
use msoc_analog::measure::{extract_cutoff, tone_gain};
use msoc_analog::signal::MultiTone;
use msoc_awrapper::WrapperDatapath;

const SYSTEM_CLOCK_HZ: f64 = 50e6;
const SAMPLE_RATE_HZ: f64 = 1.7e6;
const N_SAMPLES: usize = 4551;
const SUPPLY_V: f64 = 4.0;
const CORE_FC_HZ: f64 = 61e3;
const TONES_HZ: [f64; 3] = [20e3, 50e3, 80e3];

fn main() {
    let ideal = msoc_bench::has_flag("--ideal");
    let mut datapath =
        WrapperDatapath::new(8, -SUPPLY_V / 2.0, SUPPLY_V / 2.0, SYSTEM_CLOCK_HZ, SAMPLE_RATE_HZ)
            .expect("valid Fig. 5 datapath");
    if !ideal {
        datapath = datapath.with_adc_offsets(6.0, 3).with_dac_mismatch(0.04, 93);
    }
    let fs = datapath.sample_rate_hz();

    // Three tones at 0.5 V each keep the multitone inside the converter
    // range with headroom, as the paper's stimulus does.
    let stimulus = MultiTone::equal_amplitude(&TONES_HZ, 0.5).generate(fs, N_SAMPLES);

    // Block form: the core filters the whole held system-clock waveform
    // in place, which engages the 4-wide chunked
    // `Biquad::process_in_place` path (the per-sample closure form pins
    // it to scalar stepping).
    let mut direct_core = Biquad::butterworth_lowpass(CORE_FC_HZ, SYSTEM_CLOCK_HZ);
    let direct = datapath.apply_direct_block(&stimulus, |held| direct_core.process_in_place(held));

    let mut wrapped_core = Biquad::butterworth_lowpass(CORE_FC_HZ, SYSTEM_CLOCK_HZ);
    let wrapped = datapath.apply_block(&stimulus, |held| wrapped_core.process_in_place(held));

    // Panel spectra (the three plots of Fig. 5).
    let spec_in = amplitude_spectrum(&stimulus, fs, Window::Hann);
    let spec_direct = amplitude_spectrum(&direct, fs, Window::Hann);
    let spec_wrapped = amplitude_spectrum(&wrapped.voltages, fs, Window::Hann);

    println!("Figure 5: cutoff-frequency test of core A (f_c designed at {CORE_FC_HZ} Hz)");
    println!(
        "converters: {}",
        if ideal { "ideal 8-bit" } else { "8-bit with 0.5um-class offsets and DAC mismatch" }
    );
    println!("stimulus tones at {TONES_HZ:?} Hz, fs = {fs:.0} Hz, {N_SAMPLES} samples\n");
    let mut rows = Vec::new();
    for &tone in &TONES_HZ {
        rows.push(vec![
            format!("{:.0}", tone / 1e3),
            format!("{:.1}", magnitude_db(spec_in.amplitude_near(tone))),
            format!("{:.1}", magnitude_db(spec_direct.amplitude_near(tone))),
            format!("{:.1}", magnitude_db(spec_wrapped.amplitude_near(tone))),
        ]);
    }
    print!(
        "{}",
        msoc_bench::render_table(
            &["tone kHz", "input dB", "direct out dB", "wrapped out dB"],
            &rows
        )
    );

    // Cutoff extraction from the tone gains (the paper's post-processing).
    let gains = |out: &[f64]| -> Vec<(f64, f64)> {
        TONES_HZ.iter().map(|&f| (f, tone_gain(&stimulus, out, fs, f))).collect()
    };
    let fc_direct = extract_cutoff(&gains(&direct), 2).expect("attenuated tones");
    let fc_wrapped = extract_cutoff(&gains(&wrapped.voltages), 2).expect("attenuated tones");
    let err = 100.0 * (fc_wrapped - fc_direct).abs() / fc_direct;

    println!("\nextracted f_c, direct analog test : {:.1} kHz", fc_direct / 1e3);
    println!("extracted f_c, wrapped analog core: {:.1} kHz", fc_wrapped / 1e3);
    println!("wrapper-induced error             : {err:.1}%");
    println!("paper: 61 kHz direct vs 58 kHz wrapped (~5% error)");

    // Optional CSV dump of the three spectra for plotting.
    if let Some(path) = csv_path() {
        let mut rows = Vec::new();
        for (k, (f, a_in)) in spec_in.iter().enumerate() {
            if f > 250e3 {
                break; // the paper plots 0..250 kHz
            }
            rows.push(vec![
                format!("{f:.1}"),
                format!("{:.2}", magnitude_db(a_in)),
                format!("{:.2}", magnitude_db(spec_direct.amplitudes()[k])),
                format!("{:.2}", magnitude_db(spec_wrapped.amplitudes()[k])),
            ]);
        }
        msoc_bench::write_csv(&path, &["freq_hz", "input_db", "direct_db", "wrapped_db"], &rows)
            .expect("write CSV");
        println!("spectra written to {}", path.display());
    }
}

fn csv_path() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).map(PathBuf::from)
}
