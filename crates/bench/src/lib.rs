//! Shared harness utilities for the table/figure binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! reproduced paper; this library provides the text-table and CSV plumbing
//! they share. See `DESIGN.md` at the workspace root for the experiment
//! index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

pub use msoc_core::LatencyHistogram;

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = msoc_bench::render_table(
///     &["combo", "C_A"],
///     &[vec!["{A,B}".into(), "90.0".into()]],
/// );
/// assert!(t.contains("{A,B}"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match the header");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = |cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    out
}

/// Writes rows as CSV (no quoting — callers pass clean numeric/label data).
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    std::fs::write(path, text)
}

/// True when `--flag` appears on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_pads_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("xxxx  "));
        assert!(lines[3].starts_with("y     "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("msoc_bench_test_csv");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.csv");
        write_csv(&path, &["f", "v"], &[vec!["1".into(), "2".into()]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "f,v\n1,2\n");
    }
}
