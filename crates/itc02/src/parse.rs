//! Parser for the ITC'02 textual benchmark format.
//!
//! See the [crate docs](crate) for the accepted grammar. The parser is a
//! streaming tokenizer over any [`BufRead`] source: logical lines are read
//! one at a time into a single reused buffer (memory stays proportional to
//! the longest line, not the file), `#` comments are stripped, trailing
//! `\` continuations are joined — the published benchmark files wrap their
//! long `Module` lines that way — and the whitespace-separated tokens of
//! each logical line drive a small directive state machine. Errors carry
//! the 1-based physical line number where the directive started.
//!
//! [`parse_soc`] adapts the reader-based parser to in-memory strings;
//! [`parse_soc_reader`] streams files of any size.

use std::error::Error;
use std::fmt;
use std::io::BufRead;
use std::str::FromStr;

use crate::model::{Module, ModuleTest, Soc};

/// Error produced when parsing an ITC'02 benchmark file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSocError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ErrorKind {
    /// An unknown directive at the start of a line.
    UnknownDirective(String),
    /// A keyword was present but its value was missing or malformed.
    BadValue { key: String, value: String },
    /// A required keyword was absent from a `Module`/`Test` line.
    MissingKey { line_kind: &'static str, key: &'static str },
    /// A `Test` line appeared before any `Module` line.
    TestBeforeModule,
    /// The file had no `SocName` directive.
    MissingSocName,
    /// `TotalModules` disagreed with the number of `Module` lines.
    ModuleCountMismatch { declared: usize, found: usize },
    /// Two modules share the same id.
    DuplicateModuleId(u32),
    /// The underlying reader failed (only reachable through
    /// [`parse_soc_reader`]; in-memory parsing cannot I/O-fail).
    Io(String),
}

impl ParseSocError {
    fn new(line: usize, kind: ErrorKind) -> Self {
        ParseSocError { line, kind }
    }

    /// 1-based line number on which the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ErrorKind::BadValue { key, value } => {
                write!(f, "invalid value `{value}` for `{key}`")
            }
            ErrorKind::MissingKey { line_kind, key } => {
                write!(f, "`{line_kind}` line is missing required key `{key}`")
            }
            ErrorKind::TestBeforeModule => write!(f, "`Test` line before any `Module` line"),
            ErrorKind::MissingSocName => write!(f, "missing `SocName` directive"),
            ErrorKind::ModuleCountMismatch { declared, found } => {
                write!(f, "`TotalModules` declared {declared} modules but {found} were found")
            }
            ErrorKind::DuplicateModuleId(id) => write!(f, "duplicate module id {id}"),
            ErrorKind::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl Error for ParseSocError {}

impl FromStr for Soc {
    type Err = ParseSocError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_soc(s)
    }
}

/// Streaming tokenizer over logical lines: one reused buffer, `#` comment
/// stripping, trailing-`\` continuation joining, and 1-based physical line
/// tracking (a joined line reports the number of its first physical line).
struct LineTokenizer<R> {
    reader: R,
    buf: String,
    /// Physical lines consumed so far.
    line: usize,
}

impl<R: BufRead> LineTokenizer<R> {
    fn new(reader: R) -> Self {
        LineTokenizer { reader, buf: String::new(), line: 0 }
    }

    /// Reads the next logical line into the internal buffer.
    ///
    /// Returns the starting line number, or `None` at end of input. Blank
    /// and comment-only lines are returned too (they tokenize to nothing);
    /// the caller's directive loop skips them.
    fn next_line(&mut self) -> Result<Option<usize>, ParseSocError> {
        self.buf.clear();
        let mut start_line = None;
        loop {
            let mark = self.buf.len();
            let read = self
                .reader
                .read_line(&mut self.buf)
                .map_err(|e| ParseSocError::new(self.line + 1, ErrorKind::Io(e.to_string())))?;
            if read == 0 {
                // EOF; a trailing continuation yields whatever was joined.
                return Ok(start_line);
            }
            self.line += 1;
            start_line.get_or_insert(self.line);
            while self.buf.ends_with('\n') || self.buf.ends_with('\r') {
                self.buf.pop();
            }
            if let Some(pos) = self.buf[mark..].find('#') {
                self.buf.truncate(mark + pos);
            }
            // Trailing whitespace must not hide a continuation marker — a
            // stripped comment after `\` leaves some behind, and real
            // corpus files carry invisible trailing blanks.
            self.buf.truncate(self.buf.trim_end().len());
            if self.buf.ends_with('\\') {
                self.buf.pop();
                self.buf.push(' ');
                continue;
            }
            return Ok(start_line);
        }
    }
}

/// Parses the ITC'02 textual format into a [`Soc`].
///
/// Convenience adapter over [`parse_soc_reader`] for in-memory input.
///
/// # Errors
///
/// Returns [`ParseSocError`] when a directive is unknown, a value is
/// malformed, a `Test` line precedes all `Module` lines, `SocName` is
/// missing, module ids repeat, or `TotalModules` disagrees with the number of
/// `Module` lines actually present.
pub fn parse_soc(input: &str) -> Result<Soc, ParseSocError> {
    parse_soc_reader(input.as_bytes())
}

/// Parses the ITC'02 textual format from any [`BufRead`] source.
///
/// This is the streaming entry point: the published `p93791.soc`-class
/// files (and far larger synthetic ones) parse with memory proportional to
/// the longest logical line. Trailing-`\` line continuations, used by the
/// published files to wrap long `Module` lines, are joined transparently.
///
/// # Errors
///
/// As [`parse_soc`], plus an I/O error kind when the reader fails.
pub fn parse_soc_reader<R: BufRead>(reader: R) -> Result<Soc, ParseSocError> {
    let mut lines = LineTokenizer::new(reader);
    let mut name: Option<String> = None;
    let mut declared_modules: Option<usize> = None;
    let mut modules: Vec<Module> = Vec::new();

    while let Some(lineno) = lines.next_line()? {
        let mut tokens = lines.buf.split_whitespace().peekable();
        let Some(directive) = tokens.next() else { continue };
        match directive {
            "SocName" => {
                let v = tokens.next().ok_or_else(|| {
                    ParseSocError::new(
                        lineno,
                        ErrorKind::BadValue { key: "SocName".into(), value: String::new() },
                    )
                })?;
                name = Some(v.to_owned());
            }
            "TotalModules" => {
                declared_modules = Some(parse_num(lineno, "TotalModules", tokens.next())?);
            }
            "Options" => { /* accepted and ignored, as in the published files */ }
            "Module" => {
                let module = parse_module_line(lineno, &mut tokens)?;
                if modules.iter().any(|m| m.id == module.id) {
                    return Err(ParseSocError::new(
                        lineno,
                        ErrorKind::DuplicateModuleId(module.id),
                    ));
                }
                modules.push(module);
            }
            "Test" => {
                let test = parse_test_line(lineno, &mut tokens)?;
                let module = modules
                    .last_mut()
                    .ok_or_else(|| ParseSocError::new(lineno, ErrorKind::TestBeforeModule))?;
                module.tests.push(test);
            }
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::UnknownDirective(other.to_owned()),
                ))
            }
        }
    }

    let name =
        name.ok_or_else(|| ParseSocError::new(lines.line.max(1), ErrorKind::MissingSocName))?;
    if let Some(declared) = declared_modules {
        if declared != modules.len() {
            return Err(ParseSocError::new(
                lines.line.max(1),
                ErrorKind::ModuleCountMismatch { declared, found: modules.len() },
            ));
        }
    }
    Ok(Soc { name, modules })
}

fn parse_num<T: FromStr>(
    lineno: usize,
    key: &str,
    token: Option<&str>,
) -> Result<T, ParseSocError> {
    let token = token.unwrap_or("");
    token.parse().map_err(|_| {
        ParseSocError::new(lineno, ErrorKind::BadValue { key: key.into(), value: token.into() })
    })
}

fn parse_module_line<'a, I>(
    lineno: usize,
    tokens: &mut std::iter::Peekable<I>,
) -> Result<Module, ParseSocError>
where
    I: Iterator<Item = &'a str>,
{
    let id = parse_num(lineno, "Module", tokens.next())?;
    let mut level = None;
    let mut inputs = None;
    let mut outputs = None;
    let mut bidirs = None;
    let mut scan_chains: Vec<u32> = Vec::new();
    let mut scan_count: Option<usize> = None;

    while let Some(key) = tokens.next() {
        match key {
            "Level" => level = Some(parse_num(lineno, key, tokens.next())?),
            "Inputs" => inputs = Some(parse_num(lineno, key, tokens.next())?),
            "Outputs" => outputs = Some(parse_num(lineno, key, tokens.next())?),
            "Bidirs" => bidirs = Some(parse_num(lineno, key, tokens.next())?),
            "ScanChains" => scan_count = Some(parse_num(lineno, key, tokens.next())?),
            "ScanChainLengths" => {
                let n = scan_count.ok_or(ParseSocError::new(
                    lineno,
                    ErrorKind::MissingKey { line_kind: "Module", key: "ScanChains" },
                ))?;
                for _ in 0..n {
                    scan_chains.push(parse_num(lineno, key, tokens.next())?);
                }
            }
            "TotalTests" => {
                // Value is implied by the following `Test` lines; consume it.
                let _: u32 = parse_num(lineno, key, tokens.next())?;
            }
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::BadValue { key: "Module".into(), value: other.into() },
                ))
            }
        }
    }

    if let Some(n) = scan_count {
        if scan_chains.is_empty() && n > 0 {
            return Err(ParseSocError::new(
                lineno,
                ErrorKind::MissingKey { line_kind: "Module", key: "ScanChainLengths" },
            ));
        }
    }

    Ok(Module {
        id,
        level: level.ok_or(ParseSocError::new(
            lineno,
            ErrorKind::MissingKey { line_kind: "Module", key: "Level" },
        ))?,
        inputs: inputs.unwrap_or(0),
        outputs: outputs.unwrap_or(0),
        bidirs: bidirs.unwrap_or(0),
        scan_chains,
        tests: Vec::new(),
    })
}

fn parse_test_line<'a, I>(
    lineno: usize,
    tokens: &mut std::iter::Peekable<I>,
) -> Result<ModuleTest, ParseSocError>
where
    I: Iterator<Item = &'a str>,
{
    // The leading token is the test's ordinal; it is informational only.
    let _: u32 = parse_num(lineno, "Test", tokens.next())?;
    let mut patterns = None;
    let mut scan_used = false;
    let mut tam_used = false;
    while let Some(key) = tokens.next() {
        match key {
            "Patterns" => patterns = Some(parse_num(lineno, key, tokens.next())?),
            "ScanUsed" => scan_used = parse_num::<u8>(lineno, key, tokens.next())? != 0,
            "TamUsed" => tam_used = parse_num::<u8>(lineno, key, tokens.next())? != 0,
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::BadValue { key: "Test".into(), value: other.into() },
                ))
            }
        }
    }
    Ok(ModuleTest {
        patterns: patterns.ok_or(ParseSocError::new(
            lineno,
            ErrorKind::MissingKey { line_kind: "Test", key: "Patterns" },
        ))?,
        scan_used,
        tam_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny SOC
SocName tiny
TotalModules 2
Module 1 Level 1 Inputs 3 Outputs 4 Bidirs 0 ScanChains 2 ScanChainLengths 10 12 TotalTests 1
Test 1 ScanUsed 1 TamUsed 1 Patterns 7
Module 2 Level 1 Inputs 1 Outputs 1 Bidirs 2 ScanChains 0 TotalTests 1
Test 1 ScanUsed 0 TamUsed 1 Patterns 3
";

    #[test]
    fn parses_sample() {
        let soc: Soc = SAMPLE.parse().unwrap();
        assert_eq!(soc.name, "tiny");
        assert_eq!(soc.modules.len(), 2);
        assert_eq!(soc.modules[0].scan_chains, vec![10, 12]);
        assert_eq!(soc.modules[0].tests[0].patterns, 7);
        assert!(!soc.modules[1].tests[0].scan_used);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("\n# leading comment\n\n{SAMPLE}\n# trailing\n");
        assert!(text.parse::<Soc>().is_ok());
    }

    #[test]
    fn error_on_unknown_directive() {
        let err = "SocName x\nBogus 1\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("Bogus"));
    }

    #[test]
    fn error_on_missing_soc_name() {
        let err = "TotalModules 0\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("SocName"));
    }

    #[test]
    fn error_on_module_count_mismatch() {
        let err = "SocName x\nTotalModules 3\nModule 1 Level 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("declared 3"));
    }

    #[test]
    fn error_on_test_before_module() {
        let err = "SocName x\nTest 1 Patterns 4\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn error_on_duplicate_module_id() {
        let err = "SocName x\nModule 1 Level 1\nModule 1 Level 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("duplicate module id 1"));
    }

    #[test]
    fn error_on_bad_number() {
        let err = "SocName x\nModule one Level 1\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("one"));
    }

    #[test]
    fn error_on_truncated_scan_lengths() {
        let err = "SocName x\nModule 1 Level 1 ScanChains 3 ScanChainLengths 5 6\n"
            .parse::<Soc>()
            .unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn missing_patterns_is_an_error() {
        let err = "SocName x\nModule 1 Level 1\nTest 1 TamUsed 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("Patterns"));
    }

    #[test]
    fn backslash_continuations_join_logical_lines() {
        let wrapped = "\
SocName tiny
Module 1 Level 1 Inputs 3 Outputs 4 \\
       ScanChains 2 \\
       ScanChainLengths 10 12
Test 1 ScanUsed 1 TamUsed 1 Patterns 7
";
        let soc: Soc = wrapped.parse().unwrap();
        assert_eq!(soc.modules[0].scan_chains, vec![10, 12]);
        // Errors after a wrapped line still report physical lines.
        let err = format!("{wrapped}Bogus 1\n").parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 6);
    }

    #[test]
    fn continuation_reports_the_starting_line() {
        let text = "SocName x\nModule one \\\n Level 1\n";
        let err = text.parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2, "joined line errors point at its first physical line");
    }

    #[test]
    fn comment_after_continuation_marker_is_stripped_per_physical_line() {
        let text = "SocName x\nModule 1 \\\n Level 1 # trailing comment\n";
        let soc: Soc = text.parse().unwrap();
        assert_eq!(soc.modules[0].level, 1);
    }

    #[test]
    fn continuation_marker_survives_trailing_whitespace_and_comments() {
        // Trailing blanks after `\`, and a comment whose stripping leaves
        // whitespace before the marker, must still join lines.
        for text in [
            "SocName x\nModule 1 \\ \n Level 1\n",
            "SocName x\nModule 1 \\\t\t\n Level 1\n",
            "SocName x\nModule 1 \\ # wrapped\n Level 1\n",
        ] {
            let soc: Soc = text.parse().unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(soc.modules[0].level, 1, "{text:?}");
        }
    }

    #[test]
    fn reader_parse_matches_str_parse() {
        use std::io::BufReader;
        let from_str: Soc = SAMPLE.parse().unwrap();
        // A tiny buffer forces many refills, exercising the streaming path.
        let reader = BufReader::with_capacity(7, SAMPLE.as_bytes());
        let from_reader = parse_soc_reader(reader).unwrap();
        assert_eq!(from_str, from_reader);
    }

    #[test]
    fn trailing_continuation_at_eof_is_tolerated() {
        let soc: Soc = "SocName x\nModule 1 Level 1 \\".parse::<Soc>().unwrap();
        assert_eq!(soc.modules.len(), 1);
    }

    #[test]
    fn reader_io_errors_surface_with_the_failing_line() {
        struct Flaky;
        impl std::io::Read for Flaky {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("wire fell out"))
            }
        }
        impl BufRead for Flaky {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::other("wire fell out"))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let err = parse_soc_reader(Flaky).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("wire fell out"));
    }
}
