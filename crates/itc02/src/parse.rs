//! Parser for the ITC'02 textual benchmark format.
//!
//! See the [crate docs](crate) for the accepted grammar. The parser is
//! line-oriented and reports errors with 1-based line numbers.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::model::{Module, ModuleTest, Soc};

/// Error produced when parsing an ITC'02 benchmark file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSocError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ErrorKind {
    /// An unknown directive at the start of a line.
    UnknownDirective(String),
    /// A keyword was present but its value was missing or malformed.
    BadValue { key: String, value: String },
    /// A required keyword was absent from a `Module`/`Test` line.
    MissingKey { line_kind: &'static str, key: &'static str },
    /// A `Test` line appeared before any `Module` line.
    TestBeforeModule,
    /// The file had no `SocName` directive.
    MissingSocName,
    /// `TotalModules` disagreed with the number of `Module` lines.
    ModuleCountMismatch { declared: usize, found: usize },
    /// Two modules share the same id.
    DuplicateModuleId(u32),
}

impl ParseSocError {
    fn new(line: usize, kind: ErrorKind) -> Self {
        ParseSocError { line, kind }
    }

    /// 1-based line number on which the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ErrorKind::BadValue { key, value } => {
                write!(f, "invalid value `{value}` for `{key}`")
            }
            ErrorKind::MissingKey { line_kind, key } => {
                write!(f, "`{line_kind}` line is missing required key `{key}`")
            }
            ErrorKind::TestBeforeModule => write!(f, "`Test` line before any `Module` line"),
            ErrorKind::MissingSocName => write!(f, "missing `SocName` directive"),
            ErrorKind::ModuleCountMismatch { declared, found } => {
                write!(f, "`TotalModules` declared {declared} modules but {found} were found")
            }
            ErrorKind::DuplicateModuleId(id) => write!(f, "duplicate module id {id}"),
        }
    }
}

impl Error for ParseSocError {}

impl FromStr for Soc {
    type Err = ParseSocError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_soc(s)
    }
}

/// Parses the ITC'02 textual format into a [`Soc`].
///
/// # Errors
///
/// Returns [`ParseSocError`] when a directive is unknown, a value is
/// malformed, a `Test` line precedes all `Module` lines, `SocName` is
/// missing, module ids repeat, or `TotalModules` disagrees with the number of
/// `Module` lines actually present.
pub fn parse_soc(input: &str) -> Result<Soc, ParseSocError> {
    let mut name: Option<String> = None;
    let mut declared_modules: Option<usize> = None;
    let mut modules: Vec<Module> = Vec::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let mut tokens = line.split_whitespace().peekable();
        let Some(directive) = tokens.next() else { continue };
        match directive {
            "SocName" => {
                let v = tokens.next().ok_or_else(|| {
                    ParseSocError::new(
                        lineno,
                        ErrorKind::BadValue { key: "SocName".into(), value: String::new() },
                    )
                })?;
                name = Some(v.to_owned());
            }
            "TotalModules" => {
                declared_modules = Some(parse_num(lineno, "TotalModules", tokens.next())?);
            }
            "Options" => { /* accepted and ignored, as in the published files */ }
            "Module" => {
                let module = parse_module_line(lineno, &mut tokens)?;
                if modules.iter().any(|m| m.id == module.id) {
                    return Err(ParseSocError::new(
                        lineno,
                        ErrorKind::DuplicateModuleId(module.id),
                    ));
                }
                modules.push(module);
            }
            "Test" => {
                let test = parse_test_line(lineno, &mut tokens)?;
                let module = modules
                    .last_mut()
                    .ok_or_else(|| ParseSocError::new(lineno, ErrorKind::TestBeforeModule))?;
                module.tests.push(test);
            }
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::UnknownDirective(other.to_owned()),
                ))
            }
        }
    }

    let name = name.ok_or_else(|| {
        ParseSocError::new(input.lines().count().max(1), ErrorKind::MissingSocName)
    })?;
    if let Some(declared) = declared_modules {
        if declared != modules.len() {
            return Err(ParseSocError::new(
                input.lines().count().max(1),
                ErrorKind::ModuleCountMismatch { declared, found: modules.len() },
            ));
        }
    }
    Ok(Soc { name, modules })
}

fn parse_num<T: FromStr>(
    lineno: usize,
    key: &str,
    token: Option<&str>,
) -> Result<T, ParseSocError> {
    let token = token.unwrap_or("");
    token.parse().map_err(|_| {
        ParseSocError::new(lineno, ErrorKind::BadValue { key: key.into(), value: token.into() })
    })
}

fn parse_module_line<'a, I>(
    lineno: usize,
    tokens: &mut std::iter::Peekable<I>,
) -> Result<Module, ParseSocError>
where
    I: Iterator<Item = &'a str>,
{
    let id = parse_num(lineno, "Module", tokens.next())?;
    let mut level = None;
    let mut inputs = None;
    let mut outputs = None;
    let mut bidirs = None;
    let mut scan_chains: Vec<u32> = Vec::new();
    let mut scan_count: Option<usize> = None;

    while let Some(key) = tokens.next() {
        match key {
            "Level" => level = Some(parse_num(lineno, key, tokens.next())?),
            "Inputs" => inputs = Some(parse_num(lineno, key, tokens.next())?),
            "Outputs" => outputs = Some(parse_num(lineno, key, tokens.next())?),
            "Bidirs" => bidirs = Some(parse_num(lineno, key, tokens.next())?),
            "ScanChains" => scan_count = Some(parse_num(lineno, key, tokens.next())?),
            "ScanChainLengths" => {
                let n = scan_count.ok_or(ParseSocError::new(
                    lineno,
                    ErrorKind::MissingKey { line_kind: "Module", key: "ScanChains" },
                ))?;
                for _ in 0..n {
                    scan_chains.push(parse_num(lineno, key, tokens.next())?);
                }
            }
            "TotalTests" => {
                // Value is implied by the following `Test` lines; consume it.
                let _: u32 = parse_num(lineno, key, tokens.next())?;
            }
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::BadValue { key: "Module".into(), value: other.into() },
                ))
            }
        }
    }

    if let Some(n) = scan_count {
        if scan_chains.is_empty() && n > 0 {
            return Err(ParseSocError::new(
                lineno,
                ErrorKind::MissingKey { line_kind: "Module", key: "ScanChainLengths" },
            ));
        }
    }

    Ok(Module {
        id,
        level: level.ok_or(ParseSocError::new(
            lineno,
            ErrorKind::MissingKey { line_kind: "Module", key: "Level" },
        ))?,
        inputs: inputs.unwrap_or(0),
        outputs: outputs.unwrap_or(0),
        bidirs: bidirs.unwrap_or(0),
        scan_chains,
        tests: Vec::new(),
    })
}

fn parse_test_line<'a, I>(
    lineno: usize,
    tokens: &mut std::iter::Peekable<I>,
) -> Result<ModuleTest, ParseSocError>
where
    I: Iterator<Item = &'a str>,
{
    // The leading token is the test's ordinal; it is informational only.
    let _: u32 = parse_num(lineno, "Test", tokens.next())?;
    let mut patterns = None;
    let mut scan_used = false;
    let mut tam_used = false;
    while let Some(key) = tokens.next() {
        match key {
            "Patterns" => patterns = Some(parse_num(lineno, key, tokens.next())?),
            "ScanUsed" => scan_used = parse_num::<u8>(lineno, key, tokens.next())? != 0,
            "TamUsed" => tam_used = parse_num::<u8>(lineno, key, tokens.next())? != 0,
            other => {
                return Err(ParseSocError::new(
                    lineno,
                    ErrorKind::BadValue { key: "Test".into(), value: other.into() },
                ))
            }
        }
    }
    Ok(ModuleTest {
        patterns: patterns.ok_or(ParseSocError::new(
            lineno,
            ErrorKind::MissingKey { line_kind: "Test", key: "Patterns" },
        ))?,
        scan_used,
        tam_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny SOC
SocName tiny
TotalModules 2
Module 1 Level 1 Inputs 3 Outputs 4 Bidirs 0 ScanChains 2 ScanChainLengths 10 12 TotalTests 1
Test 1 ScanUsed 1 TamUsed 1 Patterns 7
Module 2 Level 1 Inputs 1 Outputs 1 Bidirs 2 ScanChains 0 TotalTests 1
Test 1 ScanUsed 0 TamUsed 1 Patterns 3
";

    #[test]
    fn parses_sample() {
        let soc: Soc = SAMPLE.parse().unwrap();
        assert_eq!(soc.name, "tiny");
        assert_eq!(soc.modules.len(), 2);
        assert_eq!(soc.modules[0].scan_chains, vec![10, 12]);
        assert_eq!(soc.modules[0].tests[0].patterns, 7);
        assert!(!soc.modules[1].tests[0].scan_used);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("\n# leading comment\n\n{SAMPLE}\n# trailing\n");
        assert!(text.parse::<Soc>().is_ok());
    }

    #[test]
    fn error_on_unknown_directive() {
        let err = "SocName x\nBogus 1\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("Bogus"));
    }

    #[test]
    fn error_on_missing_soc_name() {
        let err = "TotalModules 0\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("SocName"));
    }

    #[test]
    fn error_on_module_count_mismatch() {
        let err = "SocName x\nTotalModules 3\nModule 1 Level 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("declared 3"));
    }

    #[test]
    fn error_on_test_before_module() {
        let err = "SocName x\nTest 1 Patterns 4\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn error_on_duplicate_module_id() {
        let err = "SocName x\nModule 1 Level 1\nModule 1 Level 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("duplicate module id 1"));
    }

    #[test]
    fn error_on_bad_number() {
        let err = "SocName x\nModule one Level 1\n".parse::<Soc>().unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("one"));
    }

    #[test]
    fn error_on_truncated_scan_lengths() {
        let err = "SocName x\nModule 1 Level 1 ScanChains 3 ScanChainLengths 5 6\n"
            .parse::<Soc>()
            .unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn missing_patterns_is_an_error() {
        let err = "SocName x\nModule 1 Level 1\nTest 1 TamUsed 1\n".parse::<Soc>().unwrap_err();
        assert!(err.to_string().contains("Patterns"));
    }
}
