//! SOC test-resource statistics.
//!
//! Summaries of an ITC'02 SOC's test structure: scan volume, pattern
//! counts, terminal counts and the distribution of test data over cores.
//! Used by reports and by the calibration checks that keep the synthetic
//! benchmarks honest.

use crate::model::{Module, Soc};

/// Per-module test statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleStats {
    /// Module id.
    pub id: u32,
    /// Number of internal scan chains.
    pub scan_chains: usize,
    /// Total scan flip-flops.
    pub scan_bits: u64,
    /// Longest internal scan chain.
    pub longest_chain: u32,
    /// Total TAM-delivered patterns.
    pub patterns: u64,
    /// Functional terminals (inputs + outputs + 2·bidirs).
    pub terminals: u64,
    /// Approximate test data volume (patterns × (scan + widest side)).
    pub volume: u64,
}

impl ModuleStats {
    /// Computes statistics for one module.
    pub fn of(module: &Module) -> Self {
        ModuleStats {
            id: module.id,
            scan_chains: module.scan_chains.len(),
            scan_bits: module.scan_bits(),
            longest_chain: module.scan_chains.iter().copied().max().unwrap_or(0),
            patterns: module.tam_patterns(),
            terminals: u64::from(module.inputs)
                + u64::from(module.outputs)
                + 2 * u64::from(module.bidirs),
            volume: module.test_data_volume(),
        }
    }
}

/// Whole-SOC statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocStats {
    /// Benchmark name.
    pub name: String,
    /// Per-core statistics, ordered by descending volume.
    pub modules: Vec<ModuleStats>,
    /// Total test data volume.
    pub total_volume: u64,
}

impl SocStats {
    /// Computes statistics for every TAM-using core of `soc`.
    pub fn of(soc: &Soc) -> Self {
        let mut modules: Vec<ModuleStats> = soc.cores().map(ModuleStats::of).collect();
        modules.sort_by_key(|m| std::cmp::Reverse(m.volume));
        let total_volume = modules.iter().map(|m| m.volume).sum();
        SocStats { name: soc.name.clone(), modules, total_volume }
    }

    /// Share of total volume held by the `k` largest cores, in `[0, 1]`.
    pub fn top_share(&self, k: usize) -> f64 {
        if self.total_volume == 0 {
            return 0.0;
        }
        let top: u64 = self.modules.iter().take(k).map(|m| m.volume).sum();
        top as f64 / self.total_volume as f64
    }

    /// The minimum TAM width at which every core can be wrapped — the
    /// width of the narrowest core's narrowest wrapper is always 1, so
    /// this is simply 1 for scan cores; kept for API symmetry with mixed
    /// SOCs where analog tests impose real minima.
    pub fn min_tam_width(&self) -> u32 {
        1
    }

    /// Renders an aligned summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} cores, total volume {}",
            self.name,
            self.modules.len(),
            self.total_volume
        );
        let _ = writeln!(
            out,
            "{:>4} {:>7} {:>9} {:>8} {:>9} {:>10} {:>7}",
            "id", "chains", "scanbits", "patterns", "terminals", "volume", "share%"
        );
        for m in &self.modules {
            let _ = writeln!(
                out,
                "{:>4} {:>7} {:>9} {:>8} {:>9} {:>10} {:>7.2}",
                m.id,
                m.scan_chains,
                m.scan_bits,
                m.patterns,
                m.terminals,
                m.volume,
                100.0 * m.volume as f64 / self.total_volume.max(1) as f64,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn module_stats_count_correctly() {
        let m = Module::new_scan_core(3, 10, 20, 2, vec![5, 9, 7], 11);
        let s = ModuleStats::of(&m);
        assert_eq!(s.id, 3);
        assert_eq!(s.scan_chains, 3);
        assert_eq!(s.scan_bits, 21);
        assert_eq!(s.longest_chain, 9);
        assert_eq!(s.patterns, 11);
        assert_eq!(s.terminals, 10 + 20 + 4);
        assert_eq!(s.volume, m.test_data_volume());
    }

    #[test]
    fn soc_stats_order_by_volume_and_sum() {
        let stats = SocStats::of(&synth::p93791s());
        assert_eq!(stats.modules.len(), 32);
        for pair in stats.modules.windows(2) {
            assert!(pair[0].volume >= pair[1].volume);
        }
        assert_eq!(stats.modules[0].id, 6, "the dominant core leads");
        let sum: u64 = stats.modules.iter().map(|m| m.volume).sum();
        assert_eq!(sum, stats.total_volume);
    }

    #[test]
    fn top_share_matches_calibration() {
        let stats = SocStats::of(&synth::p93791s());
        // One dominant core plus three mid cores hold ~90% of the data.
        assert!(stats.top_share(1) > 0.55);
        assert!(stats.top_share(4) > 0.85);
        assert!((stats.top_share(32) - 1.0).abs() < 1e-12);
        assert_eq!(stats.top_share(0), 0.0);
    }

    #[test]
    fn render_contains_every_core() {
        let stats = SocStats::of(&synth::d695s());
        let text = stats.render();
        for m in &stats.modules {
            assert!(text.contains(&format!("{:>4}", m.id)), "missing core {}", m.id);
        }
        assert!(text.contains("d695s"));
    }

    #[test]
    fn empty_soc_stats_are_safe() {
        let soc = Soc::new("empty", vec![]);
        let stats = SocStats::of(&soc);
        assert_eq!(stats.total_volume, 0);
        assert_eq!(stats.top_share(3), 0.0);
        assert_eq!(stats.min_tam_width(), 1);
    }
}
