//! Data model for ITC'02-style SOC test benchmarks.

/// A single test of a [`Module`].
///
/// ITC'02 modules may have several tests (e.g. an external scan test plus a
/// BIST session). Only tests with [`tam_used`](Self::tam_used) occupy TAM
/// wires during scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleTest {
    /// Number of test patterns applied by this test.
    pub patterns: u64,
    /// Whether the test shifts data through the module's scan chains.
    pub scan_used: bool,
    /// Whether the test occupies the test access mechanism.
    pub tam_used: bool,
}

impl ModuleTest {
    /// Creates an external scan test with `patterns` patterns.
    ///
    /// This is the common case in the benchmarks: scan-based, TAM-delivered.
    pub fn scan(patterns: u64) -> Self {
        ModuleTest { patterns, scan_used: true, tam_used: true }
    }

    /// Creates a BIST test: `patterns` applications that use neither scan
    /// access nor TAM wires.
    pub fn bist(patterns: u64) -> Self {
        ModuleTest { patterns, scan_used: false, tam_used: false }
    }
}

/// An embedded (digital) core of an SOC.
///
/// Terminal counts and scan-chain lengths drive the wrapper-design algorithm
/// in the `msoc-wrapper` crate, which in turn produces the test-time versus
/// TAM-width staircase used for scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Module {
    /// Module identifier (unique within its SOC; module 0 is conventionally
    /// the SOC-level "module" describing chip pins and is not a core).
    pub id: u32,
    /// Hierarchy level in the benchmark file (0 = SOC itself).
    pub level: u32,
    /// Number of functional input terminals.
    pub inputs: u32,
    /// Number of functional output terminals.
    pub outputs: u32,
    /// Number of bidirectional terminals.
    pub bidirs: u32,
    /// Lengths of the module's internal scan chains, in flip-flops.
    pub scan_chains: Vec<u32>,
    /// The module's tests.
    pub tests: Vec<ModuleTest>,
}

impl Module {
    /// Creates a core with the given terminals, scan chains and a single
    /// scan test of `patterns` patterns.
    ///
    /// # Examples
    ///
    /// ```
    /// use msoc_itc02::Module;
    /// let m = Module::new_scan_core(7, 10, 20, 2, vec![50, 40], 100);
    /// assert_eq!(m.scan_bits(), 90);
    /// assert_eq!(m.tests.len(), 1);
    /// ```
    pub fn new_scan_core(
        id: u32,
        inputs: u32,
        outputs: u32,
        bidirs: u32,
        scan_chains: Vec<u32>,
        patterns: u64,
    ) -> Self {
        Module {
            id,
            level: 1,
            inputs,
            outputs,
            bidirs,
            scan_chains,
            tests: vec![ModuleTest::scan(patterns)],
        }
    }

    /// Total number of scan flip-flops over all internal scan chains.
    pub fn scan_bits(&self) -> u64 {
        self.scan_chains.iter().map(|&l| u64::from(l)).sum()
    }

    /// Total patterns over all TAM-using tests.
    pub fn tam_patterns(&self) -> u64 {
        self.tests.iter().filter(|t| t.tam_used).map(|t| t.patterns).sum()
    }

    /// Whether any test of this module occupies the TAM.
    pub fn uses_tam(&self) -> bool {
        self.tests.iter().any(|t| t.tam_used)
    }

    /// A rough volume metric: patterns × (scan bits + widest terminal side).
    ///
    /// This approximates the total test data that must cross the TAM and is
    /// used for ordering heuristics; it is *not* a test time.
    pub fn test_data_volume(&self) -> u64 {
        let terminals = u64::from(self.inputs.max(self.outputs)) + u64::from(self.bidirs);
        self.tam_patterns() * (self.scan_bits() + terminals)
    }
}

/// An ITC'02-style SOC: a named collection of [`Module`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Soc {
    /// Benchmark name (e.g. `p93791s`).
    pub name: String,
    /// All modules, including a possible SOC-level module 0.
    pub modules: Vec<Module>,
}

impl Soc {
    /// Creates an SOC from a name and modules.
    pub fn new(name: impl Into<String>, modules: Vec<Module>) -> Self {
        Soc { name: name.into(), modules }
    }

    /// Iterates over the embedded cores, skipping the SOC-level module
    /// (level 0) and modules without TAM tests.
    pub fn cores(&self) -> impl Iterator<Item = &Module> {
        self.modules.iter().filter(|m| m.level > 0 && m.uses_tam())
    }

    /// Looks up a module by id.
    pub fn module(&self, id: u32) -> Option<&Module> {
        self.modules.iter().find(|m| m.id == id)
    }

    /// Sum of [`Module::test_data_volume`] over all cores.
    pub fn total_test_data_volume(&self) -> u64 {
        self.cores().map(Module::test_data_volume).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        Module::new_scan_core(1, 8, 9, 1, vec![10, 20, 30], 5)
    }

    #[test]
    fn scan_bits_sums_chain_lengths() {
        assert_eq!(sample().scan_bits(), 60);
    }

    #[test]
    fn scan_test_uses_tam_and_scan() {
        let t = ModuleTest::scan(12);
        assert!(t.scan_used && t.tam_used);
        assert_eq!(t.patterns, 12);
    }

    #[test]
    fn bist_test_uses_neither() {
        let t = ModuleTest::bist(3);
        assert!(!t.scan_used && !t.tam_used);
    }

    #[test]
    fn tam_patterns_ignores_bist() {
        let mut m = sample();
        m.tests.push(ModuleTest::bist(1000));
        assert_eq!(m.tam_patterns(), 5);
    }

    #[test]
    fn volume_counts_widest_side_plus_bidirs() {
        // max(8,9)+1 = 10 terminals; 60 scan bits; 5 patterns.
        assert_eq!(sample().test_data_volume(), 5 * 70);
    }

    #[test]
    fn cores_skips_level0_and_bist_only() {
        let level0 = Module { id: 0, level: 0, ..sample() };
        let bist_only = Module { id: 2, tests: vec![ModuleTest::bist(9)], ..sample() };
        let soc = Soc::new("x", vec![level0, sample(), bist_only]);
        let ids: Vec<u32> = soc.cores().map(|m| m.id).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn module_lookup_by_id() {
        let soc = Soc::new("x", vec![sample()]);
        assert_eq!(soc.module(1).unwrap().inputs, 8);
        assert!(soc.module(42).is_none());
    }
}
