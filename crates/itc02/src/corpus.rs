//! Loader for the real ITC'02 benchmark corpus (feature `corpus`).
//!
//! The published ITC'02 SOC test benchmark files (`d695.soc`,
//! `p22810.soc`, `p93791.soc`, …) are distributed under their own terms
//! and are not vendored into this repository; this module loads them from
//! a user-supplied directory for users who have the originals. Parsing
//! goes through the streaming [`parse_soc_reader`] path, so arbitrarily
//! large `.soc` files load with memory proportional to their longest line.
//!
//! Point `ITC02_CORPUS_DIR` at the directory holding the `.soc` files (or
//! pass an explicit path) and enable the feature:
//!
//! ```text
//! ITC02_CORPUS_DIR=~/itc02 cargo test -p msoc-itc02 --features corpus
//! ```

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use crate::parse::{parse_soc_reader, ParseSocError};
use crate::Soc;

/// The benchmark names the reproduced paper and its perf harness use.
pub const BENCHMARKS: [&str; 3] = ["d695", "p22810", "p93791"];

/// Environment variable naming the corpus directory.
pub const CORPUS_DIR_VAR: &str = "ITC02_CORPUS_DIR";

/// Error from loading a corpus file.
#[derive(Debug)]
pub enum CorpusError {
    /// The file could not be opened or read.
    Io(PathBuf, std::io::Error),
    /// The file was read but is not valid ITC'02 text.
    Parse(PathBuf, ParseSocError),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            CorpusError::Parse(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Io(_, e) => Some(e),
            CorpusError::Parse(_, e) => Some(e),
        }
    }
}

/// The corpus directory from `ITC02_CORPUS_DIR`, if set and non-empty.
pub fn corpus_dir() -> Option<PathBuf> {
    std::env::var_os(CORPUS_DIR_VAR).filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// Streams one `.soc` file into a [`Soc`].
///
/// # Errors
///
/// Returns [`CorpusError`] when the file cannot be read or parsed.
pub fn load_file(path: &Path) -> Result<Soc, CorpusError> {
    let file = File::open(path).map_err(|e| CorpusError::Io(path.to_path_buf(), e))?;
    parse_soc_reader(BufReader::new(file)).map_err(|e| CorpusError::Parse(path.to_path_buf(), e))
}

/// Loads benchmark `name` (e.g. `"p93791"`) as `dir/name.soc`.
///
/// # Errors
///
/// Returns [`CorpusError`] when the file cannot be read or parsed.
pub fn load(dir: &Path, name: &str) -> Result<Soc, CorpusError> {
    load_file(&dir.join(format!("{name}.soc")))
}

/// Loads every benchmark in [`BENCHMARKS`] from `dir`.
///
/// # Errors
///
/// Returns the first [`CorpusError`] encountered.
pub fn load_benchmarks(dir: &Path) -> Result<Vec<Soc>, CorpusError> {
    BENCHMARKS.iter().map(|name| load(dir, name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_reports_missing_files_with_their_path() {
        let err = load(Path::new("/nonexistent-corpus"), "d695").unwrap_err();
        assert!(matches!(err, CorpusError::Io(_, _)));
        assert!(err.to_string().contains("d695.soc"));
    }

    #[test]
    fn roundtripped_synthetic_files_load_through_the_corpus_path() {
        let dir = std::env::temp_dir().join("msoc_itc02_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        let soc = crate::synth::d695s();
        std::fs::write(dir.join("d695s.soc"), soc.to_string()).unwrap();
        let loaded = load(&dir, "d695s").unwrap();
        assert_eq!(loaded, soc);
    }

    /// Exercises the real corpus when the user points `ITC02_CORPUS_DIR`
    /// at it; silently passes otherwise (the files are not redistributable).
    #[test]
    fn real_corpus_loads_when_available() {
        let Some(dir) = corpus_dir() else {
            eprintln!("skipping: {CORPUS_DIR_VAR} not set");
            return;
        };
        let socs = load_benchmarks(&dir).expect("corpus files must parse");
        for (soc, name) in socs.iter().zip(BENCHMARKS) {
            assert!(!soc.modules.is_empty(), "{name} has no modules");
            assert!(soc.modules.iter().any(|m| !m.tests.is_empty()), "{name} has no tests");
        }
    }
}
