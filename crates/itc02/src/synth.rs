//! Deterministic synthetic benchmark generation.
//!
//! The original ITC'02 benchmark files are not redistributable with this
//! workspace, so the experiments run on synthetic stand-ins generated here.
//! [`p93791s`] is calibrated so that its digital-only TAM schedule reproduces
//! the published makespan scale of `p93791` (≈2.0 M cycles at width 16 down
//! to ≈0.5 M cycles at width 64, dominated by a handful of large cores);
//! see `DESIGN.md` at the workspace root for the calibration rationale.
//!
//! [`random_soc`] produces arbitrary seeded SOCs for tests and fuzzing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Module, Soc};

/// Calibrated synthetic stand-in for the ITC'02 `p93791` SOC.
///
/// 32 cores: one dominant core (id 6) holding about two thirds of the test
/// data, three mid-size cores (ids 17, 20, 27) and 28 small cores. The
/// function is deterministic: repeated calls return identical SOCs.
///
/// # Examples
///
/// ```
/// let soc = msoc_itc02::synth::p93791s();
/// assert_eq!(soc.cores().count(), 32);
/// ```
pub fn p93791s() -> Soc {
    let mut modules = Vec::with_capacity(32);

    for id in 1..=32u32 {
        modules.push(match id {
            6 => big_core(id),
            17 | 20 | 27 => mid_core(id),
            _ => small_core(id),
        });
    }

    Soc::new("p93791s", modules)
}

/// The dominant core: 46 near-uniform scan chains, 420 patterns.
fn big_core(id: u32) -> Module {
    let chains: Vec<u32> = (0..46).map(|i| 1060 + jitter(id, i, 70)).collect();
    Module::new_scan_core(id, 109, 32, 72, chains, 420)
}

/// Mid-size cores: 30 chains around 500 bits, 160 patterns.
fn mid_core(id: u32) -> Module {
    let chains: Vec<u32> = (0..30).map(|i| 470 + jitter(id, i, 60)).collect();
    Module::new_scan_core(id, 64 + (id % 5) * 8, 48, 16, chains, 160)
}

/// Small cores: 6–16 chains of 80–260 bits, 40–130 patterns.
fn small_core(id: u32) -> Module {
    let n_chains = 6 + (id * 7 % 11) as usize;
    let base = 80 + (id * 13 % 180);
    let chains: Vec<u32> = (0..n_chains as u32).map(|i| base + jitter(id, i, 40)).collect();
    let patterns = u64::from(40 + id * 11 % 91);
    Module::new_scan_core(id, 16 + id % 40, 12 + id % 30, id % 8, chains, patterns)
}

/// Small deterministic pseudo-jitter in `0..range`, stable across releases.
fn jitter(id: u32, i: u32, range: u32) -> u32 {
    // Weyl-style mix; quality is irrelevant, determinism is everything.
    (id.wrapping_mul(2654435761).wrapping_add(i.wrapping_mul(40503))) % range.max(1)
}

/// Mid-size synthetic stand-in for the ITC'02 `p22810` SOC.
///
/// 28 cores with a flatter test-data distribution than [`p93791s`]: the
/// largest core holds roughly a quarter of the data instead of two
/// thirds. Planning experiments that only ever see one dominance profile
/// can overfit to it; this SOC guards the planner's generality.
pub fn p22810s() -> Soc {
    let mut modules = Vec::with_capacity(28);
    for id in 1..=28u32 {
        modules.push(match id {
            1 => {
                // Largest core: ~25% of the volume.
                let chains: Vec<u32> = (0..24).map(|i| 380 + jitter(id, i, 40)).collect();
                Module::new_scan_core(id, 96, 64, 10, chains, 240)
            }
            5 | 12 | 21 => {
                let chains: Vec<u32> = (0..16).map(|i| 300 + jitter(id, i, 50)).collect();
                Module::new_scan_core(id, 50 + id, 40, 8, chains, 120)
            }
            _ => {
                let n_chains = 4 + (id * 5 % 9) as usize;
                let base = 60 + (id * 17 % 160);
                let chains: Vec<u32> =
                    (0..n_chains as u32).map(|i| base + jitter(id, i, 30)).collect();
                Module::new_scan_core(
                    id,
                    12 + id % 30,
                    10 + id % 24,
                    id % 6,
                    chains,
                    u64::from(30 + id * 7 % 80),
                )
            }
        });
    }
    Soc::new("p22810s", modules)
}

/// Small synthetic stand-in for the ITC'02 `d695` SOC (10 light cores).
///
/// Useful for fast unit and integration tests.
pub fn d695s() -> Soc {
    type CoreSpec = (u32, u32, u32, u32, &'static [u32], u64);
    let specs: [CoreSpec; 10] = [
        (1, 32, 32, 0, &[], 12),
        (2, 207, 108, 0, &[41, 41, 40, 40], 73),
        (3, 34, 1, 32, &[50, 50, 50], 75),
        (4, 36, 39, 0, &[54, 54, 54, 54], 105),
        (5, 38, 70, 0, &[45, 45, 45], 110),
        (6, 62, 152, 0, &[41, 41, 41, 40], 234),
        (7, 77, 150, 0, &[34, 34, 33], 95),
        (8, 35, 49, 0, &[46, 46], 97),
        (9, 55, 120, 0, &[54, 54, 54], 12),
        (10, 18, 30, 0, &[41, 41], 68),
    ];
    let modules = specs
        .iter()
        .map(|&(id, i, o, b, chains, p)| Module::new_scan_core(id, i, o, b, chains.to_vec(), p))
        .collect();
    Soc::new("d695s", modules)
}

/// Parameters for [`random_soc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSocParams {
    /// Number of cores to generate.
    pub cores: usize,
    /// Inclusive range of scan-chain counts per core.
    pub chains: (usize, usize),
    /// Inclusive range of scan-chain lengths.
    pub chain_len: (u32, u32),
    /// Inclusive range of pattern counts.
    pub patterns: (u64, u64),
    /// Inclusive range of functional input/output counts.
    pub terminals: (u32, u32),
}

impl Default for RandomSocParams {
    fn default() -> Self {
        RandomSocParams {
            cores: 12,
            chains: (1, 12),
            chain_len: (20, 400),
            patterns: (10, 300),
            terminals: (4, 120),
        }
    }
}

/// Generates a random SOC from a seed; identical seeds give identical SOCs.
///
/// # Examples
///
/// ```
/// use msoc_itc02::synth::{random_soc, RandomSocParams};
/// let a = random_soc(7, RandomSocParams::default());
/// let b = random_soc(7, RandomSocParams::default());
/// assert_eq!(a, b);
/// ```
pub fn random_soc(seed: u64, params: RandomSocParams) -> Soc {
    let mut rng = StdRng::seed_from_u64(seed);
    let modules = (1..=params.cores as u32)
        .map(|id| {
            let n_chains = rng.gen_range(params.chains.0..=params.chains.1);
            let chains: Vec<u32> = (0..n_chains)
                .map(|_| rng.gen_range(params.chain_len.0..=params.chain_len.1))
                .collect();
            Module::new_scan_core(
                id,
                rng.gen_range(params.terminals.0..=params.terminals.1),
                rng.gen_range(params.terminals.0..=params.terminals.1),
                0,
                chains,
                rng.gen_range(params.patterns.0..=params.patterns.1),
            )
        })
        .collect();
    Soc::new(format!("rand{seed}"), modules)
}

/// Generates a deterministic *fleet* of synthetic SOCs for multi-SOC
/// service workloads: `count` SOCs whose seeds derive from `seed` and
/// whose core counts cycle through distinct profiles around
/// `params.cores`, so a fleet exercises several digital-skeleton shapes
/// instead of `count` near-clones.
///
/// # Examples
///
/// ```
/// use msoc_itc02::synth::{random_fleet, RandomSocParams};
/// let fleet = random_fleet(7, 4, RandomSocParams::default());
/// assert_eq!(fleet.len(), 4);
/// assert_eq!(fleet, random_fleet(7, 4, RandomSocParams::default()));
/// let names: std::collections::HashSet<_> = fleet.iter().map(|s| s.name.clone()).collect();
/// assert_eq!(names.len(), 4, "fleet members are distinct SOCs");
/// ```
pub fn random_fleet(seed: u64, count: usize, params: RandomSocParams) -> Vec<Soc> {
    (0..count)
        .map(|i| {
            let mut p = params;
            // Cycle core counts through nearby profiles (never below 1).
            p.cores = (params.cores + i % 5).max(1);
            let mut soc = random_soc(seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64), p);
            soc.name = format!("fleet{seed}-{i}");
            soc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_varied() {
        let fleet = random_fleet(3, 6, RandomSocParams::default());
        assert_eq!(fleet, random_fleet(3, 6, RandomSocParams::default()));
        let core_counts: std::collections::HashSet<usize> =
            fleet.iter().map(|s| s.cores().count()).collect();
        assert!(core_counts.len() >= 3, "fleet profiles should vary: {core_counts:?}");
        for soc in &fleet {
            assert_eq!(soc, &soc.to_string().parse::<Soc>().unwrap(), "fleet SOCs roundtrip");
        }
    }

    #[test]
    fn p93791s_is_deterministic() {
        assert_eq!(p93791s(), p93791s());
    }

    #[test]
    fn p93791s_has_32_cores_with_expected_dominance() {
        let soc = p93791s();
        assert_eq!(soc.cores().count(), 32);
        let big = soc.module(6).unwrap().test_data_volume();
        let total = soc.total_test_data_volume();
        let share = big as f64 / total as f64;
        assert!(
            (0.55..0.80).contains(&share),
            "dominant core share {share:.3} out of calibration band"
        );
    }

    #[test]
    fn p93791s_total_volume_matches_calibration_band() {
        // ~31 M wire-cycles of test data => ~1 M cycle makespan at width 32.
        let total = p93791s().total_test_data_volume();
        assert!((28_000_000..36_000_000).contains(&total), "total volume {total} out of band");
    }

    #[test]
    fn p93791s_roundtrips_through_format() {
        let soc = p93791s();
        assert_eq!(soc, soc.to_string().parse().unwrap());
    }

    #[test]
    fn p22810s_has_a_flatter_distribution_than_p93791s() {
        let soc = p22810s();
        assert_eq!(soc.cores().count(), 28);
        assert_eq!(soc, soc.to_string().parse().unwrap());
        let top = soc.module(1).unwrap().test_data_volume();
        let total = soc.total_test_data_volume();
        let share = top as f64 / total as f64;
        assert!(
            (0.10..0.45).contains(&share),
            "dominant-core share {share:.3} out of the flat-profile band"
        );
    }

    #[test]
    fn d695s_roundtrips_and_is_light() {
        let soc = d695s();
        assert_eq!(soc.cores().count(), 10);
        assert_eq!(soc, soc.to_string().parse().unwrap());
        assert!(soc.total_test_data_volume() < 1_000_000);
    }

    #[test]
    fn random_soc_is_seed_deterministic_and_in_bounds() {
        let p = RandomSocParams::default();
        let soc = random_soc(42, p);
        assert_eq!(soc, random_soc(42, p));
        for m in soc.cores() {
            assert!(m.scan_chains.len() >= p.chains.0 && m.scan_chains.len() <= p.chains.1);
            for &len in &m.scan_chains {
                assert!((p.chain_len.0..=p.chain_len.1).contains(&len));
            }
        }
    }

    #[test]
    fn random_socs_differ_across_seeds() {
        assert_ne!(
            random_soc(1, RandomSocParams::default()),
            random_soc(2, RandomSocParams::default())
        );
    }
}
