//! Serialization of [`Soc`] back to the ITC'02 textual format.

use std::fmt;

use crate::model::Soc;

impl fmt::Display for Soc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SocName {}", self.name)?;
        writeln!(f, "TotalModules {}", self.modules.len())?;
        for m in &self.modules {
            write!(
                f,
                "Module {} Level {} Inputs {} Outputs {} Bidirs {} ScanChains {}",
                m.id,
                m.level,
                m.inputs,
                m.outputs,
                m.bidirs,
                m.scan_chains.len()
            )?;
            if !m.scan_chains.is_empty() {
                write!(f, " ScanChainLengths")?;
                for len in &m.scan_chains {
                    write!(f, " {len}")?;
                }
            }
            writeln!(f, " TotalTests {}", m.tests.len())?;
            for (i, t) in m.tests.iter().enumerate() {
                writeln!(
                    f,
                    "Test {} ScanUsed {} TamUsed {} Patterns {}",
                    i + 1,
                    u8::from(t.scan_used),
                    u8::from(t.tam_used),
                    t.patterns
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Module, ModuleTest, Soc};

    fn sample() -> Soc {
        let mut m1 = Module::new_scan_core(1, 3, 4, 0, vec![10, 12], 7);
        m1.tests.push(ModuleTest::bist(99));
        let m2 = Module::new_scan_core(2, 1, 1, 2, vec![], 3);
        Soc::new("tiny", vec![m1, m2])
    }

    #[test]
    fn roundtrip_preserves_soc() {
        let soc = sample();
        let text = soc.to_string();
        let reparsed: Soc = text.parse().unwrap();
        assert_eq!(soc, reparsed);
    }

    #[test]
    fn output_contains_expected_lines() {
        let text = sample().to_string();
        assert!(text.starts_with("SocName tiny\nTotalModules 2\n"));
        assert!(text.contains("ScanChainLengths 10 12"));
        assert!(text.contains("Test 2 ScanUsed 0 TamUsed 0 Patterns 99"));
    }
}
