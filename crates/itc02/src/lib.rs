//! ITC'02 SOC test benchmark support.
//!
//! The ITC'02 SOC test benchmarks (Marinissen, Iyengar, Chakrabarty) describe
//! a system-on-chip as a set of *modules* (embedded cores), each with
//! functional terminals, internal scan chains and one or more tests. This
//! crate provides:
//!
//! * a data [`model`] for SOCs and their modules ([`Soc`], [`Module`],
//!   [`ModuleTest`]),
//! * a streaming [`parse`]r (any [`std::io::BufRead`] source, `\` line
//!   continuations, O(longest line) memory) and a writer for the ITC'02
//!   textual format,
//! * behind the `corpus` feature, a loader for the real published `.soc`
//!   files (`d695`/`p22810`/`p93791`) from a user-supplied directory
//!   (`ITC02_CORPUS_DIR`),
//! * deterministic [`synth`]etic benchmark generators, including
//!   [`synth::p93791s`], a calibrated stand-in for the `p93791` SOC used by
//!   the DATE 2005 paper this workspace reproduces, and [`synth::d695s`], a
//!   small stand-in for `d695` used in tests.
//!
//! # Format
//!
//! The accepted grammar is the whitespace-separated key/value dialect used by
//! the published benchmark files:
//!
//! ```text
//! SocName p93791s
//! TotalModules 3
//! Module 1 Level 1 Inputs 109 Outputs 32 Bidirs 72 ScanChains 2 \
//!        ScanChainLengths 520 512 TotalTests 1
//! Test 1 ScanUsed 1 TamUsed 1 Patterns 409
//! ```
//!
//! `#` starts a comment that runs to the end of the line. `Test` lines attach
//! to the most recent `Module` line. Everything is case-sensitive.
//!
//! # Examples
//!
//! ```
//! use msoc_itc02::{Soc, synth};
//!
//! let soc: Soc = synth::p93791s();
//! let text = soc.to_string();
//! let reparsed: Soc = text.parse()?;
//! assert_eq!(soc, reparsed);
//! # Ok::<(), msoc_itc02::ParseSocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "corpus")]
pub mod corpus;
pub mod model;
pub mod parse;
pub mod stats;
pub mod synth;
mod write;

pub use model::{Module, ModuleTest, Soc};
pub use parse::{parse_soc_reader, ParseSocError};
