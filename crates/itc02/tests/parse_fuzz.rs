//! Adversarial and fuzz tests for the ITC'02 parser.
//!
//! The parser is exposed to user-supplied `.soc` files (the `corpus`
//! loader reads whatever `ITC02_CORPUS_DIR` points at), so malformed
//! input of any shape must come back as a [`ParseSocError`] — never a
//! panic, an abort, or an attempt to allocate memory proportional to a
//! *declared* (rather than actual) size.

use std::io::BufRead;

use msoc_itc02::{parse_soc_reader, Soc};
use proptest::prelude::*;

/// A small pool of line templates biased toward the parser's edges:
/// truncated continuations, huge declared counts, unknown directives,
/// comments, NULs, and valid-looking fragments interleaved out of order.
fn template_line(kind: u64, v: u64) -> String {
    match kind % 16 {
        0 => format!("SocName s{v}"),
        1 => format!("TotalModules {v}"),
        2 => format!("Module {v} Level 1"),
        // Huge declared scan count with truncated length list.
        3 => format!("Module 1 Level 1 ScanChains {v} ScanChainLengths 1 2"),
        4 => format!("Test {v} Patterns {v}"),
        // Trailing continuation, possibly at EOF.
        5 => "Module 1 \\".into(),
        6 => "ScanChainLengths 1 2 3".into(),
        7 => format!("Module {v} Level -1 Inputs -3"),
        8 => format!("# comment {v}"),
        9 => format!("Bogus{v} x y z"),
        10 => format!("Module 1 Level 1 TotalTests {v}"),
        11 => "\u{0}NUL\u{0} 1".into(),
        12 => format!("Test {v}"),
        13 => String::new(),
        14 => format!("Module {v} Level 1 ScanChains 2 ScanChainLengths {v} \\"),
        15 => format!("TotalModules {v}{v}{v}{v}"), // overflows u64 parsing
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(
        bytes in prop::collection::vec(0u8..=255, 0..=512),
    ) {
        // Invalid UTF-8 must surface as the Io error kind, anything else
        // as a structured parse error or a valid SOC — never a panic.
        match parse_soc_reader(&bytes[..]) {
            Ok(soc) => prop_assert!(!soc.name.is_empty()),
            Err(e) => prop_assert!(e.line() >= 1, "error lines are 1-based: {e}"),
        }
    }

    #[test]
    fn malformed_token_streams_error_cleanly(
        picks in prop::collection::vec((0u64..=15, 0u64..=u64::MAX), 1..=16),
    ) {
        let text: String =
            picks.iter().map(|&(k, v)| template_line(k, v) + "\n").collect();
        let lines = picks.len();
        match text.parse::<Soc>() {
            Ok(soc) => prop_assert!(!soc.name.is_empty()),
            Err(e) => prop_assert!(
                e.line() >= 1 && e.line() <= lines + 1,
                "error line {} out of range for {lines} lines: {e}",
                e.line()
            ),
        }
    }

    #[test]
    fn truncating_valid_input_anywhere_never_panics(cut in 0usize..=400) {
        let valid = "\
SocName tiny
TotalModules 2
Module 1 Level 1 Inputs 3 Outputs 4 Bidirs 0 ScanChains 2 \\
       ScanChainLengths 10 12 TotalTests 1
Test 1 ScanUsed 1 TamUsed 1 Patterns 7
Module 2 Level 1 Inputs 1 Outputs 1 ScanChains 0 TotalTests 1
Test 1 ScanUsed 0 TamUsed 1 Patterns 3
";
        let cut = cut.min(valid.len());
        // Cutting may split a UTF-8-safe ASCII file anywhere.
        let _ = valid[..cut].parse::<Soc>();
    }
}

#[test]
fn huge_declared_scan_count_fails_fast_without_allocating() {
    // `ScanChains u64::MAX` must fail on the missing lengths, not try to
    // build a multi-exabyte vector.
    let text =
        format!("SocName x\nModule 1 Level 1 ScanChains {} ScanChainLengths 1 2\n", u64::MAX);
    let err = text.parse::<Soc>().unwrap_err();
    assert_eq!(err.line(), 2);
}

#[test]
fn huge_declared_module_count_is_just_a_mismatch() {
    let text = "SocName x\nTotalModules 4000000000\nModule 1 Level 1\n";
    let err = text.parse::<Soc>().unwrap_err();
    assert!(err.to_string().contains("declared 4000000000"), "{err}");
}

#[test]
fn invalid_utf8_surfaces_as_io_error_with_line() {
    let bytes: &[u8] = b"SocName x\nModule 1 \xff\xfe Level 1\n";
    let err = parse_soc_reader(bytes).unwrap_err();
    assert_eq!(err.line(), 2);
    assert!(err.to_string().contains("I/O error"), "{err}");
}

#[test]
fn nul_bytes_are_ordinary_bad_tokens() {
    let err = "SocName x\n\u{0}Module 1\n".parse::<Soc>().unwrap_err();
    assert_eq!(err.line(), 2);
}

#[test]
fn thousands_of_continuations_stay_bounded_and_parse() {
    // One logical Module line wrapped over 5000 physical lines: memory is
    // proportional to the joined line, and the parse succeeds.
    let mut text = String::from("SocName deep\nModule 1 \\\n");
    for _ in 0..5000 {
        text.push_str(" \\\n");
    }
    text.push_str(" Level 1\n");
    let soc: Soc = text.parse().expect("deeply wrapped line parses");
    assert_eq!(soc.modules.len(), 1);
    // And an error after the wrap still reports a sane physical line.
    let err = format!("{text}Bogus 1\n").parse::<Soc>().unwrap_err();
    assert_eq!(err.line(), 5004);
}

#[test]
fn tiny_buffer_reader_agrees_with_str_parse_on_malformed_input() {
    // Streaming refills must not change how errors are detected.
    let text = "SocName x\nModule 1 Level one\n";
    let from_str = text.parse::<Soc>().unwrap_err();
    let reader = std::io::BufReader::with_capacity(3, text.as_bytes());
    let from_reader = parse_soc_reader(reader).unwrap_err();
    assert_eq!(from_str, from_reader);
}

/// A reader that yields the input one byte per `read` call and then fails;
/// exercises the mid-line I/O error path.
struct OneByteThenFail<'a> {
    data: &'a [u8],
    pos: usize,
    buffered: Vec<u8>,
}

impl std::io::Read for OneByteThenFail<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.fill_buf()?.len().min(buf.len());
        buf[..n].copy_from_slice(&self.buffered[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for OneByteThenFail<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.buffered.is_empty() {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::other("backing store vanished"));
            }
            self.buffered.push(self.data[self.pos]);
            self.pos += 1;
        }
        Ok(&self.buffered)
    }
    fn consume(&mut self, amt: usize) {
        self.buffered.drain(..amt);
    }
}

#[test]
fn io_failure_mid_directive_reports_the_failing_line() {
    let reader = OneByteThenFail { data: b"SocName x\nModule 1 Lev", pos: 0, buffered: Vec::new() };
    let err = parse_soc_reader(reader).unwrap_err();
    assert_eq!(err.line(), 2, "failure happened while reading line 2: {err}");
    assert!(err.to_string().contains("backing store vanished"));
}
