//! The five analog cores of the paper's experimental SOC (its Table 2).
//!
//! The paper augments the ITC'02 `p93791` digital SOC with five analog
//! cores taken from a commercial baseband cellular-phone chip:
//!
//! * cores **A** and **B** — an identical pair of I-Q transmit paths
//!   (500 kHz bandwidth, six specification tests each),
//! * core **C** — a CODEC audio path (50 kHz bandwidth, three tests),
//! * core **D** — a baseband down-conversion path (three tests),
//! * core **E** — a general-purpose amplifier (two tests).
//!
//! Every test carries the sampling frequency, the test length in clock
//! cycles, and the TAM width requirement from the paper's Table 2. The
//! per-core cycle totals (A=B=135 969, C=299 785, D=56 490, E=7 900)
//! reproduce all normalized test-time lower bounds of the paper's Table 1.

use std::fmt;

/// Identifier of one of the five paper cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreId {
    /// I-Q transmit path (first of the identical pair).
    A,
    /// I-Q transmit path (second of the identical pair).
    B,
    /// CODEC audio path.
    C,
    /// Baseband down converter.
    D,
    /// General-purpose amplifier.
    E,
}

impl CoreId {
    /// All five cores in order.
    pub const ALL: [CoreId; 5] = [CoreId::A, CoreId::B, CoreId::C, CoreId::D, CoreId::E];

    /// Index 0..5 of the core.
    pub fn index(self) -> usize {
        match self {
            CoreId::A => 0,
            CoreId::B => 1,
            CoreId::C => 2,
            CoreId::D => 3,
            CoreId::E => 4,
        }
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            CoreId::A => 'A',
            CoreId::B => 'B',
            CoreId::C => 'C',
            CoreId::D => 'D',
            CoreId::E => 'E',
        };
        write!(f, "{c}")
    }
}

/// The specification a test measures (first column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalogTestKind {
    /// Pass-band gain `A_PB`.
    PassbandGain,
    /// Cutoff frequency `f_c`.
    CutoffFrequency,
    /// Stop-band attenuation at specified frequencies (`A_1MHz`, `A_2MHz`).
    Attenuation,
    /// Third-order input intercept point `IIP3` (two-tone test).
    Iip3,
    /// DC offset `V_offset`.
    DcOffset,
    /// I/Q phase mismatch `φ_off`.
    PhaseMismatch,
    /// Total harmonic distortion `THD`.
    Thd,
    /// Gain `G_n`.
    Gain,
    /// Dynamic range `DR`.
    DynamicRange,
    /// Slew rate `SR`.
    SlewRate,
}

impl fmt::Display for AnalogTestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnalogTestKind::PassbandGain => "A_PB",
            AnalogTestKind::CutoffFrequency => "f_c",
            AnalogTestKind::Attenuation => "A_att",
            AnalogTestKind::Iip3 => "IIP3",
            AnalogTestKind::DcOffset => "V_off",
            AnalogTestKind::PhaseMismatch => "phi_off",
            AnalogTestKind::Thd => "THD",
            AnalogTestKind::Gain => "G_n",
            AnalogTestKind::DynamicRange => "DR",
            AnalogTestKind::SlewRate => "SR",
        };
        write!(f, "{s}")
    }
}

/// One row of Table 2: a specification test of an analog core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogTestSpec {
    /// What the test measures.
    pub kind: AnalogTestKind,
    /// Lower stimulus frequency in Hz (0 for DC).
    pub f_low_hz: f64,
    /// Upper stimulus frequency in Hz (0 for DC).
    pub f_high_hz: f64,
    /// Sampling frequency the wrapper's converters run at, in Hz.
    pub sample_rate_hz: f64,
    /// Test length in clock cycles (the paper's sample count column).
    pub cycles: u64,
    /// TAM width requirement in wires.
    pub tam_width: u32,
}

impl AnalogTestSpec {
    /// Short label like `IIP3@8MHz` for schedules and reports.
    pub fn label(&self) -> String {
        format!("{}@{}", self.kind, format_hz(self.sample_rate_hz))
    }
}

/// An analog core with its test set (one block of Table 2) and the
/// converter requirements this workspace derives for the area model.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogCoreSpec {
    /// Which of the five paper cores this is.
    pub id: CoreId,
    /// Human-readable description from the paper.
    pub name: &'static str,
    /// ADC/DAC resolution the core's most demanding test needs, in bits.
    pub resolution_bits: u8,
    /// The core's specification tests.
    pub tests: Vec<AnalogTestSpec>,
}

impl AnalogCoreSpec {
    /// Total test time in clock cycles (sum over tests).
    pub fn total_cycles(&self) -> u64 {
        self.tests.iter().map(|t| t.cycles).sum()
    }

    /// Widest TAM requirement over the core's tests.
    pub fn max_tam_width(&self) -> u32 {
        self.tests.iter().map(|t| t.tam_width).max().unwrap_or(0)
    }

    /// Fastest sampling rate over the core's tests, in Hz.
    pub fn max_sample_rate_hz(&self) -> f64 {
        self.tests.iter().map(|t| t.sample_rate_hz).fold(0.0, f64::max)
    }
}

fn format_hz(hz: f64) -> String {
    if hz >= 1e6 {
        format!("{}MHz", hz / 1e6)
    } else if hz >= 1e3 {
        format!("{}kHz", hz / 1e3)
    } else {
        format!("{hz}Hz")
    }
}

fn spec(
    kind: AnalogTestKind,
    f_low_hz: f64,
    f_high_hz: f64,
    sample_rate_hz: f64,
    cycles: u64,
    tam_width: u32,
) -> AnalogTestSpec {
    AnalogTestSpec { kind, f_low_hz, f_high_hz, sample_rate_hz, cycles, tam_width }
}

/// The five analog cores of the paper's Table 2, verbatim.
///
/// # Examples
///
/// ```
/// let cores = msoc_analog::paper_cores();
/// assert_eq!(cores.len(), 5);
/// // Core totals drive every Table 1 lower bound of the paper.
/// assert_eq!(cores[0].total_cycles(), 135_969);
/// ```
pub fn paper_cores() -> Vec<AnalogCoreSpec> {
    use AnalogTestKind::*;
    let iq_transmit = |id| AnalogCoreSpec {
        id,
        name: "I-Q transmit path",
        resolution_bits: 8,
        tests: vec![
            spec(PassbandGain, 50e3, 50e3, 1.5e6, 50_000, 1),
            spec(CutoffFrequency, 45e3, 55e3, 1.5e6, 13_653, 4),
            spec(Attenuation, 1e6, 2e6, 8e6, 12_643, 2),
            spec(Iip3, 50e3, 250e3, 8e6, 26_973, 2),
            spec(DcOffset, 0.0, 0.0, 10e3, 700, 1),
            spec(PhaseMismatch, 200e3, 400e3, 15e6, 32_000, 4),
        ],
    };
    vec![
        iq_transmit(CoreId::A),
        iq_transmit(CoreId::B),
        AnalogCoreSpec {
            id: CoreId::C,
            name: "CODEC audio path",
            resolution_bits: 12,
            tests: vec![
                spec(PassbandGain, 20e3, 20e3, 640e3, 80_000, 1),
                spec(CutoffFrequency, 45e3, 55e3, 1.5e6, 136_533, 1),
                spec(Thd, 2e3, 31e3, 2.46e6, 83_252, 1),
            ],
        },
        AnalogCoreSpec {
            id: CoreId::D,
            name: "Baseband down converter",
            resolution_bits: 10,
            tests: vec![
                spec(Iip3, 3.25e6, 9.75e6, 78e6, 15_754, 10),
                spec(Gain, 26e6, 26e6, 26e6, 9_228, 4),
                spec(DynamicRange, 26e6, 26e6, 26e6, 31_508, 4),
            ],
        },
        AnalogCoreSpec {
            id: CoreId::E,
            name: "General purpose amplifier",
            resolution_bits: 8,
            tests: vec![
                spec(SlewRate, 69e6, 69e6, 69e6, 5_400, 5),
                spec(Gain, 8e6, 8e6, 8e6, 2_500, 1),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_core_cycle_totals_match_the_paper() {
        let cores = paper_cores();
        let totals: Vec<u64> = cores.iter().map(AnalogCoreSpec::total_cycles).collect();
        assert_eq!(totals, vec![135_969, 135_969, 299_785, 56_490, 7_900]);
    }

    #[test]
    fn normalized_shares_reproduce_table1_lower_bounds() {
        // The paper's Table 1 T_LB values follow from the per-core shares of
        // the grand total; spot-check the anchors quoted in DESIGN.md.
        let cores = paper_cores();
        let total: u64 = cores.iter().map(AnalogCoreSpec::total_cycles).sum();
        let share = |id: CoreId| 100.0 * cores[id.index()].total_cycles() as f64 / total as f64;
        assert!((share(CoreId::A) + share(CoreId::C) - 68.5).abs() < 0.1);
        assert!((share(CoreId::C) + share(CoreId::D) - 56.0).abs() < 0.1);
        assert!((share(CoreId::D) + share(CoreId::E) - 10.1).abs() < 0.1);
        let abcd = share(CoreId::A) * 2.0 + share(CoreId::C) + share(CoreId::D);
        assert!((abcd - 98.7).abs() < 0.1);
    }

    #[test]
    fn cores_a_and_b_are_identical_except_for_id() {
        let cores = paper_cores();
        assert_eq!(cores[0].tests, cores[1].tests);
        assert_ne!(cores[0].id, cores[1].id);
    }

    #[test]
    fn tam_widths_match_table2_maxima() {
        let cores = paper_cores();
        let widths: Vec<u32> = cores.iter().map(AnalogCoreSpec::max_tam_width).collect();
        assert_eq!(widths, vec![4, 4, 1, 10, 5]);
    }

    #[test]
    fn sample_rates_match_table2_maxima() {
        let cores = paper_cores();
        assert_eq!(cores[0].max_sample_rate_hz(), 15e6);
        assert_eq!(cores[2].max_sample_rate_hz(), 2.46e6);
        assert_eq!(cores[3].max_sample_rate_hz(), 78e6);
        assert_eq!(cores[4].max_sample_rate_hz(), 69e6);
    }

    #[test]
    fn labels_are_compact() {
        let cores = paper_cores();
        assert_eq!(cores[0].tests[0].label(), "A_PB@1.5MHz");
        assert_eq!(cores[3].tests[0].label(), "IIP3@78MHz");
        assert_eq!(format!("{}", CoreId::D), "D");
    }

    #[test]
    fn core_ids_index_in_order() {
        for (i, id) in CoreId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }
}
