//! Down-conversion mixer model (the paper's core D substrate).

use super::filter::Biquad;

/// A behavioral down-conversion mixer: multiplies the RF input by a local
/// oscillator and low-pass filters the product, translating a band around
/// `lo_hz` down to baseband.
///
/// # Examples
///
/// ```
/// use msoc_analog::circuit::Mixer;
/// use msoc_analog::signal::MultiTone;
/// use msoc_analog::dsp::goertzel::tone_amplitude;
///
/// let fs = 78e6;
/// let mut mixer = Mixer::new(26e6, 2e6, fs);
/// // A tone 0.5 MHz above the LO lands at 0.5 MHz baseband.
/// let rf = MultiTone::equal_amplitude(&[26.5e6], 1.0).generate(fs, 40_000);
/// let bb = mixer.process(&rf);
/// let a = tone_amplitude(&bb[8000..], fs, 0.5e6);
/// assert!((a - 0.5).abs() < 0.02); // conversion gain 1/2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mixer {
    lo_hz: f64,
    sample_rate_hz: f64,
    conversion_gain: f64,
    lpf: Biquad,
    n: u64,
}

impl Mixer {
    /// Creates a mixer with local oscillator `lo_hz` and a baseband
    /// low-pass of cutoff `bw_hz`, running at `sample_rate_hz`.
    ///
    /// The ideal multiplying mixer has conversion gain 1/2 (the other half
    /// of the energy lands at `f + lo` and is filtered out).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bw_hz < sample_rate_hz / 2` and
    /// `0 < lo_hz < sample_rate_hz / 2`.
    pub fn new(lo_hz: f64, bw_hz: f64, sample_rate_hz: f64) -> Self {
        assert!(lo_hz > 0.0 && lo_hz < sample_rate_hz / 2.0, "LO must lie in (0, fs/2)");
        Mixer {
            lo_hz,
            sample_rate_hz,
            conversion_gain: 1.0,
            lpf: Biquad::butterworth_lowpass(bw_hz, sample_rate_hz),
            n: 0,
        }
    }

    /// Applies an additional conversion gain (e.g. an active mixer's gain).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.conversion_gain = gain;
        self
    }

    /// The local-oscillator frequency in Hz.
    pub fn lo_hz(&self) -> f64 {
        self.lo_hz
    }

    /// Processes one RF sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let t = self.n as f64 / self.sample_rate_hz;
        self.n += 1;
        let lo = (2.0 * std::f64::consts::PI * self.lo_hz * t).cos();
        self.lpf.process_sample(self.conversion_gain * x * lo)
    }

    /// Processes an RF signal, returning the baseband output.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Resets oscillator phase and filter state.
    pub fn reset(&mut self) {
        self.n = 0;
        self.lpf.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::goertzel::tone_amplitude;
    use crate::signal::MultiTone;

    const FS: f64 = 78e6;

    #[test]
    fn tone_at_lo_offset_downconverts() {
        let mut m = Mixer::new(26e6, 2e6, FS);
        let rf = MultiTone::equal_amplitude(&[27e6], 1.0).generate(FS, 40_000);
        let bb = m.process(&rf);
        let a = tone_amplitude(&bb[8000..], FS, 1e6);
        assert!((a - 0.5).abs() < 0.03, "baseband amplitude {a}");
    }

    #[test]
    fn out_of_band_products_are_rejected() {
        let mut m = Mixer::new(26e6, 2e6, FS);
        let rf = MultiTone::equal_amplitude(&[27e6], 1.0).generate(FS, 40_000);
        let bb = m.process(&rf);
        // The sum product at 53 MHz must be strongly attenuated.
        let leak = tone_amplitude(&bb[8000..], FS, 53e6);
        assert!(leak < 0.01, "sum-product leakage {leak}");
    }

    #[test]
    fn gain_scales_output() {
        let mut unit = Mixer::new(26e6, 2e6, FS);
        let mut boosted = Mixer::new(26e6, 2e6, FS).with_gain(4.0);
        let rf = MultiTone::equal_amplitude(&[26.5e6], 0.2).generate(FS, 30_000);
        let a1 = tone_amplitude(&unit.process(&rf)[6000..], FS, 0.5e6);
        let a4 = tone_amplitude(&boosted.process(&rf)[6000..], FS, 0.5e6);
        assert!((a4 / a1 - 4.0).abs() < 0.05);
    }

    #[test]
    fn reset_restores_phase() {
        let mut m = Mixer::new(26e6, 2e6, FS);
        let rf = MultiTone::equal_amplitude(&[26.5e6], 1.0).generate(FS, 5000);
        let first = m.process(&rf);
        m.reset();
        let second = m.process(&rf);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "LO")]
    fn lo_above_nyquist_panics() {
        Mixer::new(40e6, 1e6, FS);
    }
}
