//! Behavioral circuit models.
//!
//! These stand in for the transistor-level cores of the paper's test chip:
//! a biquad low-pass [`Biquad`] models the I-Q transmit filter whose cutoff
//! test Figure 5 reproduces, [`Amplifier`] models the general-purpose
//! amplifier (core E) with saturation and slew-rate limiting, and
//! [`Mixer`] models the baseband down-converter (core D).

mod amplifier;
mod filter;
mod mixer;

pub use amplifier::Amplifier;
pub use filter::{Biquad, FirstOrderLowPass};
pub use mixer::Mixer;
