//! General-purpose amplifier model with the nonidealities the paper's
//! core E tests probe: finite slew rate and output saturation, plus a mild
//! cubic nonlinearity for intermodulation (IIP3) experiments.

/// A behavioral amplifier.
///
/// The model applies, in order: linear gain, an optional cubic
/// nonlinearity, slew-rate limiting against the previous output, and hard
/// saturation at `±v_sat`.
///
/// # Examples
///
/// ```
/// use msoc_analog::circuit::Amplifier;
/// let mut amp = Amplifier::new(10.0, 1.0e9, 2.0);
/// let y = amp.process_sample(0.05, 1e-6);
/// assert!((y - 0.5).abs() < 1e-9); // linear region: gain 10
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Amplifier {
    gain: f64,
    slew_rate_v_per_s: f64,
    v_sat: f64,
    /// Third-order coefficient of `y = g·x − k3·(g·x)³`; zero = ideal.
    cubic_coeff: f64,
    last_output: f64,
}

impl Amplifier {
    /// Creates an amplifier with voltage `gain`, maximum output slew rate
    /// (V/s) and symmetric saturation at `±v_sat` volts.
    ///
    /// # Panics
    ///
    /// Panics if `slew_rate_v_per_s <= 0` or `v_sat <= 0`.
    pub fn new(gain: f64, slew_rate_v_per_s: f64, v_sat: f64) -> Self {
        assert!(slew_rate_v_per_s > 0.0, "slew rate must be positive");
        assert!(v_sat > 0.0, "saturation voltage must be positive");
        Amplifier { gain, slew_rate_v_per_s, v_sat, cubic_coeff: 0.0, last_output: 0.0 }
    }

    /// Adds a third-order nonlinearity `y = v − k3·v³`; larger `k3` lowers
    /// the amplifier's IIP3.
    pub fn with_cubic_nonlinearity(mut self, k3: f64) -> Self {
        self.cubic_coeff = k3;
        self
    }

    /// The linear voltage gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The configured slew rate in V/s.
    pub fn slew_rate(&self) -> f64 {
        self.slew_rate_v_per_s
    }

    /// Processes one sample taken `dt` seconds after the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn process_sample(&mut self, x: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "sample spacing must be positive");
        let linear = self.gain * x;
        let shaped = linear - self.cubic_coeff * linear * linear * linear;
        let max_step = self.slew_rate_v_per_s * dt;
        let slewed = shaped.clamp(self.last_output - max_step, self.last_output + max_step);
        let y = slewed.clamp(-self.v_sat, self.v_sat);
        self.last_output = y;
        y
    }

    /// Processes a signal sampled at `sample_rate_hz`.
    pub fn process(&mut self, input: &[f64], sample_rate_hz: f64) -> Vec<f64> {
        let dt = 1.0 / sample_rate_hz;
        input.iter().map(|&x| self.process_sample(x, dt)).collect()
    }

    /// Resets the internal state (previous output).
    pub fn reset(&mut self) {
        self.last_output = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::step;

    #[test]
    fn linear_region_applies_gain() {
        let mut a = Amplifier::new(5.0, 1e12, 10.0);
        let y = a.process(&[0.1, 0.2, -0.1], 1e6);
        assert!((y[0] - 0.5).abs() < 1e-12);
        assert!((y[1] - 1.0).abs() < 1e-12);
        assert!((y[2] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturation_clamps_output() {
        let mut a = Amplifier::new(100.0, 1e12, 2.0);
        let y = a.process(&[1.0, -1.0], 1e6);
        assert_eq!(y, vec![2.0, -2.0]);
    }

    #[test]
    fn slew_limits_step_response() {
        // 1 V/µs slew, 10 MHz sampling: 0.1 V per sample max.
        let mut a = Amplifier::new(1.0, 1e6, 10.0);
        let x = step(0.0, 1.0, 1, 20);
        let y = a.process(&x, 10e6);
        assert!((y[1] - 0.1).abs() < 1e-12);
        assert!((y[5] - 0.5).abs() < 1e-12);
        assert!((y[11] - 1.0).abs() < 1e-12); // settled
        assert!((y[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slew_is_symmetric_downward() {
        let mut a = Amplifier::new(1.0, 1e6, 10.0);
        let up = step(0.0, 1.0, 0, 15);
        a.process(&up, 10e6);
        let down = a.process(&[0.0; 15], 10e6);
        assert!((down[0] - 0.9).abs() < 1e-12);
        assert!(down[12].abs() < 1e-12);
    }

    #[test]
    fn cubic_nonlinearity_compresses_large_signals() {
        let mut ideal = Amplifier::new(1.0, 1e12, 10.0);
        let mut nonlin = Amplifier::new(1.0, 1e12, 10.0).with_cubic_nonlinearity(0.1);
        let yi = ideal.process_sample(1.0, 1e-6);
        let yn = nonlin.process_sample(1.0, 1e-6);
        assert!(yn < yi);
        assert!((yn - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = Amplifier::new(1.0, 1.0, 1.0);
        a.process_sample(1.0, 0.5);
        a.reset();
        // After reset the slew starts from zero again.
        let y = a.process_sample(1.0, 0.5);
        assert!((y - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slew rate")]
    fn non_positive_slew_panics() {
        Amplifier::new(1.0, 0.0, 1.0);
    }
}
