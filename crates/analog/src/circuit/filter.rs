//! Low-pass filter models.

use std::f64::consts::{PI, SQRT_2};

/// A second-order IIR section (Direct Form I) with Butterworth low-pass
/// design, modelling the paper's filter core.
///
/// # Examples
///
/// ```
/// use msoc_analog::circuit::Biquad;
/// let mut f = Biquad::butterworth_lowpass(60e3, 1.7e6);
/// // DC passes with unit gain.
/// assert!((f.magnitude_at(0.0) - 1.0).abs() < 1e-9);
/// // The -3 dB point sits at the design cutoff.
/// let g = f.magnitude_at(60e3);
/// assert!((g - 1.0 / 2f64.sqrt()).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    sample_rate_hz: f64,
    // Direct Form I state.
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Designs a 2nd-order Butterworth low-pass with cutoff `fc_hz` at
    /// sample rate `fs_hz` via the pre-warped bilinear transform.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc_hz < fs_hz / 2`.
    pub fn butterworth_lowpass(fc_hz: f64, fs_hz: f64) -> Self {
        assert!(
            fc_hz > 0.0 && fc_hz < fs_hz / 2.0,
            "cutoff {fc_hz} Hz must lie in (0, fs/2) for fs = {fs_hz} Hz"
        );
        // Pre-warp the analog cutoff, then bilinear-transform
        // H(s) = 1 / (s^2 + sqrt(2) s + 1).
        let k = (PI * fc_hz / fs_hz).tan();
        let k2 = k * k;
        let q = SQRT_2; // Butterworth: 1/Q = sqrt(2)
        let norm = 1.0 / (1.0 + q * k + k2);
        Biquad {
            b0: k2 * norm,
            b1: 2.0 * k2 * norm,
            b2: k2 * norm,
            a1: 2.0 * (k2 - 1.0) * norm,
            a2: (1.0 - q * k + k2) * norm,
            sample_rate_hz: fs_hz,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Sample rate the filter was designed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Processes one sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a slice, returning the filtered signal.
    ///
    /// Block-processed four samples at a time. The serial Direct Form I
    /// recurrence `y[n] = f[n] − a1·y[n−1] − a2·y[n−2]` (with `f` the
    /// feed-forward FIR part) caps throughput at one sample per
    /// multiply-add chain latency; unrolling it with the companion
    /// weights `u₀ = 1, u₁ = −a1, u_{k+1} = −a1·u_k − a2·u_{k−1}` gives
    ///
    /// ```text
    /// y[n+k] = Σ_{j=0..k} u_j·f[n+k−j] + u_{k+1}·y[n−1] − a2·u_k·y[n−2]
    /// ```
    ///
    /// so each 4-sample chunk is a handful of short independent dot
    /// products (instruction-level parallelism the serial chain cannot
    /// expose) and the loop-carried dependency shrinks to one
    /// chunk-to-chunk state handoff — the same trick as the Goertzel
    /// inner loop in `msoc_analog::dsp::goertzel`. For a stable filter
    /// the weights are bounded by the impulse response, so the chunked
    /// arithmetic is as well-conditioned as four serial steps; results
    /// agree with [`Self::process_scalar`] to floating-point rounding
    /// (differential-tested), not bit-for-bit.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        let mut out = input.to_vec();
        self.process_in_place(&mut out);
        out
    }

    /// Filters `buf` in place (input overwritten by output), four samples
    /// per chunk.
    ///
    /// This is the zero-allocation form of [`Self::process`]: the wrapped
    /// measurement chain filters a megabyte-class held waveform per call,
    /// and a second buffer per call costs more than the filter itself in
    /// a hot loop (large allocations round-trip through `mmap`). A
    /// two-sample carry preserves the input window across the in-place
    /// overwrite.
    pub fn process_in_place(&mut self, buf: &mut [f64]) {
        let n = buf.len();
        // Lead-in: the first two samples consume the carried x-state.
        let lead = n.min(2);
        for x in buf[..lead].iter_mut() {
            *x = self.process_sample(*x);
        }

        // 4-wide chunks: the feed-forward terms come straight off the
        // input window (independent, vectorizable) and the recurrence
        // advances through the companion weights.
        let a2 = self.a2;
        let u1 = -self.a1;
        let u2 = -self.a1 * u1 - a2;
        let u3 = -self.a1 * u2 - a2 * u1;
        let u4 = -self.a1 * u3 - a2 * u2;
        let (mut xm1, mut xm2) = (self.x1, self.x2);
        let (mut y1, mut y2) = (self.y1, self.y2);
        let mut i = lead;
        while i + 4 <= n {
            let [x0, x1, x2, x3] = [buf[i], buf[i + 1], buf[i + 2], buf[i + 3]];
            let f0 = self.b0 * x0 + self.b1 * xm1 + self.b2 * xm2;
            let f1 = self.b0 * x1 + self.b1 * x0 + self.b2 * xm1;
            let f2 = self.b0 * x2 + self.b1 * x1 + self.b2 * x0;
            let f3 = self.b0 * x3 + self.b1 * x2 + self.b2 * x1;
            let ya = f0 + (u1 * y1 - a2 * y2);
            let yb = (f1 + u1 * f0) + (u2 * y1 - a2 * (u1 * y2));
            let yc = (f2 + u1 * f1) + (u2 * f0 + u3 * y1) - a2 * (u2 * y2);
            let yd = (f3 + u1 * f2) + (u2 * f1 + u3 * f0) + (u4 * y1 - a2 * (u3 * y2));
            buf[i] = ya;
            buf[i + 1] = yb;
            buf[i + 2] = yc;
            buf[i + 3] = yd;
            xm2 = x2;
            xm1 = x3;
            y2 = yc;
            y1 = yd;
            i += 4;
        }

        // Commit the state the serial path would hold, then finish the
        // remainder serially.
        self.x1 = xm1;
        self.x2 = xm2;
        self.y1 = y1;
        self.y2 = y2;
        for x in buf[i..].iter_mut() {
            *x = self.process_sample(*x);
        }
    }

    /// The plain per-sample slice path, kept as the differential reference
    /// for the chunked [`Self::process`] (tests) and as the A/B baseline
    /// for the `dsp` benchmarks.
    #[doc(hidden)]
    pub fn process_scalar(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Analytic magnitude response `|H(e^{jω})|` at `freq_hz`.
    pub fn magnitude_at(&self, freq_hz: f64) -> f64 {
        let w = 2.0 * PI * freq_hz / self.sample_rate_hz;
        let (c1, s1) = (w.cos(), w.sin());
        let (c2, s2) = ((2.0 * w).cos(), (2.0 * w).sin());
        let num_re = self.b0 + self.b1 * c1 + self.b2 * c2;
        let num_im = -(self.b1 * s1 + self.b2 * s2);
        let den_re = 1.0 + self.a1 * c1 + self.a2 * c2;
        let den_im = -(self.a1 * s1 + self.a2 * s2);
        (num_re.hypot(num_im)) / (den_re.hypot(den_im))
    }
}

/// A first-order RC low-pass, for single-pole cores and comparison tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstOrderLowPass {
    alpha: f64,
    sample_rate_hz: f64,
    fc_hz: f64,
    state: f64,
}

impl FirstOrderLowPass {
    /// Designs a single-pole low-pass with cutoff `fc_hz` at `fs_hz`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc_hz < fs_hz / 2`.
    pub fn new(fc_hz: f64, fs_hz: f64) -> Self {
        assert!(fc_hz > 0.0 && fc_hz < fs_hz / 2.0, "cutoff must lie in (0, fs/2)");
        let k = (PI * fc_hz / fs_hz).tan();
        FirstOrderLowPass { alpha: k / (1.0 + k), sample_rate_hz: fs_hz, fc_hz, state: 0.0 }
    }

    /// The design cutoff in Hz.
    pub fn cutoff_hz(&self) -> f64 {
        self.fc_hz
    }

    /// Processes one sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        // Bilinear single pole: y[n] = y[n-1] + 2α/(1+... ) — implemented as
        // the standard leaky integrator matched at DC.
        self.state += 2.0 * self.alpha * (x - self.state) / (1.0 + self.alpha);
        self.state
    }

    /// Processes a slice.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Sample rate the filter was designed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::goertzel::tone_amplitude;
    use crate::signal::MultiTone;

    #[test]
    fn dc_gain_is_unity() {
        let mut f = Biquad::butterworth_lowpass(1000.0, 48_000.0);
        let y = f.process(&vec![1.0; 4000]);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cutoff_is_minus_3db() {
        let f = Biquad::butterworth_lowpass(60e3, 1.7e6);
        let g = f.magnitude_at(60e3);
        assert!((20.0 * g.log10() + 3.0103).abs() < 0.02, "gain at fc: {g}");
    }

    #[test]
    fn rolloff_is_40db_per_decade() {
        let f = Biquad::butterworth_lowpass(1e3, 10e6);
        let g10 = 20.0 * f.magnitude_at(10e3).log10();
        let g100 = 20.0 * f.magnitude_at(100e3).log10();
        let slope = g100 - g10;
        assert!((slope + 40.0).abs() < 1.5, "slope {slope} dB/decade");
    }

    #[test]
    fn time_domain_attenuation_matches_analytic_response() {
        let fs = 1.7e6;
        let mut f = Biquad::butterworth_lowpass(60e3, fs);
        let x = MultiTone::equal_amplitude(&[120e3], 1.0).generate(fs, 20_000);
        let y = f.process(&x);
        // Skip the transient.
        let measured = tone_amplitude(&y[2000..], fs, 120e3);
        let expected = f.magnitude_at(120e3);
        assert!((measured - expected).abs() / expected < 0.02);
    }

    #[test]
    fn chunked_process_matches_the_scalar_path() {
        // Pseudo-random signal, every remainder length, several designs —
        // the block recurrence must track the serial one to rounding.
        let x: Vec<f64> =
            (0..1031).map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5).collect();
        for (fc, fs) in [(61e3, 50e6), (1e3, 48e3), (60e3, 1.7e6), (11.9e3, 48e3)] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 1024, 1029, 1030, 1031] {
                let mut chunked = Biquad::butterworth_lowpass(fc, fs);
                let mut scalar = Biquad::butterworth_lowpass(fc, fs);
                let a = chunked.process(&x[..len]);
                let b = scalar.process_scalar(&x[..len]);
                for (i, (ya, yb)) in a.iter().zip(&b).enumerate() {
                    let scale = yb.abs().max(1.0);
                    assert!(
                        (ya - yb).abs() <= 1e-9 * scale,
                        "fc={fc} len={len} sample {i}: chunked {ya} vs scalar {yb}"
                    );
                }
                // The carried state must agree too: keep filtering.
                let a2 = chunked.process(&x[..len.min(16)]);
                let b2 = scalar.process_scalar(&x[..len.min(16)]);
                for (ya, yb) in a2.iter().zip(&b2) {
                    assert!((ya - yb).abs() <= 1e-9 * yb.abs().max(1.0), "state diverged");
                }
            }
        }
    }

    #[test]
    fn chunked_process_interleaves_with_process_sample() {
        // Mixing the APIs mid-stream must behave like one serial run.
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut mixed = Biquad::butterworth_lowpass(5e3, 100e3);
        let mut serial = Biquad::butterworth_lowpass(5e3, 100e3);
        let mut got = Vec::new();
        got.extend(mixed.process(&x[..33]));
        got.extend(x[33..50].iter().map(|&v| mixed.process_sample(v)));
        got.extend(mixed.process(&x[50..]));
        let want = serial.process_scalar(&x);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Biquad::butterworth_lowpass(1000.0, 48_000.0);
        f.process(&vec![1.0; 100]);
        f.reset();
        let y0 = f.process_sample(0.0);
        assert_eq!(y0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_above_nyquist_panics() {
        Biquad::butterworth_lowpass(30e3, 48e3);
    }

    #[test]
    fn first_order_dc_and_cutoff() {
        let fs = 1.0e6;
        let mut f = FirstOrderLowPass::new(10e3, fs);
        let dc = f.process(&vec![1.0; 5000]);
        assert!((dc.last().unwrap() - 1.0).abs() < 1e-6);

        let mut f = FirstOrderLowPass::new(10e3, fs);
        let x = MultiTone::equal_amplitude(&[10e3], 1.0).generate(fs, 40_000);
        let y = f.process(&x);
        let g = tone_amplitude(&y[4000..], fs, 10e3);
        assert!((20.0 * g.log10() + 3.0).abs() < 0.3, "gain at fc: {g}");
    }

    #[test]
    fn first_order_rolls_off_20db_per_decade() {
        let fs = 10e6;
        let fc = 5e3;
        let probe = |freq: f64| {
            let mut f = FirstOrderLowPass::new(fc, fs);
            let x = MultiTone::equal_amplitude(&[freq], 1.0).generate(fs, 200_000);
            let y = f.process(&x);
            20.0 * tone_amplitude(&y[20_000..], fs, freq).log10()
        };
        let slope = probe(500e3) - probe(50e3);
        assert!((slope + 20.0).abs() < 1.0, "slope {slope} dB/decade");
    }
}
