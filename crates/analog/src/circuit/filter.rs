//! Low-pass filter models.

use std::f64::consts::{PI, SQRT_2};

/// A second-order IIR section (Direct Form I) with Butterworth low-pass
/// design, modelling the paper's filter core.
///
/// # Examples
///
/// ```
/// use msoc_analog::circuit::Biquad;
/// let mut f = Biquad::butterworth_lowpass(60e3, 1.7e6);
/// // DC passes with unit gain.
/// assert!((f.magnitude_at(0.0) - 1.0).abs() < 1e-9);
/// // The -3 dB point sits at the design cutoff.
/// let g = f.magnitude_at(60e3);
/// assert!((g - 1.0 / 2f64.sqrt()).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    sample_rate_hz: f64,
    // Direct Form I state.
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Designs a 2nd-order Butterworth low-pass with cutoff `fc_hz` at
    /// sample rate `fs_hz` via the pre-warped bilinear transform.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc_hz < fs_hz / 2`.
    pub fn butterworth_lowpass(fc_hz: f64, fs_hz: f64) -> Self {
        assert!(
            fc_hz > 0.0 && fc_hz < fs_hz / 2.0,
            "cutoff {fc_hz} Hz must lie in (0, fs/2) for fs = {fs_hz} Hz"
        );
        // Pre-warp the analog cutoff, then bilinear-transform
        // H(s) = 1 / (s^2 + sqrt(2) s + 1).
        let k = (PI * fc_hz / fs_hz).tan();
        let k2 = k * k;
        let q = SQRT_2; // Butterworth: 1/Q = sqrt(2)
        let norm = 1.0 / (1.0 + q * k + k2);
        Biquad {
            b0: k2 * norm,
            b1: 2.0 * k2 * norm,
            b2: k2 * norm,
            a1: 2.0 * (k2 - 1.0) * norm,
            a2: (1.0 - q * k + k2) * norm,
            sample_rate_hz: fs_hz,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Sample rate the filter was designed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Processes one sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a slice, returning the filtered signal.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Analytic magnitude response `|H(e^{jω})|` at `freq_hz`.
    pub fn magnitude_at(&self, freq_hz: f64) -> f64 {
        let w = 2.0 * PI * freq_hz / self.sample_rate_hz;
        let (c1, s1) = (w.cos(), w.sin());
        let (c2, s2) = ((2.0 * w).cos(), (2.0 * w).sin());
        let num_re = self.b0 + self.b1 * c1 + self.b2 * c2;
        let num_im = -(self.b1 * s1 + self.b2 * s2);
        let den_re = 1.0 + self.a1 * c1 + self.a2 * c2;
        let den_im = -(self.a1 * s1 + self.a2 * s2);
        (num_re.hypot(num_im)) / (den_re.hypot(den_im))
    }
}

/// A first-order RC low-pass, for single-pole cores and comparison tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstOrderLowPass {
    alpha: f64,
    sample_rate_hz: f64,
    fc_hz: f64,
    state: f64,
}

impl FirstOrderLowPass {
    /// Designs a single-pole low-pass with cutoff `fc_hz` at `fs_hz`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fc_hz < fs_hz / 2`.
    pub fn new(fc_hz: f64, fs_hz: f64) -> Self {
        assert!(fc_hz > 0.0 && fc_hz < fs_hz / 2.0, "cutoff must lie in (0, fs/2)");
        let k = (PI * fc_hz / fs_hz).tan();
        FirstOrderLowPass { alpha: k / (1.0 + k), sample_rate_hz: fs_hz, fc_hz, state: 0.0 }
    }

    /// The design cutoff in Hz.
    pub fn cutoff_hz(&self) -> f64 {
        self.fc_hz
    }

    /// Processes one sample.
    pub fn process_sample(&mut self, x: f64) -> f64 {
        // Bilinear single pole: y[n] = y[n-1] + 2α/(1+... ) — implemented as
        // the standard leaky integrator matched at DC.
        self.state += 2.0 * self.alpha * (x - self.state) / (1.0 + self.alpha);
        self.state
    }

    /// Processes a slice.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Sample rate the filter was designed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::goertzel::tone_amplitude;
    use crate::signal::MultiTone;

    #[test]
    fn dc_gain_is_unity() {
        let mut f = Biquad::butterworth_lowpass(1000.0, 48_000.0);
        let y = f.process(&vec![1.0; 4000]);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cutoff_is_minus_3db() {
        let f = Biquad::butterworth_lowpass(60e3, 1.7e6);
        let g = f.magnitude_at(60e3);
        assert!((20.0 * g.log10() + 3.0103).abs() < 0.02, "gain at fc: {g}");
    }

    #[test]
    fn rolloff_is_40db_per_decade() {
        let f = Biquad::butterworth_lowpass(1e3, 10e6);
        let g10 = 20.0 * f.magnitude_at(10e3).log10();
        let g100 = 20.0 * f.magnitude_at(100e3).log10();
        let slope = g100 - g10;
        assert!((slope + 40.0).abs() < 1.5, "slope {slope} dB/decade");
    }

    #[test]
    fn time_domain_attenuation_matches_analytic_response() {
        let fs = 1.7e6;
        let mut f = Biquad::butterworth_lowpass(60e3, fs);
        let x = MultiTone::equal_amplitude(&[120e3], 1.0).generate(fs, 20_000);
        let y = f.process(&x);
        // Skip the transient.
        let measured = tone_amplitude(&y[2000..], fs, 120e3);
        let expected = f.magnitude_at(120e3);
        assert!((measured - expected).abs() / expected < 0.02);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = Biquad::butterworth_lowpass(1000.0, 48_000.0);
        f.process(&vec![1.0; 100]);
        f.reset();
        let y0 = f.process_sample(0.0);
        assert_eq!(y0, 0.0);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn cutoff_above_nyquist_panics() {
        Biquad::butterworth_lowpass(30e3, 48e3);
    }

    #[test]
    fn first_order_dc_and_cutoff() {
        let fs = 1.0e6;
        let mut f = FirstOrderLowPass::new(10e3, fs);
        let dc = f.process(&vec![1.0; 5000]);
        assert!((dc.last().unwrap() - 1.0).abs() < 1e-6);

        let mut f = FirstOrderLowPass::new(10e3, fs);
        let x = MultiTone::equal_amplitude(&[10e3], 1.0).generate(fs, 40_000);
        let y = f.process(&x);
        let g = tone_amplitude(&y[4000..], fs, 10e3);
        assert!((20.0 * g.log10() + 3.0).abs() < 0.3, "gain at fc: {g}");
    }

    #[test]
    fn first_order_rolls_off_20db_per_decade() {
        let fs = 10e6;
        let fc = 5e3;
        let probe = |freq: f64| {
            let mut f = FirstOrderLowPass::new(fc, fs);
            let x = MultiTone::equal_amplitude(&[freq], 1.0).generate(fs, 200_000);
            let y = f.process(&x);
            20.0 * tone_amplitude(&y[20_000..], fs, freq).log10()
        };
        let slope = probe(500e3) - probe(50e3);
        assert!((slope + 20.0).abs() < 1.0, "slope {slope} dB/decade");
    }
}
