//! Analog behavioral substrate for mixed-signal SOC test planning.
//!
//! The reproduced paper (Sehgal et al., DATE 2005) validates its analog test
//! wrappers with HSPICE transistor-level simulation of a wrapped low-pass
//! filter core (its Section 5 / Figure 5). This crate provides the behavioral
//! equivalent, built from scratch:
//!
//! * [`dsp`] — complex FFT, Goertzel single-bin DFT, window functions and
//!   spectra,
//! * [`signal`] — multitone/two-tone test stimulus generators,
//! * [`circuit`] — behavioral circuit models: biquad filters, amplifiers
//!   with slew-rate limiting and saturation, down-conversion mixers,
//! * [`converter`] — data-converter models, including the paper's *modular*
//!   8-bit pipelined ADC (two 4-bit flash stages around a 4-bit DAC) and
//!   modular voltage-steering DAC (Fig. 4), with hardware-cost accounting,
//! * [`measure`] — the specification measurements of the paper's Table 2:
//!   pass-band gain, cutoff frequency, attenuation, THD, IIP3, DC offset,
//!   phase mismatch, gain, dynamic range and slew rate,
//! * [`cores`] — the five analog cores of Table 2 with their full test sets.
//!
//! # Examples
//!
//! Extract a filter's cutoff frequency from a three-tone test, as the
//! paper's Figure 5 experiment does:
//!
//! ```
//! use msoc_analog::circuit::Biquad;
//! use msoc_analog::measure::{extract_cutoff, tone_gain};
//! use msoc_analog::signal::MultiTone;
//!
//! let fs = 1.7e6;
//! let tones = [20e3, 50e3, 80e3];
//! let stimulus = MultiTone::equal_amplitude(&tones, 0.3).generate(fs, 4551);
//! let mut filter = Biquad::butterworth_lowpass(60e3, fs);
//! let response = filter.process(&stimulus);
//!
//! let gains: Vec<(f64, f64)> = tones
//!     .iter()
//!     .map(|&f| (f, tone_gain(&stimulus, &response, fs, f)))
//!     .collect();
//! let fc = extract_cutoff(&gains, 2).unwrap();
//! assert!((fc - 60e3).abs() / 60e3 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod circuit;
pub mod converter;
pub mod cores;
pub mod dsp;
pub mod measure;
pub mod signal;

pub use cores::{paper_cores, AnalogCoreSpec, AnalogTestKind, AnalogTestSpec, CoreId};
