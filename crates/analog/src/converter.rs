//! Data-converter models.
//!
//! Section 5 of the paper builds its analog test wrapper around an 8-bit
//! DAC–ADC pair with *modular* architectures (its Figure 4): the ADC is a
//! two-stage pipeline of 4-bit flash converters around a 4-bit DAC (32
//! comparators instead of the 255 a monolithic 8-bit flash would need), and
//! the DAC combines two 4-bit voltage-steering sub-DACs (an 8× reduction in
//! resistor count). This module models those architectures behaviorally and
//! accounts for their hardware cost, so the paper's area argument can be
//! regenerated (`fig4` bench).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hardware cost of a converter in primitive components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HardwareCost {
    /// Number of comparators (the dominant ADC area term).
    pub comparators: u32,
    /// Number of resistors in ladders / steering networks.
    pub resistors: u32,
}

impl HardwareCost {
    /// Component-wise sum.
    pub fn plus(self, other: HardwareCost) -> HardwareCost {
        HardwareCost {
            comparators: self.comparators + other.comparators,
            resistors: self.resistors + other.resistors,
        }
    }
}

/// Clamp-and-round quantization shared by every ADC model.
fn quantize(v: f64, bits: u8, v_min: f64, v_max: f64) -> u16 {
    let levels = (1u32 << bits) - 1;
    let x = ((v - v_min) / (v_max - v_min)).clamp(0.0, 1.0);
    (x * f64::from(levels)).round() as u16
}

/// Code-to-voltage conversion shared by every DAC model.
fn unquantize(code: u16, bits: u8, v_min: f64, v_max: f64) -> f64 {
    let levels = (1u32 << bits) - 1;
    v_min + (v_max - v_min) * f64::from(code.min(levels as u16)) / f64::from(levels)
}

/// An ideal flash ADC of `bits` resolution over `[v_min, v_max]`.
///
/// A flash converter needs `2^bits − 1` comparators and `2^bits` ladder
/// resistors — the baseline the modular pipeline improves on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashAdc {
    bits: u8,
    v_min: f64,
    v_max: f64,
}

impl FlashAdc {
    /// Creates a flash ADC.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16` and `v_min < v_max`.
    pub fn new(bits: u8, v_min: f64, v_max: f64) -> Self {
        assert!((1..=16).contains(&bits), "resolution must be 1..=16 bits");
        assert!(v_min < v_max, "voltage range must be non-empty");
        FlashAdc { bits, v_min, v_max }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Converts a voltage to a code in `0..2^bits`.
    pub fn convert(&self, v: f64) -> u16 {
        quantize(v, self.bits, self.v_min, self.v_max)
    }

    /// One least-significant-bit step in volts.
    pub fn lsb(&self) -> f64 {
        (self.v_max - self.v_min) / f64::from((1u32 << self.bits) - 1)
    }

    /// Hardware cost: `2^bits − 1` comparators, `2^bits` ladder resistors.
    pub fn hardware_cost(&self) -> HardwareCost {
        HardwareCost { comparators: (1u32 << self.bits) - 1, resistors: 1u32 << self.bits }
    }
}

/// An ideal voltage-steering DAC of `bits` resolution over `[v_min, v_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSteeringDac {
    bits: u8,
    v_min: f64,
    v_max: f64,
}

impl VoltageSteeringDac {
    /// Creates a DAC.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16` and `v_min < v_max`.
    pub fn new(bits: u8, v_min: f64, v_max: f64) -> Self {
        assert!((1..=16).contains(&bits), "resolution must be 1..=16 bits");
        assert!(v_min < v_max, "voltage range must be non-empty");
        VoltageSteeringDac { bits, v_min, v_max }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Converts a code in `0..2^bits` to a voltage (codes clamp).
    pub fn convert(&self, code: u16) -> f64 {
        unquantize(code, self.bits, self.v_min, self.v_max)
    }

    /// Hardware cost: a monolithic steering network needs `2^bits` resistors.
    pub fn hardware_cost(&self) -> HardwareCost {
        HardwareCost { comparators: 0, resistors: 1u32 << self.bits }
    }
}

/// The paper's modular pipelined ADC (Fig. 4a): a coarse `bits/2` flash
/// stage, a reconstruction DAC, residue amplification by `2^(bits/2)`, and
/// a fine `bits/2` flash stage.
///
/// With ideal sub-blocks the pipeline is code-identical to a monolithic
/// flash of the same resolution, while using an order of magnitude fewer
/// comparators (e.g. 30 + a 16-resistor DAC instead of 255 for 8 bits).
///
/// # Examples
///
/// ```
/// use msoc_analog::converter::{FlashAdc, PipelinedAdc};
/// let flash = FlashAdc::new(8, 0.0, 4.0);
/// let pipe = PipelinedAdc::new(8, 0.0, 4.0);
/// for code in [0u16, 1, 127, 128, 254, 255] {
///     let v = 4.0 * f64::from(code) / 255.0;
///     assert_eq!(pipe.convert(v), flash.convert(v));
/// }
/// assert!(pipe.hardware_cost().comparators < flash.hardware_cost().comparators / 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinedAdc {
    bits: u8,
    v_min: f64,
    v_max: f64,
    coarse: FlashAdc,
    dac: VoltageSteeringDac,
    fine: FlashAdc,
    /// Deterministic comparator threshold offsets of the coarse stage, in
    /// LSB of the *full* resolution (failure-injection hook; empty = ideal).
    coarse_offsets: Vec<f64>,
}

impl PipelinedAdc {
    /// Creates an ideal pipelined ADC.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is even, `2 <= bits <= 16`, and `v_min < v_max`.
    pub fn new(bits: u8, v_min: f64, v_max: f64) -> Self {
        assert!((2..=16).contains(&bits) && bits % 2 == 0, "bits must be even and 2..=16");
        assert!(v_min < v_max, "voltage range must be non-empty");
        let half = bits / 2;
        PipelinedAdc {
            bits,
            v_min,
            v_max,
            coarse: FlashAdc::new(half, v_min, v_max),
            dac: VoltageSteeringDac::new(half, v_min, v_max),
            fine: FlashAdc::new(half, v_min, v_max),
            coarse_offsets: Vec::new(),
        }
    }

    /// Injects random comparator offsets (standard deviation `sigma_lsb`
    /// full-resolution LSBs) into the coarse stage, seeded for
    /// reproducibility. Models the INL/DNL the paper's self-test mode would
    /// screen for.
    pub fn with_comparator_offsets(mut self, sigma_lsb: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (1usize << (self.bits / 2)) - 1;
        self.coarse_offsets = (0..n)
            .map(|_| {
                // Sum of uniforms ≈ Gaussian; adequate for offset injection.
                let u: f64 = (0..12).map(|_| rng.gen_range(-0.5..0.5)).sum();
                u * sigma_lsb
            })
            .collect();
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale LSB step in volts.
    pub fn lsb(&self) -> f64 {
        (self.v_max - self.v_min) / f64::from((1u32 << self.bits) - 1)
    }

    /// Converts a voltage to a code in `0..2^bits` through the two-stage
    /// pipeline.
    pub fn convert(&self, v: f64) -> u16 {
        let half = self.bits / 2;
        let radix = 1u16 << half;
        let span = self.v_max - self.v_min;

        // Coarse stage. The comparator thresholds sit half a full-scale LSB
        // below each radix boundary so that the ideal pipeline reproduces a
        // rounding flash quantizer exactly.
        let x = ((v - self.v_min) / span).clamp(0.0, 1.0);
        let scaled = x * f64::from((1u32 << self.bits) - 1);
        let mut msb = if self.coarse_offsets.is_empty() {
            ((scaled + 0.5) / f64::from(radix)).floor() as i32
        } else {
            // Re-derive the coarse decision from offset comparator
            // thresholds: threshold i sits at (i+1)·radix − ½ LSB + offset_i.
            let mut decision = 0;
            for (i, off) in self.coarse_offsets.iter().enumerate() {
                let threshold = f64::from((i as u16 + 1) * radix) - 0.5 + off;
                if scaled >= threshold {
                    decision = i as i32 + 1;
                }
            }
            decision
        };
        msb = msb.clamp(0, i32::from(radix) - 1);
        let msb = msb as u16;

        // Reconstruction + residue amplification by `radix`.
        let v1 = f64::from(msb * radix); // in full-scale LSB units
        let residue = scaled - v1;
        // With offset comparators the residue can leave the fine stage's
        // range; the clamp models the resulting (real) missing codes.
        let lsb_code = residue.round().clamp(0.0, f64::from(radix - 1)) as u16;

        msb * radix + lsb_code
    }

    /// Hardware cost: two half-resolution flash stages plus the
    /// reconstruction DAC.
    pub fn hardware_cost(&self) -> HardwareCost {
        self.coarse.hardware_cost().plus(self.fine.hardware_cost()).plus(self.dac.hardware_cost())
    }
}

/// The paper's modular DAC (Fig. 4b): an MSB sub-DAC plus an LSB sub-DAC
/// attenuated by `2^(bits/2)`, summed.
///
/// Code-identical to a monolithic DAC of the same resolution, with
/// `2·2^(bits/2)` resistors instead of `2^bits` (an 8× reduction at 8 bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModularDac {
    bits: u8,
    v_min: f64,
    v_max: f64,
}

impl ModularDac {
    /// Creates a modular DAC.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is even, `2 <= bits <= 16`, and `v_min < v_max`.
    pub fn new(bits: u8, v_min: f64, v_max: f64) -> Self {
        assert!((2..=16).contains(&bits) && bits % 2 == 0, "bits must be even and 2..=16");
        assert!(v_min < v_max, "voltage range must be non-empty");
        ModularDac { bits, v_min, v_max }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Converts a code to a voltage via the MSB/LSB sub-DAC decomposition.
    pub fn convert(&self, code: u16) -> f64 {
        let half = self.bits / 2;
        let radix = 1u16 << half;
        let levels = f64::from((1u32 << self.bits) - 1);
        let code = code.min(((1u32 << self.bits) - 1) as u16);
        let msb = code / radix;
        let lsb = code % radix;
        let span = self.v_max - self.v_min;
        // V = span · (msb·radix + lsb) / levels — the LSB sub-DAC output is
        // attenuated by 1/radix relative to the MSB sub-DAC.
        self.v_min + span * (f64::from(msb) * f64::from(radix) + f64::from(lsb)) / levels
    }

    /// Hardware cost: two half-resolution steering networks.
    pub fn hardware_cost(&self) -> HardwareCost {
        HardwareCost { comparators: 0, resistors: 2 * (1u32 << (self.bits / 2)) }
    }
}

/// A modular DAC with voltage-steering element mismatch.
///
/// Each unit element of the MSB and LSB sub-DACs deviates from nominal by
/// a Gaussian-distributed relative error of standard deviation
/// `sigma_rel`, producing integral nonlinearity (INL). The transfer curve
/// is endpoint-corrected (gain and offset errors removed), so
/// [`inl_lsb`](Self::inl_lsb) is zero at both ends — the convention used
/// when characterizing production DACs.
///
/// # Examples
///
/// ```
/// use msoc_analog::converter::MismatchedDac;
/// let dac = MismatchedDac::new(8, 0.0, 4.0, 0.01, 7);
/// assert!(dac.max_inl_lsb() > 0.0);
/// // Endpoints are exact after correction.
/// assert!((dac.convert(0) - 0.0).abs() < 1e-12);
/// assert!((dac.convert(255) - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchedDac {
    bits: u8,
    v_min: f64,
    v_max: f64,
    lut: Vec<f64>,
}

impl MismatchedDac {
    /// Creates a mismatched modular DAC with element errors of relative
    /// standard deviation `sigma_rel`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is even, `2 <= bits <= 16`, and `v_min < v_max`.
    pub fn new(bits: u8, v_min: f64, v_max: f64, sigma_rel: f64, seed: u64) -> Self {
        assert!((2..=16).contains(&bits) && bits % 2 == 0, "bits must be even and 2..=16");
        assert!(v_min < v_max, "voltage range must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let half = bits / 2;
        let radix = 1usize << half;
        let mut gauss = move || -> f64 {
            let u: f64 = (0..12).map(|_| rng.gen_range(-0.5..0.5)).sum();
            u * sigma_rel
        };
        let msb_steps: Vec<f64> = (0..radix - 1).map(|_| 1.0 + gauss()).collect();
        let lsb_steps: Vec<f64> = (0..radix - 1).map(|_| 1.0 + gauss()).collect();

        // Cumulative raw transfer in (mismatched) LSB units, then
        // endpoint correction onto the nominal span.
        let levels = (1usize << bits) - 1;
        let cum = |steps: &[f64], k: usize| -> f64 { steps[..k].iter().sum() };
        let raw = |code: usize| -> f64 {
            let msb = code / radix;
            let lsb = code % radix;
            cum(&msb_steps, msb) * radix as f64 + cum(&lsb_steps, lsb)
        };
        let full = raw(levels);
        let span = v_max - v_min;
        let lut: Vec<f64> = (0..=levels).map(|code| v_min + span * raw(code) / full).collect();
        MismatchedDac { bits, v_min, v_max, lut }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Converts a code to a voltage through the mismatched transfer curve.
    pub fn convert(&self, code: u16) -> f64 {
        let max = self.lut.len() - 1;
        self.lut[usize::from(code).min(max)]
    }

    /// Integral nonlinearity per code, in LSB.
    pub fn inl_lsb(&self) -> Vec<f64> {
        let levels = self.lut.len() - 1;
        let lsb = (self.v_max - self.v_min) / levels as f64;
        self.lut
            .iter()
            .enumerate()
            .map(|(code, &v)| (v - (self.v_min + lsb * code as f64)) / lsb)
            .collect()
    }

    /// Maximum absolute INL over all codes, in LSB.
    pub fn max_inl_lsb(&self) -> f64 {
        self.inl_lsb().into_iter().map(f64::abs).fold(0.0, f64::max)
    }
}

/// A zero-order-hold sampler: holds each input sample for
/// `hold_ratio` output samples, modelling a DAC output observed at a
/// faster system clock.
pub fn zero_order_hold(samples: &[f64], hold_ratio: usize) -> Vec<f64> {
    assert!(hold_ratio > 0, "hold ratio must be at least 1");
    let mut out = Vec::with_capacity(samples.len() * hold_ratio);
    for &s in samples {
        out.extend(std::iter::repeat_n(s, hold_ratio));
    }
    out
}

/// Downsamples by an integer factor (take every `factor`-th sample),
/// modelling an ADC clocked slower than the system clock.
pub fn decimate(samples: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be at least 1");
    samples.iter().step_by(factor).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const VMIN: f64 = 0.0;
    const VMAX: f64 = 4.0;

    #[test]
    fn flash_quantizes_endpoints_and_clamps() {
        let adc = FlashAdc::new(8, VMIN, VMAX);
        assert_eq!(adc.convert(-1.0), 0);
        assert_eq!(adc.convert(0.0), 0);
        assert_eq!(adc.convert(4.0), 255);
        assert_eq!(adc.convert(9.0), 255);
    }

    #[test]
    fn dac_adc_roundtrip_is_exact_on_codes() {
        let adc = FlashAdc::new(8, VMIN, VMAX);
        let dac = VoltageSteeringDac::new(8, VMIN, VMAX);
        for code in 0..=255u16 {
            assert_eq!(adc.convert(dac.convert(code)), code);
        }
    }

    #[test]
    fn quantization_error_is_within_half_lsb() {
        let adc = FlashAdc::new(8, VMIN, VMAX);
        let dac = VoltageSteeringDac::new(8, VMIN, VMAX);
        for i in 0..1000 {
            let v = VMIN + (VMAX - VMIN) * f64::from(i) / 1000.0;
            let err = (dac.convert(adc.convert(v)) - v).abs();
            assert!(err <= adc.lsb() / 2.0 + 1e-12, "v={v}: err {err}");
        }
    }

    #[test]
    fn pipeline_matches_flash_everywhere() {
        let flash = FlashAdc::new(8, VMIN, VMAX);
        let pipe = PipelinedAdc::new(8, VMIN, VMAX);
        for i in 0..=4000 {
            let v = VMIN - 0.1 + 4.2 * f64::from(i) / 4000.0;
            assert_eq!(pipe.convert(v), flash.convert(v), "v={v}");
        }
    }

    #[test]
    fn modular_dac_matches_monolithic_everywhere() {
        let mono = VoltageSteeringDac::new(8, VMIN, VMAX);
        let modular = ModularDac::new(8, VMIN, VMAX);
        for code in 0..=255u16 {
            assert!((mono.convert(code) - modular.convert(code)).abs() < 1e-12);
        }
    }

    #[test]
    fn fig4_hardware_savings() {
        // The paper: an 8-bit flash needs 2^8 comparators-ish (255); the
        // modular approach needs only 32-ish; resistors drop by 8x.
        let flash = FlashAdc::new(8, VMIN, VMAX);
        let pipe = PipelinedAdc::new(8, VMIN, VMAX);
        assert_eq!(flash.hardware_cost().comparators, 255);
        assert_eq!(pipe.hardware_cost().comparators, 30);
        let mono_dac = VoltageSteeringDac::new(8, VMIN, VMAX);
        let mod_dac = ModularDac::new(8, VMIN, VMAX);
        assert_eq!(mono_dac.hardware_cost().resistors / mod_dac.hardware_cost().resistors, 8);
    }

    #[test]
    fn comparator_offsets_perturb_but_small_offsets_are_harmless() {
        let ideal = PipelinedAdc::new(8, VMIN, VMAX);
        let tiny = PipelinedAdc::new(8, VMIN, VMAX).with_comparator_offsets(1e-6, 1);
        let gross = PipelinedAdc::new(8, VMIN, VMAX).with_comparator_offsets(8.0, 1);
        let mut diffs = 0u32;
        // 1999 is prime, so no sweep point lands exactly on a half-LSB
        // comparator threshold (where an infinitesimal offset legitimately
        // flips the decision).
        for i in 0..=1999 {
            let v = VMIN + (VMAX - VMIN) * f64::from(i) / 1999.0;
            assert_eq!(tiny.convert(v), ideal.convert(v));
            if gross.convert(v) != ideal.convert(v) {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "gross offsets must disturb some codes");
    }

    #[test]
    fn offsets_are_seed_deterministic() {
        let a = PipelinedAdc::new(8, VMIN, VMAX).with_comparator_offsets(0.5, 42);
        let b = PipelinedAdc::new(8, VMIN, VMAX).with_comparator_offsets(0.5, 42);
        for i in 0..500 {
            let v = VMIN + (VMAX - VMIN) * f64::from(i) / 500.0;
            assert_eq!(a.convert(v), b.convert(v));
        }
    }

    #[test]
    fn mismatched_dac_with_zero_sigma_is_ideal() {
        let ideal = ModularDac::new(8, VMIN, VMAX);
        let matched = MismatchedDac::new(8, VMIN, VMAX, 0.0, 1);
        for code in 0..=255u16 {
            assert!((ideal.convert(code) - matched.convert(code)).abs() < 1e-12);
        }
        assert!(matched.max_inl_lsb() < 1e-9);
    }

    #[test]
    fn mismatched_dac_is_monotone_in_inl_and_seed_deterministic() {
        let small = MismatchedDac::new(8, VMIN, VMAX, 0.005, 3);
        let large = MismatchedDac::new(8, VMIN, VMAX, 0.05, 3);
        assert!(large.max_inl_lsb() > small.max_inl_lsb());
        let twin = MismatchedDac::new(8, VMIN, VMAX, 0.05, 3);
        assert_eq!(large, twin);
    }

    #[test]
    fn mismatched_dac_endpoints_are_corrected() {
        let dac = MismatchedDac::new(8, -1.0, 3.0, 0.03, 9);
        assert!((dac.convert(0) + 1.0).abs() < 1e-12);
        assert!((dac.convert(255) - 3.0).abs() < 1e-12);
        let inl = dac.inl_lsb();
        assert!(inl[0].abs() < 1e-9 && inl[255].abs() < 1e-9);
    }

    #[test]
    fn mismatched_dac_transfer_stays_monotonic_for_small_sigma() {
        // 1% element mismatch cannot reorder adjacent codes of a
        // voltage-steering ladder.
        let dac = MismatchedDac::new(8, VMIN, VMAX, 0.01, 5);
        for code in 0..255u16 {
            assert!(dac.convert(code + 1) > dac.convert(code), "non-monotone at {code}");
        }
    }

    #[test]
    fn hold_and_decimate_are_inverse_at_matching_ratios() {
        let x = vec![0.1, 0.5, -0.3];
        let held = zero_order_hold(&x, 4);
        assert_eq!(held.len(), 12);
        assert_eq!(decimate(&held, 4), x);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_pipeline_resolution_panics() {
        PipelinedAdc::new(7, VMIN, VMAX);
    }

    #[test]
    fn lsb_is_span_over_levels() {
        let adc = FlashAdc::new(8, 0.0, 2.55);
        assert!((adc.lsb() - 0.01).abs() < 1e-12);
    }
}
