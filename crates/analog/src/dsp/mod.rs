//! Signal-processing primitives: complex numbers, FFT, Goertzel, windows
//! and magnitude spectra.
//!
//! Everything here is implemented from scratch; the workspace has no DSP
//! dependency. The FFT is an iterative radix-2 Cooley–Tukey transform; the
//! [`goertzel`](goertzel::goertzel) single-bin DFT serves the measurement
//! routines, which probe known tone frequencies that rarely fall on FFT
//! bins.

mod complex;
mod fft;
pub mod goertzel;
mod spectrum;
mod window;

pub use complex::Complex;
#[doc(hidden)]
pub use fft::fft_scalar;
pub use fft::{fft, ifft, is_power_of_two, next_power_of_two};
pub use spectrum::{amplitude_spectrum, magnitude_db, Spectrum};
pub use window::Window;
