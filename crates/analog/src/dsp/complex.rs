//! A minimal complex-number type for the FFT and measurement code.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use msoc_analog::dsp::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates `re + im·j`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` radians.
    pub fn from_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -4.0);
        let b = Complex::new(-1.0, 2.0);
        assert_eq!(a + b, Complex::new(2.0, -2.0));
        assert_eq!(a - b, Complex::new(4.0, -6.0));
        assert_eq!(a * Complex::from_real(1.0), a);
        assert_eq!(-a, Complex::new(-3.0, 4.0));
        assert_eq!(a.conj().im, 4.0);
    }

    #[test]
    fn magnitude_and_phase() {
        let a = Complex::new(3.0, 4.0);
        assert!((a.abs() - 5.0).abs() < 1e-12);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
        let unit = Complex::from_angle(std::f64::consts::FRAC_PI_3);
        assert!((unit.abs() - 1.0).abs() < 1e-12);
        assert!((unit.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn scale_is_real_multiplication() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(a.scale(2.0), Complex::new(3.0, -5.0));
    }
}
