//! One-sided amplitude spectra of real signals.

use super::complex::Complex;
use super::fft::{fft, next_power_of_two};
use super::window::Window;

/// A one-sided amplitude spectrum of a real signal.
///
/// Produced by [`amplitude_spectrum`]; bin `k` corresponds to frequency
/// `k · sample_rate / n_fft` and holds the estimated tone amplitude at that
/// frequency (window coherent gain already divided out).
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    sample_rate_hz: f64,
    n_fft: usize,
    amplitudes: Vec<f64>,
}

impl Spectrum {
    /// Frequency resolution: spacing between bins in Hz.
    pub fn bin_width_hz(&self) -> f64 {
        self.sample_rate_hz / self.n_fft as f64
    }

    /// Frequency of bin `k` in Hz.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.bin_width_hz()
    }

    /// The amplitude estimates, one per bin from DC to Nyquist.
    pub fn amplitudes(&self) -> &[f64] {
        &self.amplitudes
    }

    /// Amplitude at the bin nearest `freq_hz`.
    pub fn amplitude_near(&self, freq_hz: f64) -> f64 {
        let k = (freq_hz / self.bin_width_hz()).round() as usize;
        self.amplitudes.get(k).copied().unwrap_or(0.0)
    }

    /// `(frequency, amplitude)` of the largest non-DC bin.
    pub fn dominant_tone(&self) -> (f64, f64) {
        let (k, &a) = self
            .amplitudes
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap_or((0, &0.0));
        (self.bin_frequency(k), a)
    }

    /// Iterates over `(frequency_hz, amplitude)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.amplitudes.iter().enumerate().map(|(k, &a)| (self.bin_frequency(k), a))
    }
}

/// Computes a one-sided amplitude spectrum of `samples`.
///
/// The signal is windowed, zero-padded to the next power of two and
/// transformed; amplitudes are normalized so a full-scale tone on a bin
/// reads its time-domain amplitude.
///
/// # Panics
///
/// Panics if `samples` is empty or `sample_rate_hz <= 0`.
pub fn amplitude_spectrum(samples: &[f64], sample_rate_hz: f64, window: Window) -> Spectrum {
    assert!(!samples.is_empty(), "spectrum of an empty signal");
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let n = samples.len();
    let n_fft = next_power_of_two(n);

    let mut windowed = samples.to_vec();
    let coherent_gain = window.apply(&mut windowed);

    let mut buf: Vec<Complex> = windowed
        .into_iter()
        .map(Complex::from_real)
        .chain(std::iter::repeat(Complex::ZERO))
        .take(n_fft)
        .collect();
    fft(&mut buf);

    let half = n_fft / 2 + 1;
    let scale = 1.0 / (n as f64 * coherent_gain);
    let amplitudes: Vec<f64> = buf[..half]
        .iter()
        .enumerate()
        .map(|(k, v)| {
            let one_sided = if k == 0 || k == n_fft / 2 { 1.0 } else { 2.0 };
            v.abs() * one_sided * scale
        })
        .collect();

    Spectrum { sample_rate_hz, n_fft, amplitudes }
}

/// Converts an amplitude (ratio) to decibels, flooring at −200 dB.
pub fn magnitude_db(amplitude: f64) -> f64 {
    if amplitude <= 0.0 {
        -200.0
    } else {
        (20.0 * amplitude.log10()).max(-200.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(fs: f64, f: f64, amp: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| amp * (2.0 * PI * f * i as f64 / fs).cos()).collect()
    }

    #[test]
    fn bin_exact_tone_amplitude_rectangular() {
        let fs = 1024.0;
        let x = tone(fs, 64.0, 0.8, 1024);
        let s = amplitude_spectrum(&x, fs, Window::Rectangular);
        assert!((s.amplitude_near(64.0) - 0.8).abs() < 1e-9);
        let (f, a) = s.dominant_tone();
        assert_eq!(f, 64.0);
        assert!((a - 0.8).abs() < 1e-9);
    }

    #[test]
    fn hann_window_recovers_amplitude_within_scalloping() {
        let fs = 1.7e6;
        let x = tone(fs, 50e3, 0.5, 4551);
        let s = amplitude_spectrum(&x, fs, Window::Hann);
        let a = s.amplitude_near(50e3);
        // Hann scalloping loss is at most ~1.42 dB (factor 0.85).
        assert!(a > 0.4 && a < 0.55, "got {a}");
    }

    #[test]
    fn dc_appears_in_bin_zero() {
        let x = vec![0.3; 256];
        let s = amplitude_spectrum(&x, 1000.0, Window::Rectangular);
        assert!((s.amplitudes()[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn bin_geometry_is_consistent() {
        let x = vec![0.0; 1000]; // padded to 1024
        let s = amplitude_spectrum(&x, 2048.0, Window::Hann);
        assert_eq!(s.amplitudes().len(), 513);
        assert!((s.bin_width_hz() - 2.0).abs() < 1e-12);
        assert!((s.bin_frequency(10) - 20.0).abs() < 1e-12);
        assert_eq!(s.iter().count(), 513);
    }

    #[test]
    fn db_conversion_floors() {
        assert_eq!(magnitude_db(0.0), -200.0);
        assert!((magnitude_db(1.0) - 0.0).abs() < 1e-12);
        assert!((magnitude_db(10.0) - 20.0).abs() < 1e-12);
    }
}
