//! Goertzel single-bin DFT.
//!
//! The measurement routines probe signal content at *known* tone
//! frequencies (the stimulus frequencies of Table 2), which generally do not
//! fall on FFT bins. The Goertzel algorithm evaluates the DFT at an
//! arbitrary normalized frequency in O(N) with excellent numerical
//! behaviour, so it is the workhorse of [`crate::measure`].

use super::complex::Complex;

/// Complex DFT coefficient of `samples` at frequency `freq_hz`, normalized
/// so that a unit-amplitude cosine at `freq_hz` yields magnitude ≈ 1.
///
/// `sample_rate_hz` must be positive and `freq_hz` in `[0, sample_rate/2]`
/// for a meaningful result.
///
/// # Panics
///
/// Panics if `samples` is empty or `sample_rate_hz <= 0`.
///
/// # Examples
///
/// ```
/// use msoc_analog::dsp::goertzel::goertzel;
/// let fs = 1000.0;
/// let x: Vec<f64> = (0..1000)
///     .map(|n| 0.7 * (2.0 * std::f64::consts::PI * 50.0 * n as f64 / fs).cos())
///     .collect();
/// let mag = goertzel(&x, fs, 50.0).abs();
/// assert!((mag - 0.7).abs() < 1e-9);
/// ```
pub fn goertzel(samples: &[f64], sample_rate_hz: f64, freq_hz: f64) -> Complex {
    assert!(!samples.is_empty(), "goertzel needs at least one sample");
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    let n = samples.len();
    let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let (s_prev, s_prev2) = goertzel_state(samples, coeff);
    // Non-integer-bin finalization, phase-aligned to the first sample:
    // a cosine of amplitude A contributes N·A/2 at its own frequency.
    let y = Complex::new(s_prev - s_prev2 * omega.cos(), s_prev2 * omega.sin());
    let result = y * Complex::from_angle(-(omega * (n as f64 - 1.0)));
    let scale = if freq_hz == 0.0 || (freq_hz - sample_rate_hz / 2.0).abs() < f64::EPSILON {
        1.0 / n as f64
    } else {
        2.0 / n as f64
    };
    result.scale(scale)
}

/// The Goertzel state `(s[n-1], s[n-2])` after feeding every sample through
/// the resonator `s[k] = x[k] + coeff·s[k-1] − s[k-2]`.
///
/// The serial form is a 2-term linear recurrence whose ~5-cycle
/// multiply-add dependency chain caps throughput at one sample per chain
/// latency. This implementation advances the state four samples at a time
/// instead: unrolling the recurrence gives
///
/// ```text
/// s[k] = Σ_{j=0..k} u_j·x[k−j] + u_{k+1}·s[-1] − u_k·s[-2]
/// ```
///
/// with Chebyshev-like weights `u_0 = 1, u_1 = coeff,
/// u_{k+1} = coeff·u_k − u_{k−1}` (precomputed once per call), so each
/// 4-sample chunk needs two short independent dot products — instruction-
/// level parallelism the serial chain cannot expose — and the loop-carried
/// dependency shrinks to one chunk-to-chunk state handoff. The weights are
/// bounded (`|u_k| ≤ k+1` for `|coeff| ≤ 2`), so the chunked arithmetic is
/// as well-conditioned as four serial steps.
fn goertzel_state(samples: &[f64], coeff: f64) -> (f64, f64) {
    let u2 = coeff * coeff - 1.0;
    let u3 = coeff * u2 - coeff;
    let u4 = coeff * u3 - u2;

    let (mut s_prev, mut s_prev2) = (0.0f64, 0.0f64);
    let mut chunks = samples.chunks_exact(4);
    for chunk in &mut chunks {
        let [x0, x1, x2, x3] = [chunk[0], chunk[1], chunk[2], chunk[3]];
        let s2 = (x2 + coeff * x1) + (u2 * x0 + u3 * s_prev) - u2 * s_prev2;
        let s3 = (x3 + coeff * x2) + (u2 * x1 + u3 * x0) + (u4 * s_prev - u3 * s_prev2);
        s_prev2 = s2;
        s_prev = s3;
    }
    for &x in chunks.remainder() {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    (s_prev, s_prev2)
}

/// The plain serial resonator, kept as the differential reference for the
/// chunked [`goertzel_state`] (tests) and as the A/B baseline for the
/// `dsp` benchmarks.
#[doc(hidden)]
pub fn goertzel_state_scalar(samples: &[f64], coeff: f64) -> (f64, f64) {
    let (mut s_prev, mut s_prev2) = (0.0f64, 0.0f64);
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    (s_prev, s_prev2)
}

/// Magnitude of the Goertzel coefficient — the amplitude of the tone at
/// `freq_hz` contained in `samples`.
pub fn tone_amplitude(samples: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    goertzel(samples, sample_rate_hz, freq_hz).abs()
}

/// Phase (radians) of the tone at `freq_hz`, relative to a cosine starting
/// at the first sample.
pub fn tone_phase(samples: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    goertzel(samples, sample_rate_hz, freq_hz).arg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn cosine(fs: f64, f: f64, amp: f64, phase: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| amp * (2.0 * PI * f * i as f64 / fs + phase).cos()).collect()
    }

    #[test]
    fn amplitude_of_integer_bin_tone() {
        let x = cosine(1024.0, 64.0, 1.3, 0.0, 1024);
        assert!((tone_amplitude(&x, 1024.0, 64.0) - 1.3).abs() < 1e-9);
    }

    #[test]
    fn amplitude_of_non_integer_bin_tone() {
        // 50.37 Hz over 4551 samples at 1.7 kHz: nowhere near a bin.
        let x = cosine(1700.0, 50.37, 0.42, 0.9, 4551);
        let a = tone_amplitude(&x, 1700.0, 50.37);
        assert!((a - 0.42).abs() < 0.42 * 0.01, "got {a}");
    }

    #[test]
    fn phase_is_recovered() {
        for phase in [-1.0, 0.0, 0.5, 1.2] {
            let x = cosine(1000.0, 100.0, 1.0, phase, 1000);
            let p = tone_phase(&x, 1000.0, 100.0);
            assert!((p - phase).abs() < 1e-6, "phase {phase}: got {p}");
        }
    }

    #[test]
    fn rejects_other_frequencies() {
        let x = cosine(1000.0, 100.0, 1.0, 0.0, 1000);
        assert!(tone_amplitude(&x, 1000.0, 250.0) < 1e-9);
    }

    #[test]
    fn dc_measured_with_unity_scale() {
        let x = vec![0.25; 500];
        assert!((tone_amplitude(&x, 1000.0, 0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn two_tones_are_separable() {
        let fs = 8000.0;
        let n = 8000;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.5 * (2.0 * PI * 440.0 * t).cos() + 0.2 * (2.0 * PI * 1000.0 * t).cos()
            })
            .collect();
        assert!((tone_amplitude(&x, fs, 440.0) - 0.5).abs() < 1e-6);
        assert!((tone_amplitude(&x, fs, 1000.0) - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_input_panics() {
        goertzel(&[], 1.0, 0.0);
    }

    #[test]
    fn chunked_state_matches_the_serial_resonator() {
        // Pseudo-random signal, every remainder length, several coeffs.
        let x: Vec<f64> =
            (0..1027).map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5).collect();
        for len in [1usize, 2, 3, 4, 5, 7, 8, 64, 1023, 1024, 1025, 1026, 1027] {
            for coeff in [-1.9, -0.3, 0.0, 0.7, 1.2, 1.999] {
                let (p, q) = goertzel_state(&x[..len], coeff);
                let (rp, rq) = goertzel_state_scalar(&x[..len], coeff);
                let scale = rp.abs().max(rq.abs()).max(1.0);
                assert!(
                    (p - rp).abs() <= 1e-9 * scale && (q - rq).abs() <= 1e-9 * scale,
                    "len={len} coeff={coeff}: chunked ({p}, {q}) vs serial ({rp}, {rq})"
                );
            }
        }
    }
}
