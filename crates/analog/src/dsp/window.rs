//! Window functions for spectral analysis.

/// A window function applied before an FFT to control spectral leakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No window (all ones). Best amplitude accuracy for bin-exact tones.
    Rectangular,
    /// Hann window: good general-purpose leakage suppression.
    #[default]
    Hann,
    /// Blackman window: stronger sidelobe suppression, wider main lobe.
    Blackman,
}

impl Window {
    /// Window coefficient at index `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(i < n, "window index {i} out of range {n}");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Applies the window in place and returns the *coherent gain* (mean
    /// coefficient), which callers divide out to restore tone amplitudes.
    pub fn apply(self, samples: &mut [f64]) -> f64 {
        let n = samples.len();
        if n == 0 {
            return 1.0;
        }
        let mut sum = 0.0;
        for (i, s) in samples.iter_mut().enumerate() {
            let c = self.coefficient(i, n);
            *s *= c;
            sum += c;
        }
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_unity() {
        let mut x = vec![2.0; 10];
        let gain = Window::Rectangular.apply(&mut x);
        assert_eq!(gain, 1.0);
        assert!(x.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let n = 101;
        assert!(Window::Hann.coefficient(0, n).abs() < 1e-12);
        assert!(Window::Hann.coefficient(n - 1, n).abs() < 1e-12);
        assert!((Window::Hann.coefficient(50, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        let mut x = vec![1.0; 4096];
        let gain = Window::Hann.apply(&mut x);
        assert!((gain - 0.5).abs() < 1e-3);
    }

    #[test]
    fn blackman_is_nonnegative_and_symmetric() {
        let n = 64;
        for i in 0..n {
            let c = Window::Blackman.coefficient(i, n);
            assert!(c >= -1e-12);
            let mirror = Window::Blackman.coefficient(n - 1 - i, n);
            assert!((c - mirror).abs() < 1e-12);
        }
    }

    #[test]
    fn single_point_window_is_one() {
        for w in [Window::Rectangular, Window::Hann, Window::Blackman] {
            assert_eq!(w.coefficient(0, 1), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        Window::Hann.coefficient(5, 5);
    }
}
