//! Iterative radix-2 Cooley–Tukey FFT.

use super::complex::Complex;

/// Whether `n` is a nonzero power of two.
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n` (and `≥ 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-j2πkn/N}` without normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT, normalized by `1/N` so that `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::from_real(1.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b:?}, got {a:?} (tol {tol})");
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1) && is_power_of_two(1024));
        assert!(!is_power_of_two(0) && !is_power_of_two(12));
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1000), 1024);
        assert_eq!(next_power_of_two(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        fft(&mut [Complex::ZERO; 12]);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::from_real(1.0);
        fft(&mut x);
        for v in x {
            assert_close(v, Complex::from_real(1.0), 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_bin_zero() {
        let mut x = vec![Complex::from_real(2.0); 16];
        fft(&mut x);
        assert_close(x[0], Complex::from_real(32.0), 1e-9);
        for v in &x[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::from_real((2.0 * std::f64::consts::PI * k as f64 * t).cos())
            })
            .collect();
        fft(&mut x);
        // cos -> N/2 in bins k and N-k.
        assert!((x[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((x[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, v) in x.iter().enumerate() {
            if i != k && i != n - k {
                assert!(v.abs() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> =
            (0..128).map(|i| Complex::from_real(((i * i) as f64 * 0.01).sin())).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![Complex::new(3.0, 4.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 4.0));
    }
}
