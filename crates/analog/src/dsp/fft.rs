//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The butterfly stages use the same explicit 4-wide chunk trick as the
//! Goertzel inner loop and the fig5 biquad: the textbook loop advances one
//! running twiddle `w *= wlen` per butterfly — a serial multiply chain
//! whose latency caps throughput — while [`transform`] keeps **four
//! independent twiddle chains** (`w, w·wlen, w·wlen², w·wlen³`, each
//! advanced by `wlen⁴`) and executes four data-independent butterflies per
//! iteration. The chains shrink the loop-carried dependency to one complex
//! multiply per *four* butterflies and expose the add/sub arithmetic as
//! independent work the CPU can overlap. Each chain also performs 4× fewer
//! recurrence multiplies, so twiddle rounding drift is no worse than the
//! serial form (differential-tested against [`fft_scalar`]).

use super::complex::Complex;

/// Whether `n` is a nonzero power of two.
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Smallest power of two `≥ n` (and `≥ 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-j2πkn/N}` without normalization.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT, normalized by `1/N` so that `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(1.0 / n);
    }
}

/// In-place forward FFT through the serial one-twiddle-chain butterflies.
///
/// The differential reference and A/B baseline for the 4-wide chunked
/// [`fft`] hot path (see the `dsp/fft_butterfly` bench); not part of the
/// public API surface.
#[doc(hidden)]
pub fn fft_scalar(data: &mut [Complex]) {
    transform_scalar(data, false);
}

/// Bit-reversal permutation shared by both butterfly paths.
fn bit_reverse(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// The textbook butterfly stages: one running twiddle, one serial
/// multiply per butterfly.
fn transform_scalar(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    bit_reverse(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::from_real(1.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    bit_reverse(data);

    // Butterflies, 4-wide chunked (see the module docs). `half` is a
    // power of two, so stages with `half >= 4` split into whole chunks
    // with no remainder; the two smallest stages run serially.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let half = len / 2;
        if half >= 4 {
            let wlen2 = wlen * wlen;
            let wlen4 = wlen2 * wlen2;
            for chunk in data.chunks_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                // Four independent twiddle chains, each stepped by wlen⁴.
                let mut w0 = Complex::from_real(1.0);
                let mut w1 = wlen;
                let mut w2 = wlen2;
                let mut w3 = wlen2 * wlen;
                for k in (0..half).step_by(4) {
                    let (u0, v0) = (lo[k], hi[k] * w0);
                    let (u1, v1) = (lo[k + 1], hi[k + 1] * w1);
                    let (u2, v2) = (lo[k + 2], hi[k + 2] * w2);
                    let (u3, v3) = (lo[k + 3], hi[k + 3] * w3);
                    lo[k] = u0 + v0;
                    hi[k] = u0 - v0;
                    lo[k + 1] = u1 + v1;
                    hi[k + 1] = u1 - v1;
                    lo[k + 2] = u2 + v2;
                    hi[k + 2] = u2 - v2;
                    lo[k + 3] = u3 + v3;
                    hi[k + 3] = u3 - v3;
                    w0 = w0 * wlen4;
                    w1 = w1 * wlen4;
                    w2 = w2 * wlen4;
                    w3 = w3 * wlen4;
                }
            }
        } else {
            for chunk in data.chunks_mut(len) {
                let mut w = Complex::from_real(1.0);
                for k in 0..half {
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                    w = w * wlen;
                }
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b:?}, got {a:?} (tol {tol})");
    }

    #[test]
    fn power_of_two_helpers() {
        assert!(is_power_of_two(1) && is_power_of_two(1024));
        assert!(!is_power_of_two(0) && !is_power_of_two(12));
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1000), 1024);
        assert_eq!(next_power_of_two(1024), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        fft(&mut [Complex::ZERO; 12]);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::from_real(1.0);
        fft(&mut x);
        for v in x {
            assert_close(v, Complex::from_real(1.0), 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_bin_zero() {
        let mut x = vec![Complex::from_real(2.0); 16];
        fft(&mut x);
        assert_close(x[0], Complex::from_real(32.0), 1e-9);
        for v in &x[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::from_real((2.0 * std::f64::consts::PI * k as f64 * t).cos())
            })
            .collect();
        fft(&mut x);
        // cos -> N/2 in bins k and N-k.
        assert!((x[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((x[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, v) in x.iter().enumerate() {
            if i != k && i != n - k {
                assert!(v.abs() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> =
            (0..128).map(|i| Complex::from_real(((i * i) as f64 * 0.01).sin())).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let mut x = vec![Complex::new(3.0, 4.0)];
        fft(&mut x);
        assert_eq!(x[0], Complex::new(3.0, 4.0));
    }

    #[test]
    fn chunked_butterflies_match_the_scalar_reference() {
        // Pseudo-random complex data at every stage-mix size: lengths
        // where only the serial small stages run (2, 4), the first
        // chunked stage (8), and deep mixes (up to 2048). The chunked
        // twiddle chains perform *fewer* recurrence multiplies than the
        // serial chain, so agreement must be at rounding-noise level.
        for log2n in 1..=11usize {
            let n = 1 << log2n;
            let x: Vec<Complex> = (0..n)
                .map(|i| {
                    let a = ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                    let b = ((i as f64 * 78.233).sin() * 12543.8567).fract() - 0.5;
                    Complex::new(a, b)
                })
                .collect();
            let mut chunked = x.clone();
            let mut scalar = x.clone();
            fft(&mut chunked);
            fft_scalar(&mut scalar);
            let scale: f64 = scalar.iter().map(|v| v.abs()).fold(1.0, f64::max);
            for (i, (c, s)) in chunked.iter().zip(&scalar).enumerate() {
                assert!(
                    (*c - *s).abs() <= 1e-12 * scale,
                    "n={n} bin {i}: chunked {c:?} vs scalar {s:?}"
                );
            }
        }
    }
}
