//! Static converter characterization: INL, DNL and missing codes.
//!
//! The paper's wrapper has a *self-test* mode in which the DAC drives the
//! ADC directly so the converter pair can be screened before it is trusted
//! to test analog cores; efficient converter BIST is listed as future
//! work. This module provides the measurement half of that BIST: code
//! transition levels are located with a fine voltage ramp, and the
//! integral/differential nonlinearity profiles are derived from them, the
//! way a production linearity test (e.g. the paper's references [16–18])
//! would.

/// Static linearity profile of an ADC.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcLinearity {
    /// Differential nonlinearity per code transition, in LSB.
    pub dnl_lsb: Vec<f64>,
    /// Integral nonlinearity per code transition, in LSB
    /// (endpoint-corrected).
    pub inl_lsb: Vec<f64>,
    /// Codes that never appeared in the ramp sweep.
    pub missing_codes: Vec<u16>,
}

impl AdcLinearity {
    /// Largest absolute DNL, in LSB.
    pub fn max_dnl(&self) -> f64 {
        self.dnl_lsb.iter().copied().map(f64::abs).fold(0.0, f64::max)
    }

    /// Largest absolute INL, in LSB.
    pub fn max_inl(&self) -> f64 {
        self.inl_lsb.iter().copied().map(f64::abs).fold(0.0, f64::max)
    }

    /// Whether the converter meets a typical ±0.5 LSB DNL / ±1 LSB INL
    /// specification with no missing codes.
    pub fn passes(&self, dnl_limit: f64, inl_limit: f64) -> bool {
        self.missing_codes.is_empty() && self.max_dnl() <= dnl_limit && self.max_inl() <= inl_limit
    }
}

/// Characterizes an ADC (any voltage→code function) of `bits` resolution
/// over `[v_min, v_max]` with a linear ramp of `steps_per_lsb` points per
/// nominal LSB.
///
/// Transition level `T(k)` is the lowest ramp voltage producing a code
/// `≥ k`. DNL(k) = (T(k+1) − T(k))/LSB − 1; INL is the running sum of
/// DNL, endpoint-corrected.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 16, `v_min >= v_max`, or
/// `steps_per_lsb == 0`.
pub fn characterize_adc<F>(
    convert: F,
    bits: u8,
    v_min: f64,
    v_max: f64,
    steps_per_lsb: u32,
) -> AdcLinearity
where
    F: Fn(f64) -> u16,
{
    assert!((1..=16).contains(&bits), "resolution must be 1..=16 bits");
    assert!(v_min < v_max, "voltage range must be non-empty");
    assert!(steps_per_lsb > 0, "need at least one ramp step per LSB");

    let levels = (1u32 << bits) - 1;
    let lsb = (v_max - v_min) / f64::from(levels);
    let total_steps = (u64::from(levels) + 2) * u64::from(steps_per_lsb);

    // Ramp sweep: first voltage at which each code is reached.
    let mut first_seen: Vec<Option<f64>> = vec![None; levels as usize + 1];
    let mut seen_any = vec![false; levels as usize + 1];
    for i in 0..=total_steps {
        let v = v_min - lsb + (v_max - v_min + 2.0 * lsb) * i as f64 / total_steps as f64;
        let code = convert(v).min(levels as u16);
        seen_any[usize::from(code)] = true;
        let slot = &mut first_seen[usize::from(code)];
        if slot.is_none() {
            *slot = Some(v);
        }
    }

    let missing_codes: Vec<u16> =
        (0..=levels as u16).filter(|&c| !seen_any[usize::from(c)]).collect();

    // Transition level T(k): first voltage yielding code >= k. When a
    // code is missing, reuse the next code's first voltage.
    let mut transitions: Vec<f64> = Vec::with_capacity(levels as usize);
    let mut next_known = v_max + lsb;
    let mut t_rev: Vec<f64> = Vec::with_capacity(levels as usize);
    for k in (1..=levels as usize).rev() {
        if let Some(v) = first_seen[k] {
            next_known = next_known.min(v);
        }
        t_rev.push(next_known);
    }
    transitions.extend(t_rev.into_iter().rev());

    // DNL from adjacent transitions; INL as endpoint-corrected cumulative.
    let n_t = transitions.len();
    let mut dnl = Vec::with_capacity(n_t.saturating_sub(1));
    for pair in transitions.windows(2) {
        dnl.push((pair[1] - pair[0]) / lsb - 1.0);
    }
    let first_t = *transitions.first().unwrap_or(&v_min);
    let last_t = *transitions.last().unwrap_or(&v_max);
    let actual_step = if n_t > 1 { (last_t - first_t) / (n_t as f64 - 1.0) } else { lsb };
    let inl: Vec<f64> = transitions
        .iter()
        .enumerate()
        .map(|(i, &t)| (t - first_t - actual_step * i as f64) / lsb)
        .collect();

    AdcLinearity { dnl_lsb: dnl, inl_lsb: inl, missing_codes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::converter::{FlashAdc, PipelinedAdc};

    #[test]
    fn ideal_flash_is_linear() {
        let adc = FlashAdc::new(8, 0.0, 4.0);
        let lin = characterize_adc(|v| adc.convert(v), 8, 0.0, 4.0, 8);
        assert!(lin.missing_codes.is_empty());
        assert!(lin.max_dnl() < 0.2, "DNL {}", lin.max_dnl());
        assert!(lin.max_inl() < 0.2, "INL {}", lin.max_inl());
        assert!(lin.passes(0.5, 1.0));
    }

    #[test]
    fn ideal_pipeline_is_linear() {
        let adc = PipelinedAdc::new(8, 0.0, 4.0);
        let lin = characterize_adc(|v| adc.convert(v), 8, 0.0, 4.0, 8);
        assert!(lin.passes(0.5, 1.0));
    }

    #[test]
    fn offset_pipeline_fails_linearity() {
        let adc = PipelinedAdc::new(8, 0.0, 4.0).with_comparator_offsets(8.0, 11);
        let lin = characterize_adc(|v| adc.convert(v), 8, 0.0, 4.0, 8);
        assert!(
            !lin.passes(0.5, 1.0),
            "gross offsets must fail: DNL {} INL {} missing {}",
            lin.max_dnl(),
            lin.max_inl(),
            lin.missing_codes.len()
        );
    }

    #[test]
    fn missing_codes_are_reported() {
        // A quantizer that skips code 5 entirely.
        let lin = characterize_adc(
            |v| {
                let c = (v.clamp(0.0, 1.0) * 15.0).round() as u16;
                if c == 5 {
                    6
                } else {
                    c
                }
            },
            4,
            0.0,
            1.0,
            16,
        );
        assert_eq!(lin.missing_codes, vec![5]);
        assert!(!lin.passes(0.5, 1.0));
        // The gap shows up as a DNL excursion near the missing code.
        assert!(lin.max_dnl() > 0.8);
    }

    #[test]
    fn dnl_profile_lengths_are_consistent() {
        let adc = FlashAdc::new(6, -1.0, 1.0);
        let lin = characterize_adc(|v| adc.convert(v), 6, -1.0, 1.0, 4);
        assert_eq!(lin.inl_lsb.len(), 63);
        assert_eq!(lin.dnl_lsb.len(), 62);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_bits_panics() {
        characterize_adc(|_| 0, 0, 0.0, 1.0, 4);
    }
}
