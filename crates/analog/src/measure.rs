//! Specification measurements.
//!
//! One routine per test kind of the paper's Table 2. All routines work on
//! sampled waveforms, so the same code measures a directly simulated core
//! and a core observed through the analog test wrapper's converters — the
//! comparison at the heart of the paper's Figure 5.

use crate::dsp::goertzel::{goertzel, tone_amplitude};

/// Ratio of output to input tone amplitude at `freq_hz` (linear gain).
///
/// # Panics
///
/// Panics if either signal is empty or the input tone amplitude is zero.
pub fn tone_gain(input: &[f64], output: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    let a_in = tone_amplitude(input, sample_rate_hz, freq_hz);
    let a_out = tone_amplitude(output, sample_rate_hz, freq_hz);
    assert!(a_in > 0.0, "input contains no tone at {freq_hz} Hz");
    a_out / a_in
}

/// Gain of a *frequency-translating* device: output tone amplitude at
/// `f_out_hz` over input tone amplitude at `f_in_hz` (e.g. a mixer's
/// conversion gain, where the output appears at the difference frequency).
///
/// # Panics
///
/// Panics if either signal is empty or the input tone amplitude is zero.
pub fn tone_amplitude_ratio(
    input: &[f64],
    output: &[f64],
    sample_rate_hz: f64,
    f_in_hz: f64,
    f_out_hz: f64,
) -> f64 {
    let a_in = tone_amplitude(input, sample_rate_hz, f_in_hz);
    assert!(a_in > 0.0, "input contains no tone at {f_in_hz} Hz");
    tone_amplitude(output, sample_rate_hz, f_out_hz) / a_in
}

/// Pass-band gain in dB measured with a single in-band tone.
pub fn passband_gain_db(input: &[f64], output: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    20.0 * tone_gain(input, output, sample_rate_hz, freq_hz).log10()
}

/// Attenuation in dB at `freq_hz` relative to the pass-band gain.
pub fn attenuation_db(
    input: &[f64],
    output: &[f64],
    sample_rate_hz: f64,
    passband_hz: f64,
    stopband_hz: f64,
) -> f64 {
    let g_pass = tone_gain(input, output, sample_rate_hz, passband_hz);
    let g_stop = tone_gain(input, output, sample_rate_hz, stopband_hz);
    20.0 * (g_pass / g_stop).log10()
}

/// Extracts the −3 dB cutoff frequency of an `order`-pole Butterworth
/// response from `(frequency, gain)` measurements.
///
/// The routine jointly fits the pass-band gain `g₀` and the cutoff `f_c` of
/// the Butterworth magnitude model `|H(f)| = g₀ / √(1 + (f/f_c)^(2·order))`
/// to the measured tone gains: for a trial `f_c` the optimal `g₀` has a
/// closed form, and the residual is minimized over `f_c` by golden-section
/// search on a log-frequency axis. With measurements that follow the model
/// exactly, the fit recovers `f_c` to search precision.
///
/// Returns `None` when the measurements cannot identify a cutoff: fewer
/// than two usable tones, or all tones equally attenuated (a flat
/// response).
///
/// # Panics
///
/// Panics if `order == 0`.
///
/// # Examples
///
/// ```
/// use msoc_analog::measure::extract_cutoff;
/// // Ideal 2nd-order Butterworth with fc = 60 kHz.
/// let h = |f: f64| (1.0 / (1.0 + (f / 60e3_f64).powi(4))).sqrt();
/// let gains: Vec<(f64, f64)> =
///     [20e3, 50e3, 80e3].iter().map(|&f| (f, h(f))).collect();
/// let fc = extract_cutoff(&gains, 2).unwrap();
/// assert!((fc - 60e3).abs() < 1.0);
/// ```
pub fn extract_cutoff(gains: &[(f64, f64)], order: u32) -> Option<f64> {
    assert!(order >= 1, "filter order must be at least 1");
    let points: Vec<(f64, f64)> =
        gains.iter().copied().filter(|&(f, g)| f > 0.0 && g > 0.0).collect();
    if points.len() < 2 {
        return None;
    }
    let g_max = points.iter().map(|&(_, g)| g).fold(0.0, f64::max);
    let g_min = points.iter().map(|&(_, g)| g).fold(f64::INFINITY, f64::min);
    if g_min / g_max >= 0.99 {
        return None; // flat response: fc is unidentifiable
    }

    let two_n = f64::from(2 * order);
    // Residual sum of squares at trial cutoff, with g0 optimized out.
    let sse = |ln_fc: f64| -> f64 {
        let fc = ln_fc.exp();
        let mut gh = 0.0;
        let mut hh = 0.0;
        for &(f, g) in &points {
            let h = 1.0 / (1.0 + (f / fc).powf(two_n)).sqrt();
            gh += g * h;
            hh += h * h;
        }
        let g0 = gh / hh;
        points
            .iter()
            .map(|&(f, g)| {
                let h = g0 / (1.0 + (f / fc).powf(two_n)).sqrt();
                (g - h) * (g - h)
            })
            .sum()
    };

    // Golden-section search over a generous log-frequency bracket.
    let f_lo = points.iter().map(|&(f, _)| f).fold(f64::INFINITY, f64::min);
    let f_hi = points.iter().map(|&(f, _)| f).fold(0.0, f64::max);
    let (mut a, mut b) = ((f_lo / 30.0).ln(), (f_hi * 30.0).ln());
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut c, mut d) = (b - phi * (b - a), a + phi * (b - a));
    let (mut fc_, mut fd) = (sse(c), sse(d));
    for _ in 0..200 {
        if fc_ < fd {
            b = d;
            d = c;
            fd = fc_;
            c = b - phi * (b - a);
            fc_ = sse(c);
        } else {
            a = c;
            c = d;
            fc_ = fd;
            d = a + phi * (b - a);
            fd = sse(d);
        }
    }
    Some(((a + b) / 2.0).exp())
}

/// Total harmonic distortion: the power ratio of harmonics 2..=`harmonics`
/// to the fundamental at `f0_hz`, as a linear ratio (multiply by 100 for
/// percent).
///
/// # Panics
///
/// Panics if the fundamental amplitude is zero.
pub fn thd(signal: &[f64], sample_rate_hz: f64, f0_hz: f64, harmonics: u32) -> f64 {
    let fund = tone_amplitude(signal, sample_rate_hz, f0_hz);
    assert!(fund > 0.0, "no fundamental at {f0_hz} Hz");
    let nyquist = sample_rate_hz / 2.0;
    let mut harm_power = 0.0;
    for k in 2..=harmonics {
        let f = f0_hz * f64::from(k);
        if f >= nyquist {
            break;
        }
        let a = tone_amplitude(signal, sample_rate_hz, f);
        harm_power += a * a;
    }
    harm_power.sqrt() / fund
}

/// DC offset: the mean of the signal.
pub fn dc_offset(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    signal.iter().sum::<f64>() / signal.len() as f64
}

/// Third-order input intercept point from a two-tone test, in dBV.
///
/// With input tones of amplitude `a_in` at `f1 < f2`, the intermodulation
/// products appear at `2f1 − f2` and `2f2 − f1`. The intercept follows from
/// `IIP3 = P_in + ΔP/2` with `ΔP` the fundamental-to-IM3 ratio in dB.
///
/// Returns `f64::INFINITY` for a perfectly linear device (no measurable
/// IM3).
pub fn iip3_dbv(
    output: &[f64],
    sample_rate_hz: f64,
    f1_hz: f64,
    f2_hz: f64,
    input_amplitude: f64,
) -> f64 {
    let fund = tone_amplitude(output, sample_rate_hz, f1_hz).max(tone_amplitude(
        output,
        sample_rate_hz,
        f2_hz,
    ));
    let im3 = tone_amplitude(output, sample_rate_hz, 2.0 * f1_hz - f2_hz).max(tone_amplitude(
        output,
        sample_rate_hz,
        2.0 * f2_hz - f1_hz,
    ));
    if im3 <= 0.0 || fund <= 0.0 {
        return f64::INFINITY;
    }
    let p_in_dbv = 20.0 * input_amplitude.log10();
    let delta_db = 20.0 * (fund / im3).log10();
    p_in_dbv + delta_db / 2.0
}

/// Phase mismatch between the I and Q channels at `freq_hz`, in degrees,
/// relative to the ideal 90° quadrature.
pub fn phase_mismatch_deg(
    i_channel: &[f64],
    q_channel: &[f64],
    sample_rate_hz: f64,
    freq_hz: f64,
) -> f64 {
    let pi = goertzel(i_channel, sample_rate_hz, freq_hz).arg();
    let pq = goertzel(q_channel, sample_rate_hz, freq_hz).arg();
    let mut delta = (pq - pi).to_degrees();
    // Wrap into (-180, 180].
    while delta <= -180.0 {
        delta += 360.0;
    }
    while delta > 180.0 {
        delta -= 360.0;
    }
    delta.abs() - 90.0
}

/// Maximum observed slew rate `|dv/dt|` in volts/second.
///
/// # Panics
///
/// Panics if fewer than two samples are supplied or `sample_rate_hz <= 0`.
pub fn slew_rate(signal: &[f64], sample_rate_hz: f64) -> f64 {
    assert!(signal.len() >= 2, "slew rate needs at least two samples");
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    signal.windows(2).map(|w| (w[1] - w[0]).abs() * sample_rate_hz).fold(0.0, f64::max)
}

/// Dynamic range in dB: full-scale tone amplitude over the noise floor.
///
/// The noise floor is the RMS of the residual after removing the tone at
/// `freq_hz` and the DC component.
pub fn dynamic_range_db(signal: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    let coeff = goertzel(signal, sample_rate_hz, freq_hz);
    let amp = coeff.abs();
    let phase = coeff.arg();
    let dc = dc_offset(signal);
    let n = signal.len();
    let mut noise_power = 0.0;
    for (i, &x) in signal.iter().enumerate() {
        let t = i as f64 / sample_rate_hz;
        let tone = amp * (2.0 * std::f64::consts::PI * freq_hz * t + phase).cos();
        let r = x - tone - dc;
        noise_power += r * r;
    }
    let noise_rms = (noise_power / n as f64).sqrt();
    if noise_rms <= 0.0 {
        return f64::INFINITY;
    }
    20.0 * (amp / std::f64::consts::SQRT_2 / noise_rms).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Amplifier, Biquad};
    use crate::signal::{add_noise, step, MultiTone};
    use std::f64::consts::PI;

    const FS: f64 = 1.7e6;

    #[test]
    fn tone_gain_of_attenuating_filter() {
        let mut f = Biquad::butterworth_lowpass(60e3, FS);
        let x = MultiTone::equal_amplitude(&[120e3], 1.0).generate(FS, 30_000);
        let y = f.process(&x);
        let g = tone_gain(&x[4000..], &y[4000..], FS, 120e3);
        assert!((g - f.magnitude_at(120e3)).abs() < 0.01);
    }

    #[test]
    fn passband_gain_of_unity_filter_is_zero_db() {
        let mut f = Biquad::butterworth_lowpass(500e3, FS);
        let x = MultiTone::equal_amplitude(&[5e3], 0.5).generate(FS, 30_000);
        let y = f.process(&x);
        let g = passband_gain_db(&x[4000..], &y[4000..], FS, 5e3);
        assert!(g.abs() < 0.05, "gain {g} dB");
    }

    #[test]
    fn attenuation_matches_analytic_rolloff() {
        let f = Biquad::butterworth_lowpass(60e3, FS);
        let mut filt = f.clone();
        let x = MultiTone::equal_amplitude(&[10e3, 240e3], 0.4).generate(FS, 60_000);
        let y = filt.process(&x);
        let a = attenuation_db(&x[8000..], &y[8000..], FS, 10e3, 240e3);
        let expected = 20.0 * (f.magnitude_at(10e3) / f.magnitude_at(240e3)).log10();
        assert!((a - expected).abs() < 0.2, "attenuation {a} vs {expected}");
    }

    #[test]
    fn cutoff_extraction_on_measured_filter() {
        let mut f = Biquad::butterworth_lowpass(61e3, FS);
        let tones = [20e3, 50e3, 80e3];
        let x = MultiTone::equal_amplitude(&tones, 0.3).generate(FS, 4551);
        let y = f.process(&x);
        let gains: Vec<(f64, f64)> = tones.iter().map(|&t| (t, tone_gain(&x, &y, FS, t))).collect();
        let fc = extract_cutoff(&gains, 2).expect("attenuated tones present");
        assert!((fc - 61e3).abs() / 61e3 < 0.05, "fc {fc}");
    }

    #[test]
    fn cutoff_extraction_returns_none_for_flat_response() {
        let gains = vec![(1e3, 1.0), (2e3, 1.0)];
        assert_eq!(extract_cutoff(&gains, 2), None);
    }

    #[test]
    fn thd_of_pure_tone_is_negligible_and_distortion_is_detected() {
        // Coherent sampling: 30.75 kHz is exactly 1000 cycles in 80 000
        // samples at 2.46 MHz, so leakage does not mask the measurement.
        let fs = 2.46e6;
        let f0 = 30.75e3;
        let x = MultiTone::equal_amplitude(&[f0], 1.0).generate(fs, 80_000);
        assert!(thd(&x, fs, f0, 5) < 1e-9);

        // y = x + 0.01 x^2 produces a second harmonic of amplitude ~0.005.
        let y: Vec<f64> = x.iter().map(|&v| v + 0.01 * v * v).collect();
        let d = thd(&y, fs, f0, 5);
        assert!((d - 0.005).abs() < 5e-4, "thd {d}");
    }

    #[test]
    fn amplitude_ratio_tracks_frequency_translation() {
        use crate::circuit::Mixer;
        let fs = 78e6;
        let rf = MultiTone::equal_amplitude(&[27e6], 0.5).generate(fs, 40_000);
        let mut mixer = Mixer::new(26e6, 2.5e6, fs).with_gain(2.0);
        let bb = mixer.process(&rf);
        // Conversion gain = 2 * 1/2 = 1 from 27 MHz RF to 1 MHz baseband.
        let g = tone_amplitude_ratio(&rf[8000..], &bb[8000..], fs, 27e6, 1e6);
        assert!((g - 1.0).abs() < 0.05, "conversion gain {g}");
    }

    #[test]
    #[should_panic(expected = "no tone")]
    fn amplitude_ratio_panics_without_input_tone() {
        let silent = vec![0.0; 100];
        tone_amplitude_ratio(&silent, &silent, 1000.0, 100.0, 100.0);
    }

    #[test]
    fn dc_offset_measures_mean() {
        let mut x = MultiTone::equal_amplitude(&[1e3], 1.0).generate(10e3, 700);
        for v in x.iter_mut() {
            *v += 0.037;
        }
        assert!((dc_offset(&x) - 0.037).abs() < 5e-3);
        assert_eq!(dc_offset(&[]), 0.0);
    }

    #[test]
    fn iip3_of_cubic_amplifier_matches_theory() {
        // y = v - k3 v^3 with two tones of amplitude A:
        // IM3 amplitude = (3/4) k3 A^3, fundamental ≈ A (for small k3).
        // IIP3 (V) = sqrt(4/(3 k3)).
        // Coherent window: 90/110 kHz complete 900/1100 cycles in 80 000
        // samples at 8 MHz, as do the IM3 products at 70/130 kHz. The tones
        // must not be harmonically related (f2 ≠ 5·f1), otherwise the third
        // harmonic of f1 lands on the 2f1−f2 product and biases the result.
        let fs = 8e6;
        let (f1, f2) = (90e3, 110e3);
        let a = 0.1;
        let k3 = 0.2;
        let x = MultiTone::two_tone(f1, f2, a).generate(fs, 80_000);
        let mut amp = Amplifier::new(1.0, 1e12, 10.0).with_cubic_nonlinearity(k3);
        let y = amp.process(&x, fs);
        let measured = iip3_dbv(&y, fs, f1, f2, a);
        let theory = 20.0 * (4.0 / (3.0 * k3)).sqrt().log10();
        assert!((measured - theory).abs() < 0.5, "IIP3 {measured} vs {theory} dBV");
    }

    #[test]
    fn iip3_of_linear_device_is_effectively_infinite() {
        let fs = 8e6;
        let x = MultiTone::two_tone(50e3, 250e3, 0.1).generate(fs, 80_000);
        // Only numerical round-off remains at the IM3 frequencies, so the
        // intercept is far above any physical amplifier's.
        assert!(iip3_dbv(&x, fs, 50e3, 250e3, 0.1) > 80.0);
    }

    #[test]
    fn phase_mismatch_of_perfect_quadrature_is_zero() {
        // Coherent: 200 kHz completes 400 cycles in 30 000 samples at 15 MHz.
        let fs = 15e6;
        let f = 200e3;
        let n = 30_000;
        let i: Vec<f64> = (0..n).map(|k| (2.0 * PI * f * k as f64 / fs).cos()).collect();
        let q: Vec<f64> = (0..n).map(|k| (2.0 * PI * f * k as f64 / fs - PI / 2.0).cos()).collect();
        let mismatch = phase_mismatch_deg(&i, &q, fs, f);
        assert!(mismatch.abs() < 0.01, "mismatch {mismatch} deg");
    }

    #[test]
    fn phase_mismatch_detects_skew() {
        let fs = 15e6;
        let f = 200e3;
        let n = 30_000;
        let skew = 3.0f64.to_radians();
        let i: Vec<f64> = (0..n).map(|k| (2.0 * PI * f * k as f64 / fs).cos()).collect();
        let q: Vec<f64> =
            (0..n).map(|k| (2.0 * PI * f * k as f64 / fs - PI / 2.0 + skew).cos()).collect();
        let mismatch = phase_mismatch_deg(&i, &q, fs, f);
        assert!((mismatch.abs() - 3.0).abs() < 0.05, "mismatch {mismatch} deg");
    }

    #[test]
    fn slew_rate_of_limited_amplifier() {
        // A 2 V step demands 138 GV/s at 69 MHz sampling; the amplifier's
        // 100 V/µs limit therefore dominates the observed slope.
        let fs = 69e6;
        let mut amp = Amplifier::new(1.0, 100e6, 2.0);
        let x = step(-1.0, 1.0, 100, 5_400);
        let y = amp.process(&x, fs);
        let sr = slew_rate(&y, fs);
        assert!((sr - 100e6).abs() / 100e6 < 1e-9, "slew {sr}");
    }

    #[test]
    fn dynamic_range_degrades_with_noise() {
        // Coherent: 1 MHz completes 1000 cycles in 26 000 samples at 26 MHz.
        let fs = 26e6;
        let x = MultiTone::equal_amplitude(&[1e6], 1.0).generate(fs, 26_000);
        let clean_dr = dynamic_range_db(&x, fs, 1e6);
        let mut noisy = x.clone();
        add_noise(&mut noisy, 1e-3, 3);
        let noisy_dr = dynamic_range_db(&noisy, fs, 1e6);
        assert!(clean_dr > noisy_dr + 20.0, "clean {clean_dr} vs noisy {noisy_dr}");
        // Uniform noise of peak 1e-3 has RMS 5.77e-4; DR ≈ 20log10(0.707/5.77e-4) ≈ 61.8 dB.
        assert!((noisy_dr - 61.8).abs() < 1.5, "noisy DR {noisy_dr}");
    }
}
