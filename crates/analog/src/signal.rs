//! Test stimulus generation.
//!
//! The paper tests wrapped analog cores with digitally generated stimuli:
//! multitone signals for frequency-response tests, two-tone signals for
//! intermodulation (IIP3) tests, DC levels for offset tests and steps for
//! slew-rate tests. All generators here are deterministic; additive noise
//! is available through the [`add_noise`] helper for robustness
//! experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single sinusoidal component of a stimulus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Peak amplitude in volts.
    pub amplitude: f64,
    /// Phase in radians at `t = 0`.
    pub phase: f64,
}

impl Tone {
    /// A cosine tone with zero phase.
    pub fn new(freq_hz: f64, amplitude: f64) -> Self {
        Tone { freq_hz, amplitude, phase: 0.0 }
    }

    /// Instantaneous value at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        self.amplitude * (2.0 * std::f64::consts::PI * self.freq_hz * t + self.phase).cos()
    }
}

/// A multitone stimulus: a DC level plus a sum of [`Tone`]s.
///
/// # Examples
///
/// ```
/// use msoc_analog::signal::MultiTone;
/// // The paper's Fig. 5 stimulus: three tones at 1.7 MHz sampling.
/// let sig = MultiTone::equal_amplitude(&[20e3, 50e3, 80e3], 0.3);
/// let samples = sig.generate(1.7e6, 4551);
/// assert_eq!(samples.len(), 4551);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiTone {
    /// DC offset added to every sample.
    pub dc: f64,
    /// The sinusoidal components.
    pub tones: Vec<Tone>,
}

impl MultiTone {
    /// A stimulus with the given tones and no DC component.
    pub fn new(tones: Vec<Tone>) -> Self {
        MultiTone { dc: 0.0, tones }
    }

    /// Equal-amplitude tones at the given frequencies.
    pub fn equal_amplitude(freqs_hz: &[f64], amplitude: f64) -> Self {
        MultiTone::new(freqs_hz.iter().map(|&f| Tone::new(f, amplitude)).collect())
    }

    /// The classical two-tone intermodulation stimulus.
    pub fn two_tone(f1_hz: f64, f2_hz: f64, amplitude: f64) -> Self {
        MultiTone::equal_amplitude(&[f1_hz, f2_hz], amplitude)
    }

    /// A pure DC stimulus (for DC-offset tests).
    pub fn dc(level: f64) -> Self {
        MultiTone { dc: level, tones: Vec::new() }
    }

    /// Instantaneous value at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        self.dc + self.tones.iter().map(|tone| tone.sample(t)).sum::<f64>()
    }

    /// Generates `n` samples at `sample_rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz <= 0`.
    pub fn generate(&self, sample_rate_hz: f64, n: usize) -> Vec<f64> {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        (0..n).map(|i| self.sample(i as f64 / sample_rate_hz)).collect()
    }

    /// Peak amplitude bound: `|dc| + Σ |tone amplitude|`.
    pub fn peak_bound(&self) -> f64 {
        self.dc.abs() + self.tones.iter().map(|t| t.amplitude.abs()).sum::<f64>()
    }
}

/// Adds zero-mean uniform noise of peak `amplitude` to `samples`,
/// deterministically from `seed`.
pub fn add_noise(samples: &mut [f64], amplitude: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for s in samples.iter_mut() {
        *s += rng.gen_range(-amplitude..=amplitude);
    }
}

/// A voltage step from `low` to `high` at sample `at`, used by slew-rate
/// tests.
pub fn step(low: f64, high: f64, at: usize, n: usize) -> Vec<f64> {
    (0..n).map(|i| if i < at { low } else { high }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::goertzel::tone_amplitude;

    #[test]
    fn tone_sample_matches_cosine() {
        let t = Tone { freq_hz: 10.0, amplitude: 2.0, phase: 0.0 };
        assert!((t.sample(0.0) - 2.0).abs() < 1e-12);
        assert!(t.sample(0.025).abs() < 1e-12); // quarter period
    }

    #[test]
    fn multitone_is_sum_of_parts() {
        let m = MultiTone { dc: 0.1, tones: vec![Tone::new(5.0, 1.0), Tone::new(7.0, 0.5)] };
        assert!((m.sample(0.0) - 1.6).abs() < 1e-12);
        assert!((m.peak_bound() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn generated_tones_survive_goertzel_roundtrip() {
        let m = MultiTone::equal_amplitude(&[100.0, 300.0], 0.4);
        let x = m.generate(10_000.0, 10_000);
        assert!((tone_amplitude(&x, 10_000.0, 100.0) - 0.4).abs() < 1e-6);
        assert!((tone_amplitude(&x, 10_000.0, 300.0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn dc_generator_is_flat() {
        let x = MultiTone::dc(0.7).generate(100.0, 10);
        assert!(x.iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }

    #[test]
    fn step_changes_at_index() {
        let x = step(0.0, 1.0, 3, 6);
        assert_eq!(x, vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let mut a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        add_noise(&mut a, 0.01, 7);
        add_noise(&mut b, 0.01, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v.abs() <= 0.01));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 2e-3);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        MultiTone::dc(0.0).generate(0.0, 4);
    }
}
