//! The test planner: exhaustive evaluation, the paper's `Cost_Optimizer`
//! heuristic (Fig. 3), and the cross-width [`table`] sweep engine.

pub mod table;

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use msoc_awrapper::{analog_delta_jobs, AreaModel, IncompatibleSharing, SharingPolicy};
use msoc_tam::{
    bounds, Effort, Engine, PackSession, Schedule, ScheduleError, ScheduleProblem, SessionStats,
    TestJob,
};
use msoc_wrapper::Staircase;

use crate::cost::{self, CostWeights};
use crate::partition::{self, SharingConfig};
use crate::service::PlanService;
use crate::soc::MixedSignalSoc;

/// Which sharing configurations the planner considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Enumeration {
    /// The paper's 26-configuration candidate set (shapes
    /// `{2}`, `{3}`, `{4}`, `{3,2}`, `{n}`).
    #[default]
    Paper,
    /// Every set partition of the analog cores, including no-sharing and
    /// the `{2,2,…}` shapes the paper omits.
    All,
}

/// Planner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerOptions {
    /// Wrapper area model (default: the calibrated paper areas).
    pub area_model: AreaModel,
    /// Sharing policy: routing factor β and compatibility cap.
    pub sharing_policy: SharingPolicy,
    /// Scheduling effort per configuration.
    pub effort: Effort,
    /// Packing engine for every schedule the planner builds. The default
    /// skyline engine and the naive reference produce identical schedules;
    /// the knob exists for A/B benchmarking.
    pub engine: Engine,
    /// Candidate enumeration mode.
    pub enumeration: Enumeration,
    /// When set, every wrapper additionally runs a converter BIST session
    /// of this many cycles in self-test mode, serialized with the
    /// wrapper's core tests on one TAM wire. The paper excludes self-test
    /// time from its tables (its Section 6) and lists converter BIST as
    /// future work; this option quantifies it: sharing then saves test
    /// time too, because fewer wrappers mean fewer BIST sessions.
    pub self_test_cycles: Option<u64>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            area_model: AreaModel::paper_calibrated(),
            sharing_policy: SharingPolicy::default(),
            effort: Effort::Standard,
            engine: Engine::default(),
            enumeration: Enumeration::Paper,
            self_test_cycles: None,
        }
    }
}

/// A fully evaluated sharing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedConfig {
    /// The configuration.
    pub config: SharingConfig,
    /// Scheduled SOC test time in cycles.
    pub makespan: u64,
    /// `C_T`: makespan normalized to the all-share configuration (× 100).
    pub time_cost: f64,
    /// `C_A`: area overhead cost (paper eq. 1).
    pub area_cost: f64,
    /// `C = W_T·C_T + W_A·C_A`.
    pub total_cost: f64,
}

/// The result of a planning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The minimum-cost configuration found.
    pub best: EvaluatedConfig,
    /// Number of TAM-optimizer evaluations spent on candidates (the
    /// all-share normalization baseline is not counted, matching the
    /// paper's Table 4 accounting).
    pub evaluations: usize,
    /// Number of candidate configurations considered.
    pub candidates: usize,
    /// The winning schedule.
    pub schedule: Schedule,
    /// TAM width the plan was made for.
    pub tam_width: u32,
    /// The cost weights used.
    pub weights: CostWeights,
}

/// Why a job was interrupted before completing (see
/// [`crate::service::Deadline`] and [`crate::service::CancelToken`]).
///
/// Interruption is checked only at deterministic progress boundaries —
/// between candidate batches in [`Planner::schedule_batch`] and at wave
/// boundaries in [`Planner::plan_table`] — so an interrupted run abandons
/// whole batches, never partial ones: everything it *did* compute (and
/// cache) is a complete, bit-identical unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupted {
    /// The job's deadline (wall-clock or check budget) expired.
    DeadlineExceeded,
    /// The job's cancellation token was triggered.
    Cancelled,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupted::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupted::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The SOC has no analog cores to plan for.
    NoAnalogCores,
    /// A test needs more TAM wires than the SOC-level TAM provides.
    Schedule(ScheduleError),
    /// A candidate wrapper group violates the sharing compatibility cap.
    Incompatible(IncompatibleSharing),
    /// A service request is malformed (empty candidate set, empty or
    /// duplicate widths). Raised by the [`crate::PlanService`] front-ends,
    /// which must not panic on untrusted request data.
    InvalidRequest(String),
    /// The run was interrupted by its job's deadline or cancellation
    /// token at a deterministic progress boundary. Surfaced to
    /// [`crate::PlanService::submit`] callers as
    /// [`crate::service::JobOutcome::DeadlineExceeded`] /
    /// [`crate::service::JobOutcome::Cancelled`].
    Interrupted(Interrupted),
    /// The service shed this job at admission: its `submit` batch was
    /// larger than the service's admission cap
    /// ([`crate::PlanService::with_admission_cap`]) and this job ranked
    /// below the cap in dispatch order. Shedding is load control, not a
    /// verdict on the request — the same job resubmitted in a batch
    /// within the cap runs normally.
    Overloaded {
        /// The admission cap in force.
        cap: usize,
        /// The size of the batch the job arrived in.
        batch: usize,
    },
    /// The job panicked while planning (message attached). Surfaced to
    /// [`crate::PlanService::submit`] callers as
    /// [`crate::service::JobOutcome::Failed`]; sibling jobs in the batch
    /// are isolated and complete normally.
    Panicked(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoAnalogCores => write!(f, "the SOC has no analog cores"),
            PlanError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PlanError::Incompatible(e) => write!(f, "incompatible sharing: {e}"),
            PlanError::InvalidRequest(what) => write!(f, "invalid plan request: {what}"),
            PlanError::Interrupted(why) => write!(f, "planning interrupted: {why}"),
            PlanError::Overloaded { cap, batch } => {
                write!(f, "job shed at admission: batch of {batch} exceeds the cap of {cap}")
            }
            PlanError::Panicked(message) => write!(f, "job panicked: {message}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::NoAnalogCores
            | PlanError::InvalidRequest(_)
            | PlanError::Interrupted(_)
            | PlanError::Overloaded { .. }
            | PlanError::Panicked(_) => None,
            PlanError::Schedule(e) => Some(e),
            PlanError::Incompatible(e) => Some(e),
        }
    }
}

impl From<ScheduleError> for PlanError {
    fn from(e: ScheduleError) -> Self {
        PlanError::Schedule(e)
    }
}

impl From<IncompatibleSharing> for PlanError {
    fn from(e: IncompatibleSharing) -> Self {
        PlanError::Incompatible(e)
    }
}

/// Aggregate scheduling-reuse statistics of a planner (see
/// [`Planner::stats`]).
///
/// The session counters aggregate over the planner's per-width
/// [`PackSession`]s, relative to the state each session was in when this
/// planner first acquired it (so a planner on a warm shared service
/// reports *its own* activity; concurrent planners on the same sessions
/// can still bleed into each other's deltas). `width_bound_prunes` counts
/// widths a [`Planner::best_width_for`] sweep skipped entirely because
/// their area/width lower bound already exceeded the incumbent makespan;
/// `cost_bound_prunes` counts `(config, width)` pairs whose blended-cost
/// lower bound (exact area cost + schedule-independent time bound)
/// already exceeded the incumbent best cost, skipped before any packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Skeleton checkpoint lookups served from a session cache.
    pub skeleton_hits: u64,
    /// Skeleton orderings packed from scratch across all sessions.
    pub skeleton_misses: u64,
    /// Completed candidate delta packs across all sessions.
    pub delta_packs: u64,
    /// Delta passes abandoned by the in-pack lower-bound prune.
    pub pruned_passes: u64,
    /// Restores that went deeper than the skeleton (delta-prefix reuse).
    pub prefix_hits: u64,
    /// Total delta placements skipped by prefix restores.
    pub prefix_jobs_restored: u64,
    /// Deepest single prefix restore, in delta placements.
    pub max_prefix_depth: u64,
    /// Checkpoints evicted by the sessions' LRU caps.
    pub checkpoint_evictions: u64,
    /// Widths skipped before any packing by the width-sweep bound prune.
    pub width_bound_prunes: u64,
    /// `(config, width)` pairs skipped by the blended-cost bound prune.
    pub cost_bound_prunes: u64,
    /// Portfolio races won by the skyline engine.
    pub portfolio_wins_skyline: u64,
    /// Portfolio races won by the MaxRects engine.
    pub portfolio_wins_maxrects: u64,
    /// Portfolio races won by the guillotine engine.
    pub portfolio_wins_guillotine: u64,
    /// Passes pruned by a cross-engine frozen bound in portfolio races.
    pub portfolio_race_prunes: u64,
    /// Cumulative check boundaries until each race's winner was published.
    pub portfolio_checks_to_best: u64,
}

/// A session the planner acquired from its service, with the counter
/// baseline at acquisition time (so [`Planner::stats`] reports the
/// planner's own activity even on a warm shared session).
#[derive(Debug)]
struct AcquiredSession {
    session: Arc<PackSession>,
    baseline: SessionStats,
}

/// The planner's binding to a [`PlanService`]: borrowed and shared across
/// planner instances, or owned and private (the transient fallback that
/// keeps the pre-service API working unchanged).
#[derive(Debug)]
enum ServiceBinding<'a> {
    Shared(&'a PlanService),
    Owned(Box<PlanService>),
}

/// The mixed-signal test planner.
///
/// Drives every candidate × width sweep through per-width
/// [`PackSession`]s borrowed from a [`PlanService`]: the digital skeleton
/// of a width is packed once per ordering, each of the ~26 sharing
/// candidates only delta-packs its analog wrapper jobs on a restored
/// snapshot, and candidates are swept in a group-signature gray-code-style
/// order so consecutive candidates restore the longest shared delta
/// prefix from the session's trie. On top of the sessions the planner
/// holds per-(configuration, width) schedule and makespan caches, and the
/// service adds fingerprint-keyed session and schedule caches that
/// persist across planner instances ([`Planner::with_service`]); the
/// default constructors bind a private transient service, preserving the
/// original per-planner behavior. Batches of independent delta packs (the
/// candidate × width loops that dominate planning wall time) run in
/// parallel via [`msoc_par`], with a deterministic in-order reduction so
/// parallel runs are bit-identical to serial ones — and session packs are
/// bit-identical to from-scratch `schedule_with_engine` calls by
/// construction.
#[derive(Debug)]
pub struct Planner<'a> {
    soc: &'a MixedSignalSoc,
    opts: PlannerOptions,
    service: ServiceBinding<'a>,
    sessions: HashMap<u32, AcquiredSession>,
    makespans: HashMap<(SharingConfig, u32), u64>,
    schedules: HashMap<(SharingConfig, u32), Arc<Schedule>>,
    /// Schedule-cache keys that survive per-sweep pruning (report winners
    /// and the all-share baseline).
    pinned: HashSet<(SharingConfig, u32)>,
    width_bound_prunes: u64,
    cost_bound_prunes: u64,
    /// Deadline/cancellation control of the job driving this planner
    /// (`None` outside [`crate::PlanService::submit`]). Checked only at
    /// deterministic progress boundaries; see [`Interrupted`].
    control: Option<crate::service::job::JobControl>,
    /// Whether cache hits served to this planner should be attributed to
    /// the revision counter (set for jobs planned through a revised
    /// [`crate::service::SocHandle`]).
    track_revision: bool,
}

impl<'a> Planner<'a> {
    /// Creates a planner with default options.
    pub fn new(soc: &'a MixedSignalSoc) -> Self {
        Planner::with_options(soc, PlannerOptions::default())
    }

    /// Creates a planner with explicit options and a private transient
    /// service (caches live and die with this planner).
    pub fn with_options(soc: &'a MixedSignalSoc, opts: PlannerOptions) -> Self {
        Planner::build(soc, opts, ServiceBinding::Owned(Box::default()))
    }

    /// Creates a planner whose sessions and schedules come from (and feed)
    /// a shared [`PlanService`]: a planner for a SOC the service has seen
    /// before starts with warm checkpoints and cached schedules.
    pub fn with_service(
        soc: &'a MixedSignalSoc,
        opts: PlannerOptions,
        service: &'a PlanService,
    ) -> Self {
        Planner::build(soc, opts, ServiceBinding::Shared(service))
    }

    fn build(soc: &'a MixedSignalSoc, opts: PlannerOptions, service: ServiceBinding<'a>) -> Self {
        Planner {
            soc,
            opts,
            service,
            sessions: HashMap::new(),
            makespans: HashMap::new(),
            schedules: HashMap::new(),
            pinned: HashSet::new(),
            width_bound_prunes: 0,
            cost_bound_prunes: 0,
            control: None,
            track_revision: false,
        }
    }

    /// The backing service (shared or transient).
    fn service(&self) -> &PlanService {
        match &self.service {
            ServiceBinding::Shared(s) => s,
            ServiceBinding::Owned(s) => s,
        }
    }

    /// Binds the job control (deadline + cancellation) this planner checks
    /// at its progress boundaries.
    pub(crate) fn set_control(&mut self, control: Option<crate::service::job::JobControl>) {
        self.control = control;
    }

    /// Marks this planner's cache traffic as revision traffic (jobs
    /// planned through a revised [`crate::service::SocHandle`]).
    pub(crate) fn set_revision_tracking(&mut self, on: bool) {
        self.track_revision = on;
    }

    /// Checks the bound job control, surfacing an expired deadline or a
    /// triggered cancellation as [`PlanError::Interrupted`]. Called only
    /// at deterministic progress boundaries (batch/wave starts), so an
    /// interrupted run abandons whole units of work and every cached
    /// result stays a complete, bit-identical pack.
    pub(crate) fn check_interrupt(&self) -> Result<(), PlanError> {
        match &self.control {
            Some(control) => control.check().map_err(PlanError::Interrupted),
            None => Ok(()),
        }
    }

    /// The pack session for width `w`, acquired from the service on first
    /// use: its skeleton is the sweep-invariant digital job set (one job
    /// per digital core, full Pareto staircase up to `w`). On a warm
    /// service this returns a session another planner already populated.
    fn session(&mut self, w: u32) -> &Arc<PackSession> {
        if !self.sessions.contains_key(&w) {
            let skeleton: Vec<TestJob> = self
                .soc
                .digital
                .cores()
                .map(|m| TestJob::new(format!("m{}", m.id), Staircase::for_module(m, w)))
                .collect();
            let tracked = self.track_revision;
            let session = match &self.service {
                ServiceBinding::Shared(s) => {
                    s.session_tracked(w, self.opts.effort, self.opts.engine, skeleton, tracked)
                }
                ServiceBinding::Owned(s) => {
                    s.session_tracked(w, self.opts.effort, self.opts.engine, skeleton, tracked)
                }
            };
            let baseline = session.stats();
            self.sessions.insert(w, AcquiredSession { session, baseline });
        }
        &self.sessions[&w].session
    }

    /// The per-candidate delta jobs: one grouped job per analog test plus
    /// optional per-wrapper self-test sessions.
    fn delta_jobs(&self, config: &SharingConfig) -> Vec<TestJob> {
        analog_delta_jobs(
            &self.soc.analog,
            &config.assignment(),
            config.wrapper_count(),
            self.opts.self_test_cycles,
        )
    }

    /// Aggregate reuse statistics over the planner's sessions plus the
    /// planner-level bound prunes.
    ///
    /// Session counters are reported relative to each session's state at
    /// acquisition, so a planner on a warm shared service counts its own
    /// reuse, not the history of every earlier planner.
    pub fn stats(&self) -> PlanStats {
        let mut out = PlanStats {
            width_bound_prunes: self.width_bound_prunes,
            cost_bound_prunes: self.cost_bound_prunes,
            ..Default::default()
        };
        for acquired in self.sessions.values() {
            let now = acquired.session.stats();
            let base = acquired.baseline;
            out.skeleton_hits += now.skeleton_hits.saturating_sub(base.skeleton_hits);
            out.skeleton_misses += now.skeleton_misses.saturating_sub(base.skeleton_misses);
            out.delta_packs += now.delta_packs.saturating_sub(base.delta_packs);
            out.pruned_passes += now.pruned_passes.saturating_sub(base.pruned_passes);
            out.prefix_hits += now.prefix_hits.saturating_sub(base.prefix_hits);
            out.prefix_jobs_restored +=
                now.prefix_jobs_restored.saturating_sub(base.prefix_jobs_restored);
            // The session-wide max is attributed only when this planner
            // performed prefix restores on the session at all — a running
            // max cannot be baseline-subtracted, but a planner with zero
            // restores must not inherit another planner's depth record.
            if now.prefix_hits > base.prefix_hits {
                out.max_prefix_depth = out.max_prefix_depth.max(now.max_prefix_depth);
            }
            out.checkpoint_evictions += now.evictions.saturating_sub(base.evictions);
            out.portfolio_wins_skyline +=
                now.portfolio_wins_skyline.saturating_sub(base.portfolio_wins_skyline);
            out.portfolio_wins_maxrects +=
                now.portfolio_wins_maxrects.saturating_sub(base.portfolio_wins_maxrects);
            out.portfolio_wins_guillotine +=
                now.portfolio_wins_guillotine.saturating_sub(base.portfolio_wins_guillotine);
            out.portfolio_race_prunes +=
                now.portfolio_race_prunes.saturating_sub(base.portfolio_race_prunes);
            out.portfolio_checks_to_best +=
                now.portfolio_checks_to_best.saturating_sub(base.portfolio_checks_to_best);
        }
        out
    }

    /// The candidate sharing configurations under the planner's
    /// enumeration mode.
    pub fn candidates(&self) -> Vec<SharingConfig> {
        let classes = self.soc.analog_equivalence_classes();
        match self.opts.enumeration {
            Enumeration::Paper => partition::enumerate_paper(self.soc.analog.len(), &classes),
            Enumeration::All => partition::enumerate_bell(self.soc.analog.len(), &classes),
        }
    }

    /// Builds the schedule problem for a configuration at TAM width `w`:
    /// one skeleton job per digital core (full staircase) plus one delta
    /// job per analog test (fixed width and time), grouped by wrapper —
    /// exactly the problem the width's [`PackSession`] delta-packs.
    pub fn build_problem(&mut self, config: &SharingConfig, w: u32) -> ScheduleProblem {
        let delta = self.delta_jobs(config);
        self.session(w).problem_for(&delta)
    }

    /// Schedules a configuration (cached) and returns its makespan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn makespan(&mut self, config: &SharingConfig, w: u32) -> Result<u64, PlanError> {
        if let Some(&m) = self.makespans.get(&(config.clone(), w)) {
            return Ok(m);
        }
        self.schedule_batch(std::slice::from_ref(config), w)?;
        Ok(self.makespans[&(config.clone(), w)])
    }

    /// Schedules every configuration in `configs` at width `w` into the
    /// caches, fanning uncached ones out over the available cores.
    ///
    /// The candidate × width evaluation loops are where planning spends
    /// its wall time (each evaluation is a full multi-start pack), and the
    /// configurations are independent, so this is the planner's main
    /// parallel section. Uncached candidates are packed in a
    /// group-signature gray-code-style order — greedy nearest-neighbor on
    /// the delta jobs' group assignments in the session's canonical
    /// by-time ordering — so consecutive candidates differ in as few
    /// wrapper groups as possible and the session's delta-prefix trie
    /// restores the longest common packed prefix. The packing order is
    /// pure scheduling-work layout: every candidate's schedule is
    /// deterministic in isolation, results land in the same caches the
    /// serial path reads, and errors surface in input order, keeping
    /// every downstream decision bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] for the first (in input order)
    /// configuration whose problem cannot be scheduled, and
    /// [`PlanError::Interrupted`] when the bound job control reports an
    /// expired deadline or cancellation — the check runs once here, before
    /// the batch packs, so interruption never abandons a partial batch.
    pub fn schedule_batch(&mut self, configs: &[SharingConfig], w: u32) -> Result<(), PlanError> {
        self.check_interrupt()?;
        let mut pending: Vec<(usize, SharingConfig, Vec<TestJob>)> = Vec::new();
        for (pos, config) in configs.iter().enumerate() {
            let key = (config.clone(), w);
            if self.makespans.contains_key(&key) || pending.iter().any(|(_, c, _)| c == config) {
                continue;
            }
            let delta = self.delta_jobs(config);
            pending.push((pos, config.clone(), delta));
        }
        order_for_prefix_sharing(&mut pending, w);
        let session = Arc::clone(self.session(w));
        // Warm the base skeleton checkpoints before fanning out, so the
        // concurrent candidate packs below hit a hot cache instead of all
        // racing to pack the same orderings.
        if !pending.is_empty() {
            session.warm();
        }
        let scheduled: Vec<Result<Arc<Schedule>, ScheduleError>> = {
            let service = self.service();
            let tracked = self.track_revision;
            msoc_par::map(&pending, |_, (_, _, delta)| {
                service.pack_tracked(&session, delta, tracked)
            })
        };
        let mut first_error: Option<(usize, ScheduleError)> = None;
        for ((pos, config, _), result) in pending.into_iter().zip(scheduled) {
            match result {
                Ok(schedule) => {
                    self.makespans.insert((config.clone(), w), schedule.makespan());
                    // Full schedules are kept only until the sweep's report
                    // prunes the losers (see `report`): every candidate is
                    // packed once, but only pinned entries survive across
                    // sweeps.
                    self.schedules.insert((config, w), schedule);
                }
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(p, _)| pos < *p) {
                        first_error = Some((pos, e));
                    }
                }
            }
        }
        match first_error {
            Some((_, e)) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// The full schedule for one configuration (cached and pinned).
    ///
    /// Pinned schedules — the report winner and the all-share baseline —
    /// survive the per-sweep pruning in `report`, so the retained cache
    /// stays small even across Bell-enumeration sweeps while the sweep
    /// itself never packs a configuration twice.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn schedule_for(&mut self, config: &SharingConfig, w: u32) -> Result<&Schedule, PlanError> {
        let key = (config.clone(), w);
        if !self.schedules.contains_key(&key) {
            let delta = self.delta_jobs(config);
            let session = Arc::clone(self.session(w));
            let schedule = self.service().pack_tracked(&session, &delta, self.track_revision)?;
            self.makespans.insert(key.clone(), schedule.makespan());
            self.schedules.insert(key.clone(), schedule);
        }
        self.pinned.insert(key.clone());
        Ok(self.schedules[&key].as_ref())
    }

    /// Finds the width in `widths` minimizing the scheduled makespan of
    /// `config`, reusing bounds across the sweep: a width whose
    /// schedule-independent lower bound (area/width, critical job, wrapper
    /// chain) already *strictly* exceeds the incumbent best makespan is
    /// pruned before any packing. The prune is exact — a pruned width
    /// provably cannot beat or tie the incumbent — so the returned winner
    /// (ties resolved to the earliest width in `widths`) is identical to
    /// the unpruned sweep's. Pruned widths are counted in
    /// [`PlanStats::width_bound_prunes`].
    ///
    /// Sweeping from wide to narrow maximizes pruning: the wide widths set
    /// a strong incumbent and the narrow widths' area bounds blow past it.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM at
    /// some unpruned width. `widths` must be non-empty.
    pub fn best_width_for(
        &mut self,
        config: &SharingConfig,
        widths: &[u32],
    ) -> Result<(u32, u64), PlanError> {
        assert!(!widths.is_empty(), "best_width_for needs at least one width");
        let mut best: Option<(u32, u64)> = None;
        let delta = self.delta_jobs(config);
        for &w in widths {
            if let Some((_, incumbent)) = best {
                // Bound straight from the session skeleton + delta slices;
                // no job cloning for a width that may be pruned.
                let jobs = self.session(w).skeleton().iter().chain(delta.iter());
                if bounds::lower_bound_for(jobs, w) > incumbent {
                    self.width_bound_prunes += 1;
                    continue;
                }
            }
            let makespan = self.makespan(config, w)?;
            if best.is_none_or(|(_, m)| makespan < m) {
                best = Some((w, makespan));
            }
        }
        Ok(best.expect("at least one width is evaluated"))
    }

    /// The normalization time `T_max(w)`: the makespan of the all-share
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn t_max(&mut self, w: u32) -> Result<u64, PlanError> {
        self.makespan(&SharingConfig::all_shared(self.soc.analog.len()), w)
    }

    /// A provable lower bound on the blended cost of `(config, w)`,
    /// computable without packing: the *exact* area cost blended with the
    /// time cost of the schedule-independent makespan lower bound
    /// (area/width, critical job, wrapper chain — capped at `T_max` like
    /// the real evaluation). Every real [`Self::evaluate`] result is `>=`
    /// this bound, so a candidate whose bound already exceeds an incumbent
    /// best cost can be skipped without changing any sweep's winner.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the all-share normalization cannot be
    /// scheduled or the configuration violates the sharing policy.
    pub fn cost_lower_bound(
        &mut self,
        config: &SharingConfig,
        w: u32,
        weights: CostWeights,
    ) -> Result<f64, PlanError> {
        let c_a = cost::area_cost(
            config,
            &self.soc.analog,
            &self.opts.area_model,
            &self.opts.sharing_policy,
        )?;
        let t_max = self.t_max(w)?;
        let delta = self.delta_jobs(config);
        let lb = {
            let jobs = self.session(w).skeleton().iter().chain(delta.iter());
            bounds::lower_bound_for(jobs, w)
        };
        let c_t = cost::time_cost(lb.min(t_max), t_max);
        Ok(weights.blend(c_t, c_a))
    }

    /// Fully evaluates one configuration at width `w`.
    ///
    /// The makespan is capped at `T_max`: every sharing partition refines
    /// the all-share partition (its serialization constraints are a
    /// subset), so the all-share schedule is feasible for every
    /// configuration and `C_T ≤ 100` always holds. Without the cap,
    /// greedy-scheduler noise could rank a configuration a fraction of a
    /// percent above the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] on scheduling failure or incompatible sharing.
    pub fn evaluate(
        &mut self,
        config: &SharingConfig,
        w: u32,
        weights: CostWeights,
    ) -> Result<EvaluatedConfig, PlanError> {
        let c_a = cost::area_cost(
            config,
            &self.soc.analog,
            &self.opts.area_model,
            &self.opts.sharing_policy,
        )?;
        let t_max = self.t_max(w)?;
        let makespan = self.makespan(config, w)?.min(t_max);
        let c_t = cost::time_cost(makespan, t_max);
        Ok(EvaluatedConfig {
            config: config.clone(),
            makespan,
            time_cost: c_t,
            area_cost: c_a,
            total_cost: weights.blend(c_t, c_a),
        })
    }

    /// Exhaustive baseline: evaluates every candidate configuration and
    /// returns the best, with `evaluations == candidates`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the SOC has no analog cores, a test
    /// cannot fit the TAM, or a candidate violates the sharing policy.
    pub fn exhaustive(&mut self, w: u32, weights: CostWeights) -> Result<PlanReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        let candidates = self.candidates();
        let n = candidates.len();
        // Normalization baseline first (it caps every C_T), then the whole
        // candidate set in one parallel batch; the best-cost fold below
        // then runs entirely on cache hits, in candidate order.
        self.t_max(w)?;
        self.schedule_batch(&candidates, w)?;
        let mut best: Option<EvaluatedConfig> = None;
        for config in &candidates {
            let eval = self.evaluate(config, w, weights)?;
            if best.as_ref().is_none_or(|b| eval.total_cost < b.total_cost) {
                best = Some(eval);
            }
        }
        self.report(best.expect("candidate set is never empty"), n, n, w, weights)
    }

    /// The paper's `Cost_Optimizer` heuristic (its Fig. 3).
    ///
    /// Configurations are grouped by shape (degree of sharing); each
    /// group's preliminary-cost minimizer is evaluated fully; groups whose
    /// representative costs more than `delta` above the best surviving
    /// representative are eliminated; remaining groups are evaluated
    /// fully. The all-share configuration is the normalization baseline:
    /// its schedule is computed for `T_max` and its cost participates in
    /// the final comparison, but it costs no extra evaluation — matching
    /// the paper's evaluation accounting in Table 4.
    ///
    /// `delta = 0` reproduces the paper's experiments; larger values trade
    /// evaluations for a better optimality guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the SOC has no analog cores, a test
    /// cannot fit the TAM, or a candidate violates the sharing policy.
    pub fn cost_optimizer(
        &mut self,
        w: u32,
        weights: CostWeights,
        delta: f64,
    ) -> Result<PlanReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        let candidates = self.candidates();
        let n_candidates = candidates.len();
        let all_shared = SharingConfig::all_shared(self.soc.analog.len());

        // Line 1: group by degree of sharing; the all-share baseline (and,
        // in `All` mode, the no-sharing reference) stay out of the groups.
        let groups: Vec<Vec<SharingConfig>> = partition::group_by_shape(
            candidates.into_iter().filter(|c| *c != all_shared && c.has_sharing()).collect(),
        );

        // Baseline: schedule the all-share configuration for T_max; its
        // own cost comes along for free.
        let mut best = self.evaluate(&all_shared, w, weights)?;
        let mut evaluations = 0usize;

        // Lines 2–9: pick each group's preliminary-cost minimizer (pure
        // arithmetic, serial), then schedule all representatives in one
        // parallel batch before evaluating them in group order.
        let mut rep_configs: Vec<SharingConfig> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut rep: Option<(&SharingConfig, f64)> = None;
            for config in group {
                let prelim = cost::preliminary_cost(
                    config,
                    &self.soc.analog,
                    &self.opts.area_model,
                    &self.opts.sharing_policy,
                    weights,
                )?;
                if rep.is_none_or(|(_, c)| prelim < c) {
                    rep = Some((config, prelim));
                }
            }
            let (config, _) = rep.expect("groups are non-empty");
            rep_configs.push(config.clone());
        }
        self.schedule_batch(&rep_configs, w)?;
        let mut reps: Vec<(usize, EvaluatedConfig)> = Vec::new();
        for (g_idx, config) in rep_configs.iter().enumerate() {
            let eval = self.evaluate(config, w, weights)?;
            evaluations += 1;
            reps.push((g_idx, eval));
        }

        // Lines 10–17: keep the groups whose representative is within
        // `delta` of the best representative.
        let c_star = reps.iter().map(|(_, e)| e.total_cost).fold(f64::INFINITY, f64::min);
        // The incumbent for the blended-cost bound prune: the best fully
        // evaluated cost so far (all-share baseline and every
        // representative). A member whose cost lower bound already
        // exceeds it provably cannot become the winner, so it is skipped
        // before any packing — exact, counted in
        // [`PlanStats::cost_bound_prunes`], and reflected in the report's
        // evaluation count (the member's TAM optimization never ran).
        let incumbent = reps.iter().map(|(_, e)| e.total_cost).fold(best.total_cost, f64::min);
        // Schedule every surviving group's remaining unpruned members in
        // one parallel batch, then fold costs serially in group order.
        let mut survivors: Vec<SharingConfig> = Vec::new();
        let mut bound_pruned: HashSet<SharingConfig> = HashSet::new();
        for (g_idx, rep_eval) in &reps {
            if rep_eval.total_cost - c_star > delta {
                continue;
            }
            for config in &groups[*g_idx] {
                if config == &rep_eval.config {
                    continue;
                }
                if self.cost_lower_bound(config, w, weights)? > incumbent {
                    self.cost_bound_prunes += 1;
                    bound_pruned.insert(config.clone());
                } else {
                    survivors.push(config.clone());
                }
            }
        }
        self.schedule_batch(&survivors, w)?;
        for (g_idx, rep_eval) in reps {
            let survives = rep_eval.total_cost - c_star <= delta;
            if rep_eval.total_cost < best.total_cost {
                best = rep_eval.clone();
            }
            if !survives {
                continue;
            }
            // Line 18: full evaluation of the surviving group's remaining
            // members (minus the bound-pruned ones, which provably lose).
            for config in &groups[g_idx] {
                if *config == rep_eval.config || bound_pruned.contains(config) {
                    continue;
                }
                let eval = self.evaluate(config, w, weights)?;
                evaluations += 1;
                if eval.total_cost < best.total_cost {
                    best = eval;
                }
            }
        }

        self.report(best, evaluations, n_candidates, w, weights)
    }

    fn report(
        &mut self,
        best: EvaluatedConfig,
        evaluations: usize,
        candidates: usize,
        w: u32,
        weights: CostWeights,
    ) -> Result<PlanReport, PlanError> {
        let mut schedule = self.schedule_for(&best.config, w)?.clone();
        let mut swapped = false;
        if schedule.makespan() > best.makespan {
            // The evaluation was capped at T_max (see `evaluate`); the
            // all-share schedule realizes that bound and is feasible for
            // every configuration, so hand that one out instead. (It is
            // not validated against the winner's problem: with self-test
            // sessions enabled the two problems have different job sets.)
            let all = SharingConfig::all_shared(self.soc.analog.len());
            let all_schedule = self.schedule_for(&all, w)?;
            if all_schedule.makespan() < schedule.makespan() {
                schedule = all_schedule.clone();
                swapped = true;
            }
        }
        debug_assert!(
            swapped || {
                let problem = self.build_problem(&best.config, w);
                schedule.validate(&problem).is_ok()
            },
            "winning schedule must validate against its own problem"
        );
        // Drop the sweep's losing schedules; only pinned entries (report
        // winners and the all-share baseline) are read back later.
        let pinned = &self.pinned;
        self.schedules.retain(|key, _| pinned.contains(key));
        Ok(PlanReport { best, evaluations, candidates, schedule, tam_width: w, weights })
    }
}

/// Reorders a batch of uncached candidates so consecutive candidates share
/// the longest possible delta prefix (gray-code-style sweep order).
///
/// The session's phase orderings enumerate delta jobs in candidate-
/// independent orders, the canonical one being descending time; a
/// candidate's *signature* is its jobs' wrapper groups in that order, and
/// the trie shares packed prefixes exactly up to the first signature
/// divergence. A true minimal-change gray code over set partitions is
/// overkill here — a greedy nearest-neighbor chain on longest common
/// signature prefix (deterministic, ties to the earliest candidate)
/// captures the reuse. Packing order is free to permute: each candidate's
/// schedule is deterministic in isolation and results are keyed, so this
/// affects only how much packed work the trie can reuse.
fn order_for_prefix_sharing(pending: &mut Vec<(usize, SharingConfig, Vec<TestJob>)>, w: u32) {
    if pending.len() <= 2 {
        return;
    }
    let signature = |delta: &[TestJob]| -> Vec<Option<u32>> {
        let mut idx: Vec<usize> = (0..delta.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(delta[i].staircase.time_at(w)));
        idx.into_iter().map(|i| delta[i].group).collect()
    };
    let sigs: Vec<Vec<Option<u32>>> = pending.iter().map(|(_, _, d)| signature(d)).collect();
    let n = pending.len();
    let mut used = vec![false; n];
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut current = 0usize;
    used[0] = true;
    chain.push(0);
    for _ in 1..n {
        let mut next: Option<(usize, usize)> = None; // (lcp, candidate)
        for (j, used_j) in used.iter().enumerate() {
            if *used_j {
                continue;
            }
            let lcp = sigs[current].iter().zip(&sigs[j]).take_while(|(a, b)| a == b).count();
            if next.is_none_or(|(best_lcp, _)| lcp > best_lcp) {
                next = Some((lcp, j));
            }
        }
        let (_, j) = next.expect("an unused candidate remains");
        used[j] = true;
        chain.push(j);
        current = j;
    }
    let mut taken: Vec<Option<(usize, SharingConfig, Vec<TestJob>)>> =
        pending.drain(..).map(Some).collect();
    *pending = chain.into_iter().map(|i| taken[i].take().expect("each index used once")).collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A light mixed SOC: d695s digital plus the five paper analog cores.
    fn soc() -> MixedSignalSoc {
        MixedSignalSoc::d695m()
    }

    fn quick_planner(soc: &MixedSignalSoc) -> Planner<'_> {
        Planner::with_options(
            soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        )
    }

    #[test]
    fn all_share_time_cost_is_100() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let all = SharingConfig::all_shared(5);
        let eval = p.evaluate(&all, 16, CostWeights::balanced()).unwrap();
        assert!((eval.time_cost - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_covers_all_26_candidates() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let report = p.exhaustive(16, CostWeights::balanced()).unwrap();
        assert_eq!(report.candidates, 26);
        assert_eq!(report.evaluations, 26);
        report
            .schedule
            .validate(&p.build_problem(&report.best.config, 16))
            .expect("winning schedule must validate");
    }

    #[test]
    fn heuristic_uses_fewer_evaluations_and_matches_exhaustive_cost_closely() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let exhaustive = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let heuristic = p.cost_optimizer(16, CostWeights::balanced(), 0.0).unwrap();
        assert!(heuristic.evaluations < exhaustive.evaluations);
        assert!(heuristic.best.total_cost >= exhaustive.best.total_cost - 1e-9);
        // The paper finds the heuristic optimal in all but one case; on
        // this instance demand near-optimality.
        assert!(
            heuristic.best.total_cost <= exhaustive.best.total_cost * 1.05,
            "heuristic {} vs exhaustive {}",
            heuristic.best.total_cost,
            exhaustive.best.total_cost
        );
    }

    #[test]
    fn relaxed_delta_recovers_the_exhaustive_optimum() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let exhaustive = p.exhaustive(16, CostWeights::area_heavy()).unwrap();
        let relaxed = p.cost_optimizer(16, CostWeights::area_heavy(), f64::INFINITY).unwrap();
        assert!((relaxed.best.total_cost - exhaustive.best.total_cost).abs() < 1e-9);
    }

    #[test]
    fn heuristic_evaluation_count_matches_paper_accounting() {
        // 4 group representatives + (|winning group| − 1) extra members.
        // The blended-cost bound prune may skip members that provably
        // cannot win; those skipped TAM evaluations are counted in
        // `cost_bound_prunes`, so evaluations + prunes recovers the
        // paper's accounting exactly.
        let soc = soc();
        let mut p = quick_planner(&soc);
        let report = p.cost_optimizer(16, CostWeights::balanced(), 0.0).unwrap();
        let considered = report.evaluations + p.stats().cost_bound_prunes as usize;
        let possible = [4 + 6, 4 + 3]; // {3,2}/pairs/triples (7) or quads (4)
        assert!(
            possible.contains(&considered),
            "unexpected evaluation accounting: {} evaluated + {} bound-pruned",
            report.evaluations,
            p.stats().cost_bound_prunes,
        );
        assert!(report.evaluations <= considered, "pruning can only reduce real evaluations");
    }

    #[test]
    fn cost_bound_pruning_never_changes_the_heuristic_winner() {
        // The prune is exact: a pruned member's cost lower bound already
        // exceeds a fully evaluated incumbent. Verify against a planner
        // whose bound is never consulted (delta = inf keeps every group,
        // and the exhaustive sweep evaluates every candidate for real).
        let soc = soc();
        for weights in [CostWeights::balanced(), CostWeights::time_heavy()] {
            let mut pruned = quick_planner(&soc);
            let heuristic = pruned.cost_optimizer(16, weights, 0.0).unwrap();
            let mut full = quick_planner(&soc);
            let exhaustive = full.exhaustive(16, weights).unwrap();
            // The heuristic may legitimately differ from exhaustive (the
            // paper's own pruning), but the bound prune must not push it
            // below the quality the unpruned heuristic guarantees: the
            // winner's cost is a real evaluated cost and no pruned member
            // could have beaten it.
            assert!(heuristic.best.total_cost >= exhaustive.best.total_cost - 1e-9);
            let bound = pruned.cost_lower_bound(&heuristic.best.config, 16, weights).unwrap();
            assert!(bound <= heuristic.best.total_cost + 1e-9, "bound must lower-bound reality");
        }
    }

    #[test]
    fn sweep_reuses_the_digital_skeleton_across_candidates() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let _ = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let stats = p.stats();
        assert_eq!(stats.delta_packs, 26, "one delta pack per candidate: {stats:?}");
        assert!(stats.skeleton_hits >= 20, "sweep must reuse skeleton checkpoints: {stats:?}");
        assert!(
            stats.skeleton_hits > stats.skeleton_misses,
            "reuse should dominate packing: {stats:?}"
        );
    }

    #[test]
    fn session_packs_match_from_scratch_schedules() {
        use msoc_tam::schedule_with_engine;
        let soc = soc();
        for engine in [Engine::Skyline, Engine::Naive] {
            let mut p = Planner::with_options(
                &soc,
                PlannerOptions { effort: Effort::Quick, engine, ..PlannerOptions::default() },
            );
            for config in [
                SharingConfig::all_shared(5),
                SharingConfig::new(5, vec![vec![0, 1], vec![2, 3], vec![4]]),
            ] {
                let via_session = p.schedule_for(&config, 16).unwrap().clone();
                let problem = p.build_problem(&config, 16);
                let scratch = schedule_with_engine(&problem, Effort::Quick, engine).unwrap();
                assert_eq!(via_session, scratch, "session diverged for {config} ({engine:?})");
            }
        }
    }

    #[test]
    fn best_width_prunes_hopeless_widths_without_changing_the_winner() {
        // p93791m is area-bound dominated (no single digital core dwarfs
        // the rest), so the narrow widths' area/width bound blows past the
        // wide incumbent; d695m's dominant core would never let the bound
        // exceed any incumbent.
        let soc = MixedSignalSoc::p93791m();
        let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
        // Wide-to-narrow: W=64 sets the incumbent, the narrow tail width's
        // area bound exceeds it and is skipped before packing.
        let widths = [64, 16];
        let mut pruned = quick_planner(&soc);
        let (w_pruned, m_pruned) = pruned.best_width_for(&config, &widths).unwrap();
        let mut full = quick_planner(&soc);
        let best_full = widths
            .iter()
            .map(|&w| (w, full.makespan(&config, w).unwrap()))
            .min_by_key(|&(_, m)| m)
            .unwrap();
        assert_eq!((w_pruned, m_pruned), best_full);
        assert_eq!(
            pruned.stats().width_bound_prunes,
            1,
            "the narrow width should be pruned: {:?}",
            pruned.stats()
        );
        assert_eq!(full.stats().width_bound_prunes, 0);
    }

    #[test]
    fn makespans_are_cached_across_runs() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let _ = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let cached = p.makespans.len();
        let _ = p.exhaustive(16, CostWeights::time_heavy()).unwrap();
        assert_eq!(p.makespans.len(), cached, "second sweep must reuse the cache");
    }

    #[test]
    fn no_analog_cores_is_an_error() {
        let soc = MixedSignalSoc::new("dig", msoc_itc02::synth::d695s(), vec![]);
        let mut p = quick_planner(&soc);
        match p.exhaustive(16, CostWeights::balanced()) {
            Err(PlanError::NoAnalogCores) => {}
            other => panic!("expected NoAnalogCores, got {other:?}"),
        }
    }

    #[test]
    fn too_narrow_tam_reports_schedule_error() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        // Core D needs 10 wires for its IIP3 test.
        match p.exhaustive(8, CostWeights::balanced()) {
            Err(PlanError::Schedule(_)) => {}
            other => panic!("expected Schedule error, got {other:?}"),
        }
    }

    #[test]
    fn bell_enumeration_includes_no_sharing() {
        let soc = soc();
        let p = Planner::with_options(
            &soc,
            PlannerOptions { enumeration: Enumeration::All, ..PlannerOptions::default() },
        );
        let candidates = p.candidates();
        assert!(candidates.contains(&SharingConfig::no_sharing(5)));
        assert!(candidates.len() > 26);
    }

    #[test]
    fn self_test_sessions_serialize_per_wrapper() {
        let soc = soc();
        let bist = 50_000u64;
        let mut with = Planner::with_options(
            &soc,
            PlannerOptions {
                effort: Effort::Quick,
                self_test_cycles: Some(bist),
                ..PlannerOptions::default()
            },
        );
        let mut without = quick_planner(&soc);
        let weights = CostWeights::balanced();

        // One wrapper: one BIST session; five wrappers: five sessions.
        let all = SharingConfig::all_shared(5);
        let none = SharingConfig::no_sharing(5);
        let t_all_with = with.evaluate(&all, 16, weights).unwrap().makespan;
        let t_all_without = without.evaluate(&all, 16, weights).unwrap().makespan;
        assert!(t_all_with >= t_all_without + bist);

        // The problem gains exactly wrapper_count() extra jobs.
        let p = with.build_problem(&none, 16);
        let selftests = p.jobs.iter().filter(|j| j.label.starts_with("selftest")).count();
        assert_eq!(selftests, 5);
        let p = with.build_problem(&all, 16);
        let selftests = p.jobs.iter().filter(|j| j.label.starts_with("selftest")).count();
        assert_eq!(selftests, 1);
    }

    #[test]
    fn incompatible_policy_surfaces_as_plan_error() {
        let soc = soc();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions {
                effort: Effort::Quick,
                sharing_policy: SharingPolicy { beta: 0.2, max_demand: Some(1e10) },
                ..PlannerOptions::default()
            },
        );
        match p.exhaustive(16, CostWeights::balanced()) {
            Err(PlanError::Incompatible(_)) => {}
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }
}
