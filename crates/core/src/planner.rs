//! The test planner: exhaustive evaluation and the paper's
//! `Cost_Optimizer` heuristic (Fig. 3).

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use msoc_awrapper::{analog_delta_jobs, AreaModel, IncompatibleSharing, SharingPolicy};
use msoc_tam::{
    bounds, Effort, Engine, PackSession, Schedule, ScheduleError, ScheduleProblem, SessionStats,
    TestJob,
};
use msoc_wrapper::Staircase;

use crate::cost::{self, CostWeights};
use crate::partition::{self, SharingConfig};
use crate::soc::MixedSignalSoc;

/// Which sharing configurations the planner considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Enumeration {
    /// The paper's 26-configuration candidate set (shapes
    /// `{2}`, `{3}`, `{4}`, `{3,2}`, `{n}`).
    #[default]
    Paper,
    /// Every set partition of the analog cores, including no-sharing and
    /// the `{2,2,…}` shapes the paper omits.
    All,
}

/// Planner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerOptions {
    /// Wrapper area model (default: the calibrated paper areas).
    pub area_model: AreaModel,
    /// Sharing policy: routing factor β and compatibility cap.
    pub sharing_policy: SharingPolicy,
    /// Scheduling effort per configuration.
    pub effort: Effort,
    /// Packing engine for every schedule the planner builds. The default
    /// skyline engine and the naive reference produce identical schedules;
    /// the knob exists for A/B benchmarking.
    pub engine: Engine,
    /// Candidate enumeration mode.
    pub enumeration: Enumeration,
    /// When set, every wrapper additionally runs a converter BIST session
    /// of this many cycles in self-test mode, serialized with the
    /// wrapper's core tests on one TAM wire. The paper excludes self-test
    /// time from its tables (its Section 6) and lists converter BIST as
    /// future work; this option quantifies it: sharing then saves test
    /// time too, because fewer wrappers mean fewer BIST sessions.
    pub self_test_cycles: Option<u64>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            area_model: AreaModel::paper_calibrated(),
            sharing_policy: SharingPolicy::default(),
            effort: Effort::Standard,
            engine: Engine::default(),
            enumeration: Enumeration::Paper,
            self_test_cycles: None,
        }
    }
}

/// A fully evaluated sharing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedConfig {
    /// The configuration.
    pub config: SharingConfig,
    /// Scheduled SOC test time in cycles.
    pub makespan: u64,
    /// `C_T`: makespan normalized to the all-share configuration (× 100).
    pub time_cost: f64,
    /// `C_A`: area overhead cost (paper eq. 1).
    pub area_cost: f64,
    /// `C = W_T·C_T + W_A·C_A`.
    pub total_cost: f64,
}

/// The result of a planning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The minimum-cost configuration found.
    pub best: EvaluatedConfig,
    /// Number of TAM-optimizer evaluations spent on candidates (the
    /// all-share normalization baseline is not counted, matching the
    /// paper's Table 4 accounting).
    pub evaluations: usize,
    /// Number of candidate configurations considered.
    pub candidates: usize,
    /// The winning schedule.
    pub schedule: Schedule,
    /// TAM width the plan was made for.
    pub tam_width: u32,
    /// The cost weights used.
    pub weights: CostWeights,
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The SOC has no analog cores to plan for.
    NoAnalogCores,
    /// A test needs more TAM wires than the SOC-level TAM provides.
    Schedule(ScheduleError),
    /// A candidate wrapper group violates the sharing compatibility cap.
    Incompatible(IncompatibleSharing),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoAnalogCores => write!(f, "the SOC has no analog cores"),
            PlanError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PlanError::Incompatible(e) => write!(f, "incompatible sharing: {e}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::NoAnalogCores => None,
            PlanError::Schedule(e) => Some(e),
            PlanError::Incompatible(e) => Some(e),
        }
    }
}

impl From<ScheduleError> for PlanError {
    fn from(e: ScheduleError) -> Self {
        PlanError::Schedule(e)
    }
}

impl From<IncompatibleSharing> for PlanError {
    fn from(e: IncompatibleSharing) -> Self {
        PlanError::Incompatible(e)
    }
}

/// Aggregate scheduling-reuse statistics of a planner (see
/// [`Planner::stats`]).
///
/// The session counters aggregate over the planner's per-width
/// [`PackSession`]s; `width_bound_prunes` counts widths a
/// [`Planner::best_width_for`] sweep skipped entirely because their
/// area/width lower bound already exceeded the incumbent makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Skeleton checkpoint lookups served from a session cache.
    pub skeleton_hits: u64,
    /// Skeleton orderings packed from scratch across all sessions.
    pub skeleton_misses: u64,
    /// Completed candidate delta packs across all sessions.
    pub delta_packs: u64,
    /// Delta passes abandoned by the in-pack lower-bound prune.
    pub pruned_passes: u64,
    /// Widths skipped before any packing by the width-sweep bound prune.
    pub width_bound_prunes: u64,
}

/// The mixed-signal test planner.
///
/// Drives every candidate × width sweep through per-width
/// [`PackSession`]s: the digital skeleton of a width is packed once per
/// ordering, and each of the ~26 sharing candidates only delta-packs its
/// analog wrapper jobs on a restored snapshot. On top of the sessions the
/// planner holds per-(configuration, width) schedule and makespan caches,
/// so exhaustive runs, heuristic runs and table sweeps share scheduling
/// work across candidate configurations *and* across TAM widths of the
/// same sweep. Batches of independent delta packs (the candidate × width
/// loops that dominate planning wall time) run in parallel via
/// [`msoc_par`], with a deterministic in-order reduction so parallel runs
/// are bit-identical to serial ones — and session packs are bit-identical
/// to from-scratch `schedule_with_engine` calls by construction.
#[derive(Debug)]
pub struct Planner<'a> {
    soc: &'a MixedSignalSoc,
    opts: PlannerOptions,
    sessions: HashMap<u32, PackSession>,
    makespans: HashMap<(SharingConfig, u32), u64>,
    schedules: HashMap<(SharingConfig, u32), Schedule>,
    /// Schedule-cache keys that survive per-sweep pruning (report winners
    /// and the all-share baseline).
    pinned: HashSet<(SharingConfig, u32)>,
    width_bound_prunes: u64,
}

impl<'a> Planner<'a> {
    /// Creates a planner with default options.
    pub fn new(soc: &'a MixedSignalSoc) -> Self {
        Planner::with_options(soc, PlannerOptions::default())
    }

    /// Creates a planner with explicit options.
    pub fn with_options(soc: &'a MixedSignalSoc, opts: PlannerOptions) -> Self {
        Planner {
            soc,
            opts,
            sessions: HashMap::new(),
            makespans: HashMap::new(),
            schedules: HashMap::new(),
            pinned: HashSet::new(),
            width_bound_prunes: 0,
        }
    }

    /// The pack session for width `w`, created on first use: its skeleton
    /// is the sweep-invariant digital job set (one job per digital core,
    /// full Pareto staircase up to `w`).
    fn session(&mut self, w: u32) -> &PackSession {
        let (soc, effort, engine) = (&self.soc, self.opts.effort, self.opts.engine);
        self.sessions.entry(w).or_insert_with(|| {
            let skeleton: Vec<TestJob> = soc
                .digital
                .cores()
                .map(|m| TestJob::new(format!("m{}", m.id), Staircase::for_module(m, w)))
                .collect();
            PackSession::new(w, skeleton, effort, engine)
        })
    }

    /// The per-candidate delta jobs: one grouped job per analog test plus
    /// optional per-wrapper self-test sessions.
    fn delta_jobs(&self, config: &SharingConfig) -> Vec<TestJob> {
        analog_delta_jobs(
            &self.soc.analog,
            &config.assignment(),
            config.wrapper_count(),
            self.opts.self_test_cycles,
        )
    }

    /// Aggregate reuse statistics over the planner's sessions plus the
    /// planner-level width-sweep prunes.
    pub fn stats(&self) -> PlanStats {
        let mut out =
            PlanStats { width_bound_prunes: self.width_bound_prunes, ..Default::default() };
        for session in self.sessions.values() {
            let SessionStats { skeleton_hits, skeleton_misses, delta_packs, pruned_passes } =
                session.stats();
            out.skeleton_hits += skeleton_hits;
            out.skeleton_misses += skeleton_misses;
            out.delta_packs += delta_packs;
            out.pruned_passes += pruned_passes;
        }
        out
    }

    /// The candidate sharing configurations under the planner's
    /// enumeration mode.
    pub fn candidates(&self) -> Vec<SharingConfig> {
        let classes = self.soc.analog_equivalence_classes();
        match self.opts.enumeration {
            Enumeration::Paper => partition::enumerate_paper(self.soc.analog.len(), &classes),
            Enumeration::All => partition::enumerate_bell(self.soc.analog.len(), &classes),
        }
    }

    /// Builds the schedule problem for a configuration at TAM width `w`:
    /// one skeleton job per digital core (full staircase) plus one delta
    /// job per analog test (fixed width and time), grouped by wrapper —
    /// exactly the problem the width's [`PackSession`] delta-packs.
    pub fn build_problem(&mut self, config: &SharingConfig, w: u32) -> ScheduleProblem {
        let delta = self.delta_jobs(config);
        self.session(w).problem_for(&delta)
    }

    /// Schedules a configuration (cached) and returns its makespan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn makespan(&mut self, config: &SharingConfig, w: u32) -> Result<u64, PlanError> {
        if let Some(&m) = self.makespans.get(&(config.clone(), w)) {
            return Ok(m);
        }
        self.schedule_batch(std::slice::from_ref(config), w)?;
        Ok(self.makespans[&(config.clone(), w)])
    }

    /// Schedules every configuration in `configs` at width `w` into the
    /// caches, fanning uncached ones out over the available cores.
    ///
    /// The candidate × width evaluation loops are where planning spends
    /// its wall time (each evaluation is a full multi-start pack), and the
    /// configurations are independent, so this is the planner's main
    /// parallel section. Results land in the same caches the serial path
    /// reads and errors surface in input order, keeping every downstream
    /// decision bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] for the first (in input order)
    /// configuration whose problem cannot be scheduled.
    pub fn schedule_batch(&mut self, configs: &[SharingConfig], w: u32) -> Result<(), PlanError> {
        let mut pending: Vec<(SharingConfig, Vec<TestJob>)> = Vec::new();
        for config in configs {
            let key = (config.clone(), w);
            if self.makespans.contains_key(&key) || pending.iter().any(|(c, _)| c == config) {
                continue;
            }
            let delta = self.delta_jobs(config);
            pending.push((config.clone(), delta));
        }
        self.session(w);
        let session = &self.sessions[&w];
        // Warm the base skeleton checkpoints before fanning out, so the
        // concurrent candidate packs below hit a hot cache instead of all
        // racing to pack the same orderings.
        if !pending.is_empty() {
            session.warm();
        }
        let scheduled = msoc_par::map(&pending, |_, (_, delta)| session.pack(delta));
        for ((config, _), result) in pending.into_iter().zip(scheduled) {
            let schedule = result?;
            self.makespans.insert((config.clone(), w), schedule.makespan());
            // Full schedules are kept only until the sweep's report prunes
            // the losers (see `report`): every candidate is packed once,
            // but only pinned entries survive across sweeps.
            self.schedules.insert((config, w), schedule);
        }
        Ok(())
    }

    /// The full schedule for one configuration (cached and pinned).
    ///
    /// Pinned schedules — the report winner and the all-share baseline —
    /// survive the per-sweep pruning in `report`, so the retained cache
    /// stays small even across Bell-enumeration sweeps while the sweep
    /// itself never packs a configuration twice.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn schedule_for(&mut self, config: &SharingConfig, w: u32) -> Result<&Schedule, PlanError> {
        let key = (config.clone(), w);
        if !self.schedules.contains_key(&key) {
            let delta = self.delta_jobs(config);
            let schedule = self.session(w).pack(&delta)?;
            self.makespans.insert(key.clone(), schedule.makespan());
            self.schedules.insert(key.clone(), schedule);
        }
        self.pinned.insert(key.clone());
        Ok(&self.schedules[&key])
    }

    /// Finds the width in `widths` minimizing the scheduled makespan of
    /// `config`, reusing bounds across the sweep: a width whose
    /// schedule-independent lower bound (area/width, critical job, wrapper
    /// chain) already *strictly* exceeds the incumbent best makespan is
    /// pruned before any packing. The prune is exact — a pruned width
    /// provably cannot beat or tie the incumbent — so the returned winner
    /// (ties resolved to the earliest width in `widths`) is identical to
    /// the unpruned sweep's. Pruned widths are counted in
    /// [`PlanStats::width_bound_prunes`].
    ///
    /// Sweeping from wide to narrow maximizes pruning: the wide widths set
    /// a strong incumbent and the narrow widths' area bounds blow past it.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM at
    /// some unpruned width. `widths` must be non-empty.
    pub fn best_width_for(
        &mut self,
        config: &SharingConfig,
        widths: &[u32],
    ) -> Result<(u32, u64), PlanError> {
        assert!(!widths.is_empty(), "best_width_for needs at least one width");
        let mut best: Option<(u32, u64)> = None;
        let delta = self.delta_jobs(config);
        for &w in widths {
            if let Some((_, incumbent)) = best {
                // Bound straight from the session skeleton + delta slices;
                // no job cloning for a width that may be pruned.
                let jobs = self.session(w).skeleton().iter().chain(delta.iter());
                if bounds::lower_bound_for(jobs, w) > incumbent {
                    self.width_bound_prunes += 1;
                    continue;
                }
            }
            let makespan = self.makespan(config, w)?;
            if best.is_none_or(|(_, m)| makespan < m) {
                best = Some((w, makespan));
            }
        }
        Ok(best.expect("at least one width is evaluated"))
    }

    /// The normalization time `T_max(w)`: the makespan of the all-share
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Schedule`] when a test cannot fit the TAM.
    pub fn t_max(&mut self, w: u32) -> Result<u64, PlanError> {
        self.makespan(&SharingConfig::all_shared(self.soc.analog.len()), w)
    }

    /// Fully evaluates one configuration at width `w`.
    ///
    /// The makespan is capped at `T_max`: every sharing partition refines
    /// the all-share partition (its serialization constraints are a
    /// subset), so the all-share schedule is feasible for every
    /// configuration and `C_T ≤ 100` always holds. Without the cap,
    /// greedy-scheduler noise could rank a configuration a fraction of a
    /// percent above the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] on scheduling failure or incompatible sharing.
    pub fn evaluate(
        &mut self,
        config: &SharingConfig,
        w: u32,
        weights: CostWeights,
    ) -> Result<EvaluatedConfig, PlanError> {
        let c_a = cost::area_cost(
            config,
            &self.soc.analog,
            &self.opts.area_model,
            &self.opts.sharing_policy,
        )?;
        let t_max = self.t_max(w)?;
        let makespan = self.makespan(config, w)?.min(t_max);
        let c_t = cost::time_cost(makespan, t_max);
        Ok(EvaluatedConfig {
            config: config.clone(),
            makespan,
            time_cost: c_t,
            area_cost: c_a,
            total_cost: weights.blend(c_t, c_a),
        })
    }

    /// Exhaustive baseline: evaluates every candidate configuration and
    /// returns the best, with `evaluations == candidates`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the SOC has no analog cores, a test
    /// cannot fit the TAM, or a candidate violates the sharing policy.
    pub fn exhaustive(&mut self, w: u32, weights: CostWeights) -> Result<PlanReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        let candidates = self.candidates();
        let n = candidates.len();
        // Normalization baseline first (it caps every C_T), then the whole
        // candidate set in one parallel batch; the best-cost fold below
        // then runs entirely on cache hits, in candidate order.
        self.t_max(w)?;
        self.schedule_batch(&candidates, w)?;
        let mut best: Option<EvaluatedConfig> = None;
        for config in &candidates {
            let eval = self.evaluate(config, w, weights)?;
            if best.as_ref().is_none_or(|b| eval.total_cost < b.total_cost) {
                best = Some(eval);
            }
        }
        self.report(best.expect("candidate set is never empty"), n, n, w, weights)
    }

    /// The paper's `Cost_Optimizer` heuristic (its Fig. 3).
    ///
    /// Configurations are grouped by shape (degree of sharing); each
    /// group's preliminary-cost minimizer is evaluated fully; groups whose
    /// representative costs more than `delta` above the best surviving
    /// representative are eliminated; remaining groups are evaluated
    /// fully. The all-share configuration is the normalization baseline:
    /// its schedule is computed for `T_max` and its cost participates in
    /// the final comparison, but it costs no extra evaluation — matching
    /// the paper's evaluation accounting in Table 4.
    ///
    /// `delta = 0` reproduces the paper's experiments; larger values trade
    /// evaluations for a better optimality guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the SOC has no analog cores, a test
    /// cannot fit the TAM, or a candidate violates the sharing policy.
    pub fn cost_optimizer(
        &mut self,
        w: u32,
        weights: CostWeights,
        delta: f64,
    ) -> Result<PlanReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        let candidates = self.candidates();
        let n_candidates = candidates.len();
        let all_shared = SharingConfig::all_shared(self.soc.analog.len());

        // Line 1: group by degree of sharing; the all-share baseline (and,
        // in `All` mode, the no-sharing reference) stay out of the groups.
        let groups: Vec<Vec<SharingConfig>> = partition::group_by_shape(
            candidates.into_iter().filter(|c| *c != all_shared && c.has_sharing()).collect(),
        );

        // Baseline: schedule the all-share configuration for T_max; its
        // own cost comes along for free.
        let mut best = self.evaluate(&all_shared, w, weights)?;
        let mut evaluations = 0usize;

        // Lines 2–9: pick each group's preliminary-cost minimizer (pure
        // arithmetic, serial), then schedule all representatives in one
        // parallel batch before evaluating them in group order.
        let mut rep_configs: Vec<SharingConfig> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut rep: Option<(&SharingConfig, f64)> = None;
            for config in group {
                let prelim = cost::preliminary_cost(
                    config,
                    &self.soc.analog,
                    &self.opts.area_model,
                    &self.opts.sharing_policy,
                    weights,
                )?;
                if rep.is_none_or(|(_, c)| prelim < c) {
                    rep = Some((config, prelim));
                }
            }
            let (config, _) = rep.expect("groups are non-empty");
            rep_configs.push(config.clone());
        }
        self.schedule_batch(&rep_configs, w)?;
        let mut reps: Vec<(usize, EvaluatedConfig)> = Vec::new();
        for (g_idx, config) in rep_configs.iter().enumerate() {
            let eval = self.evaluate(config, w, weights)?;
            evaluations += 1;
            reps.push((g_idx, eval));
        }

        // Lines 10–17: keep the groups whose representative is within
        // `delta` of the best representative.
        let c_star = reps.iter().map(|(_, e)| e.total_cost).fold(f64::INFINITY, f64::min);
        // Schedule every surviving group's remaining members in one
        // parallel batch, then fold costs serially in group order.
        let survivors: Vec<SharingConfig> = reps
            .iter()
            .filter(|(_, rep_eval)| rep_eval.total_cost - c_star <= delta)
            .flat_map(|&(g_idx, ref rep_eval)| {
                groups[g_idx].iter().filter(|c| **c != rep_eval.config).cloned()
            })
            .collect();
        self.schedule_batch(&survivors, w)?;
        for (g_idx, rep_eval) in reps {
            let survives = rep_eval.total_cost - c_star <= delta;
            if rep_eval.total_cost < best.total_cost {
                best = rep_eval.clone();
            }
            if !survives {
                continue;
            }
            // Line 18: full evaluation of the surviving group's remaining
            // members.
            for config in &groups[g_idx] {
                if *config == rep_eval.config {
                    continue;
                }
                let eval = self.evaluate(config, w, weights)?;
                evaluations += 1;
                if eval.total_cost < best.total_cost {
                    best = eval;
                }
            }
        }

        self.report(best, evaluations, n_candidates, w, weights)
    }

    fn report(
        &mut self,
        best: EvaluatedConfig,
        evaluations: usize,
        candidates: usize,
        w: u32,
        weights: CostWeights,
    ) -> Result<PlanReport, PlanError> {
        let mut schedule = self.schedule_for(&best.config, w)?.clone();
        let mut swapped = false;
        if schedule.makespan() > best.makespan {
            // The evaluation was capped at T_max (see `evaluate`); the
            // all-share schedule realizes that bound and is feasible for
            // every configuration, so hand that one out instead. (It is
            // not validated against the winner's problem: with self-test
            // sessions enabled the two problems have different job sets.)
            let all = SharingConfig::all_shared(self.soc.analog.len());
            let all_schedule = self.schedule_for(&all, w)?;
            if all_schedule.makespan() < schedule.makespan() {
                schedule = all_schedule.clone();
                swapped = true;
            }
        }
        debug_assert!(
            swapped || {
                let problem = self.build_problem(&best.config, w);
                schedule.validate(&problem).is_ok()
            },
            "winning schedule must validate against its own problem"
        );
        // Drop the sweep's losing schedules; only pinned entries (report
        // winners and the all-share baseline) are read back later.
        let pinned = &self.pinned;
        self.schedules.retain(|key, _| pinned.contains(key));
        Ok(PlanReport { best, evaluations, candidates, schedule, tam_width: w, weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A light mixed SOC: d695s digital plus the five paper analog cores.
    fn soc() -> MixedSignalSoc {
        MixedSignalSoc::d695m()
    }

    fn quick_planner(soc: &MixedSignalSoc) -> Planner<'_> {
        Planner::with_options(
            soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        )
    }

    #[test]
    fn all_share_time_cost_is_100() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let all = SharingConfig::all_shared(5);
        let eval = p.evaluate(&all, 16, CostWeights::balanced()).unwrap();
        assert!((eval.time_cost - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_covers_all_26_candidates() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let report = p.exhaustive(16, CostWeights::balanced()).unwrap();
        assert_eq!(report.candidates, 26);
        assert_eq!(report.evaluations, 26);
        report
            .schedule
            .validate(&p.build_problem(&report.best.config, 16))
            .expect("winning schedule must validate");
    }

    #[test]
    fn heuristic_uses_fewer_evaluations_and_matches_exhaustive_cost_closely() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let exhaustive = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let heuristic = p.cost_optimizer(16, CostWeights::balanced(), 0.0).unwrap();
        assert!(heuristic.evaluations < exhaustive.evaluations);
        assert!(heuristic.best.total_cost >= exhaustive.best.total_cost - 1e-9);
        // The paper finds the heuristic optimal in all but one case; on
        // this instance demand near-optimality.
        assert!(
            heuristic.best.total_cost <= exhaustive.best.total_cost * 1.05,
            "heuristic {} vs exhaustive {}",
            heuristic.best.total_cost,
            exhaustive.best.total_cost
        );
    }

    #[test]
    fn relaxed_delta_recovers_the_exhaustive_optimum() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let exhaustive = p.exhaustive(16, CostWeights::area_heavy()).unwrap();
        let relaxed = p.cost_optimizer(16, CostWeights::area_heavy(), f64::INFINITY).unwrap();
        assert!((relaxed.best.total_cost - exhaustive.best.total_cost).abs() < 1e-9);
    }

    #[test]
    fn heuristic_evaluation_count_matches_paper_accounting() {
        // 4 group representatives + (|winning group| − 1) extra members.
        let soc = soc();
        let mut p = quick_planner(&soc);
        let report = p.cost_optimizer(16, CostWeights::balanced(), 0.0).unwrap();
        let possible = [4 + 6, 4 + 3]; // {3,2}/pairs/triples (7) or quads (4)
        assert!(
            possible.contains(&report.evaluations),
            "unexpected evaluation count {}",
            report.evaluations
        );
    }

    #[test]
    fn sweep_reuses_the_digital_skeleton_across_candidates() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let _ = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let stats = p.stats();
        assert_eq!(stats.delta_packs, 26, "one delta pack per candidate: {stats:?}");
        assert!(stats.skeleton_hits >= 20, "sweep must reuse skeleton checkpoints: {stats:?}");
        assert!(
            stats.skeleton_hits > stats.skeleton_misses,
            "reuse should dominate packing: {stats:?}"
        );
    }

    #[test]
    fn session_packs_match_from_scratch_schedules() {
        use msoc_tam::schedule_with_engine;
        let soc = soc();
        for engine in [Engine::Skyline, Engine::Naive] {
            let mut p = Planner::with_options(
                &soc,
                PlannerOptions { effort: Effort::Quick, engine, ..PlannerOptions::default() },
            );
            for config in [
                SharingConfig::all_shared(5),
                SharingConfig::new(5, vec![vec![0, 1], vec![2, 3], vec![4]]),
            ] {
                let via_session = p.schedule_for(&config, 16).unwrap().clone();
                let problem = p.build_problem(&config, 16);
                let scratch = schedule_with_engine(&problem, Effort::Quick, engine).unwrap();
                assert_eq!(via_session, scratch, "session diverged for {config} ({engine:?})");
            }
        }
    }

    #[test]
    fn best_width_prunes_hopeless_widths_without_changing_the_winner() {
        // p93791m is area-bound dominated (no single digital core dwarfs
        // the rest), so the narrow widths' area/width bound blows past the
        // wide incumbent; d695m's dominant core would never let the bound
        // exceed any incumbent.
        let soc = MixedSignalSoc::p93791m();
        let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
        // Wide-to-narrow: W=64 sets the incumbent, the narrow tail width's
        // area bound exceeds it and is skipped before packing.
        let widths = [64, 16];
        let mut pruned = quick_planner(&soc);
        let (w_pruned, m_pruned) = pruned.best_width_for(&config, &widths).unwrap();
        let mut full = quick_planner(&soc);
        let best_full = widths
            .iter()
            .map(|&w| (w, full.makespan(&config, w).unwrap()))
            .min_by_key(|&(_, m)| m)
            .unwrap();
        assert_eq!((w_pruned, m_pruned), best_full);
        assert_eq!(
            pruned.stats().width_bound_prunes,
            1,
            "the narrow width should be pruned: {:?}",
            pruned.stats()
        );
        assert_eq!(full.stats().width_bound_prunes, 0);
    }

    #[test]
    fn makespans_are_cached_across_runs() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        let _ = p.exhaustive(16, CostWeights::balanced()).unwrap();
        let cached = p.makespans.len();
        let _ = p.exhaustive(16, CostWeights::time_heavy()).unwrap();
        assert_eq!(p.makespans.len(), cached, "second sweep must reuse the cache");
    }

    #[test]
    fn no_analog_cores_is_an_error() {
        let soc = MixedSignalSoc::new("dig", msoc_itc02::synth::d695s(), vec![]);
        let mut p = quick_planner(&soc);
        match p.exhaustive(16, CostWeights::balanced()) {
            Err(PlanError::NoAnalogCores) => {}
            other => panic!("expected NoAnalogCores, got {other:?}"),
        }
    }

    #[test]
    fn too_narrow_tam_reports_schedule_error() {
        let soc = soc();
        let mut p = quick_planner(&soc);
        // Core D needs 10 wires for its IIP3 test.
        match p.exhaustive(8, CostWeights::balanced()) {
            Err(PlanError::Schedule(_)) => {}
            other => panic!("expected Schedule error, got {other:?}"),
        }
    }

    #[test]
    fn bell_enumeration_includes_no_sharing() {
        let soc = soc();
        let p = Planner::with_options(
            &soc,
            PlannerOptions { enumeration: Enumeration::All, ..PlannerOptions::default() },
        );
        let candidates = p.candidates();
        assert!(candidates.contains(&SharingConfig::no_sharing(5)));
        assert!(candidates.len() > 26);
    }

    #[test]
    fn self_test_sessions_serialize_per_wrapper() {
        let soc = soc();
        let bist = 50_000u64;
        let mut with = Planner::with_options(
            &soc,
            PlannerOptions {
                effort: Effort::Quick,
                self_test_cycles: Some(bist),
                ..PlannerOptions::default()
            },
        );
        let mut without = quick_planner(&soc);
        let weights = CostWeights::balanced();

        // One wrapper: one BIST session; five wrappers: five sessions.
        let all = SharingConfig::all_shared(5);
        let none = SharingConfig::no_sharing(5);
        let t_all_with = with.evaluate(&all, 16, weights).unwrap().makespan;
        let t_all_without = without.evaluate(&all, 16, weights).unwrap().makespan;
        assert!(t_all_with >= t_all_without + bist);

        // The problem gains exactly wrapper_count() extra jobs.
        let p = with.build_problem(&none, 16);
        let selftests = p.jobs.iter().filter(|j| j.label.starts_with("selftest")).count();
        assert_eq!(selftests, 5);
        let p = with.build_problem(&all, 16);
        let selftests = p.jobs.iter().filter(|j| j.label.starts_with("selftest")).count();
        assert_eq!(selftests, 1);
    }

    #[test]
    fn incompatible_policy_surfaces_as_plan_error() {
        let soc = soc();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions {
                effort: Effort::Quick,
                sharing_policy: SharingPolicy { beta: 0.2, max_demand: Some(1e10) },
                ..PlannerOptions::default()
            },
        );
        match p.exhaustive(16, CostWeights::balanced()) {
            Err(PlanError::Incompatible(_)) => {}
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }
}
