//! Shared measurement primitives: allocation-free latency histograms.
//!
//! This used to live in the `msoc-bench` harness; the `msoc_net` server
//! records per-outcome request latencies with the same histogram, so the
//! type now lives here and `msoc_bench` re-exports it.

/// A log2-bucketed latency histogram: fixed 64-bucket storage, no
/// allocation on [`record`](Self::record), mergeable across threads.
///
/// Bucket `i` covers values `v` with `floor(log2(max(v, 1))) == i`, i.e.
/// `[2^i, 2^(i+1))` (bucket 0 also takes `v = 0`). Quantiles come back as
/// the **upper bound** of the bucket holding that rank — pessimistic by at
/// most 2×, which is the right bias for latency reporting and keeps the
/// histogram O(1) in space regardless of sample count. Per-submitter
/// histograms merge associatively, so a multi-threaded load harness
/// records locally (no shared cache line) and merges once at the end.
///
/// # Examples
///
/// ```
/// let mut h = msoc_core::LatencyHistogram::new();
/// for us in [3u64, 5, 9, 1000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0 }
    }

    /// Records one sample (any unit; callers here use microseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[value.max(1).ilog2() as usize] += 1;
        self.count += 1;
    }

    /// Total samples recorded (including merged ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one (commutative, associative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The value at quantile `q` in `[0, 1]` (upper bucket bound, so e.g.
    /// `quantile(0.99)` is a ≤2× pessimistic p99). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_log2_exact() {
        // Each power of two opens a new bucket; the value just below it
        // still reports the previous bucket's upper bound.
        for shift in 1..63u32 {
            let low = 1u64 << shift;
            let mut h = LatencyHistogram::new();
            h.record(low - 1);
            assert_eq!(h.quantile(1.0), low - 1, "value {} closes bucket {}", low - 1, shift - 1);
            let mut h2 = LatencyHistogram::new();
            h2.record(low);
            assert_eq!(h2.quantile(1.0), 2 * low - 1, "at {low}");
        }
        // Zero and one share bucket 0 (upper bound 1).
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(1.0), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_quantiles_walk_the_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 16) → upper bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1024) → upper bound 1023
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        assert_eq!(h.quantile(0.95), 1023);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(LatencyHistogram::new().quantile(0.99), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_is_associative_and_matches_single_recording() {
        let samples: Vec<u64> = (0..300).map(|i| (i * 37 + 11) % 5000).collect();
        let mut whole = LatencyHistogram::new();
        let (mut a, mut b, mut c) =
            (LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new());
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            [&mut a, &mut b, &mut c][i % 3].record(v);
        }
        // (a ∪ b) ∪ c == a ∪ (b ∪ c) == whole
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut right = b;
        right.merge(&c);
        let mut right_total = a;
        right_total.merge(&right);
        assert_eq!(left, right_total);
        assert_eq!(left, whole);
        assert_eq!(left.count(), samples.len() as u64);
    }
}
