//! Wrapper-sharing configurations (set partitions of the analog cores).
//!
//! A [`SharingConfig`] partitions the analog cores into wrapper groups:
//! every group of size ≥ 2 time-multiplexes one shared wrapper, singleton
//! groups keep dedicated wrappers. The paper evaluates 26 configurations
//! for its five cores — every partition of shape `{2,1,1,1}`, `{3,1,1}`,
//! `{4,1}`, `{3,2}` or `{5}`, with the identical cores A and B counted once
//! ([`enumerate_paper`]). [`enumerate_bell`] produces *all* set partitions
//! (including the `{2,2,1}` shapes and the no-sharing partition the paper
//! leaves out) for the extension experiments.

use std::fmt;

/// A wrapper-sharing configuration: a partition of analog-core indices
/// into wrapper groups.
///
/// Stored canonically: each group ascending, groups ordered by descending
/// size then by first member. [`fmt::Display`] renders groups of cores
/// `0..26` with the paper's letters, e.g. `{A,B,E}{C,D}` (singletons are
/// left implicit, matching the paper's tables; the all-singleton partition
/// renders as `no-sharing`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SharingConfig {
    groups: Vec<Vec<usize>>,
    n_cores: usize,
}

impl SharingConfig {
    /// Builds a configuration from groups over cores `0..n_cores`.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` is an exact partition of `0..n_cores`.
    pub fn new(n_cores: usize, groups: Vec<Vec<usize>>) -> Self {
        let mut seen = vec![false; n_cores];
        for g in &groups {
            assert!(!g.is_empty(), "empty wrapper group");
            for &c in g {
                assert!(c < n_cores, "core index {c} out of range {n_cores}");
                assert!(!std::mem::replace(&mut seen[c], true), "core {c} in two groups");
            }
        }
        assert!(seen.iter().all(|&s| s), "every core needs a wrapper group");
        let mut groups: Vec<Vec<usize>> = groups
            .into_iter()
            .map(|mut g| {
                g.sort_unstable();
                g
            })
            .collect();
        groups.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        SharingConfig { groups, n_cores }
    }

    /// The partition with every core on its own wrapper (the `C_A = 100`
    /// reference of the paper's eq. 1).
    pub fn no_sharing(n_cores: usize) -> Self {
        SharingConfig::new(n_cores, (0..n_cores).map(|c| vec![c]).collect())
    }

    /// The partition with all cores on one wrapper (the paper's most
    /// time-constrained configuration, used to normalize `C_T`).
    pub fn all_shared(n_cores: usize) -> Self {
        SharingConfig::new(n_cores, vec![(0..n_cores).collect()])
    }

    /// The wrapper groups, canonically ordered.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of analog cores the configuration covers.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Number of wrappers used (the paper's *degree of sharing* key:
    /// fewer wrappers = more sharing).
    pub fn wrapper_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether any wrapper is shared by two or more cores.
    pub fn has_sharing(&self) -> bool {
        self.groups.iter().any(|g| g.len() >= 2)
    }

    /// The wrapper-group index of each core: `assignment()[core] = group`.
    pub fn assignment(&self) -> Vec<usize> {
        let mut a = vec![0; self.n_cores];
        for (g_idx, g) in self.groups.iter().enumerate() {
            for &c in g {
                a[c] = g_idx;
            }
        }
        a
    }

    /// The *shape* of the configuration: the sizes of its shared groups
    /// (size ≥ 2), descending. Pairs have shape `[2]`, the paper's
    /// two-wrapper splits `[3, 2]`, the no-sharing partition `[]`.
    ///
    /// Configurations of equal shape have comparable area overhead, which
    /// is the paper's *degree of sharing* grouping key for the
    /// `Cost_Optimizer` heuristic.
    pub fn shape(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.groups.iter().map(Vec::len).filter(|&len| len >= 2).collect();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }

    /// A canonical signature under exchange of equivalent cores:
    /// `classes[c]` is the equivalence class of core `c` (e.g. identical
    /// cores A and B share a class). Two configurations with equal
    /// signatures are interchangeable for cost purposes.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len() != n_cores()`.
    pub fn signature(&self, classes: &[usize]) -> Vec<Vec<usize>> {
        assert_eq!(classes.len(), self.n_cores, "one class per core");
        let mut sig: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| {
                let mut s: Vec<usize> = g.iter().map(|&c| classes[c]).collect();
                s.sort_unstable();
                s
            })
            .collect();
        sig.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        sig
    }
}

impl fmt::Display for SharingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared: Vec<&Vec<usize>> = self.groups.iter().filter(|g| g.len() >= 2).collect();
        if shared.is_empty() {
            return write!(f, "no-sharing");
        }
        for g in shared {
            write!(f, "{{")?;
            for (i, &c) in g.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                if c < 26 {
                    write!(f, "{}", (b'A' + c as u8) as char)?;
                } else {
                    write!(f, "#{c}")?;
                }
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// Enumerates all set partitions of `0..n_cores` (Bell-number many),
/// deduplicated under the given core-equivalence `classes`.
///
/// Includes the no-sharing partition. Pass distinct classes (e.g.
/// `[0,1,2,..]`) to disable deduplication.
///
/// # Panics
///
/// Panics if `classes.len() != n_cores` or `n_cores == 0`.
pub fn enumerate_bell(n_cores: usize, classes: &[usize]) -> Vec<SharingConfig> {
    assert!(n_cores > 0, "need at least one analog core");
    assert_eq!(classes.len(), n_cores, "one class per core");
    let mut out: Vec<SharingConfig> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<Vec<usize>>> = Default::default();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    recurse(0, n_cores, &mut groups, &mut |gs| {
        let cfg = SharingConfig::new(n_cores, gs.to_vec());
        if seen.insert(cfg.signature(classes)) {
            out.push(cfg);
        }
    });
    out.sort();
    out
}

fn recurse(
    core: usize,
    n: usize,
    groups: &mut Vec<Vec<usize>>,
    emit: &mut impl FnMut(&[Vec<usize>]),
) {
    if core == n {
        emit(groups);
        return;
    }
    for i in 0..groups.len() {
        groups[i].push(core);
        recurse(core + 1, n, groups, emit);
        groups[i].pop();
    }
    groups.push(vec![core]);
    recurse(core + 1, n, groups, emit);
    groups.pop();
}

/// Enumerates the paper's candidate configurations: every partition whose
/// shape is `{2,1,…}`, `{3,1,…}`, `{4,1,…}`, `{3,2,1,…}` or `{n}`,
/// deduplicated under `classes`.
///
/// For five cores with two equivalent ones this yields exactly the 26
/// combinations of the paper's Table 1. The no-sharing partition and the
/// `{2,2,1}` shapes are excluded, as in the paper.
pub fn enumerate_paper(n_cores: usize, classes: &[usize]) -> Vec<SharingConfig> {
    enumerate_bell(n_cores, classes)
        .into_iter()
        .filter(|cfg| match cfg.shape().as_slice() {
            [s] => (2..=n_cores).contains(s),
            [3, 2] => true,
            _ => false,
        })
        .collect()
}

/// Groups configurations by [`SharingConfig::shape`] — the paper's
/// *degree of sharing* grouping for the `Cost_Optimizer` (Fig. 3, line 1).
///
/// Groups are ordered by their shape key. For the 26-configuration paper
/// set this yields the four groups the paper's evaluation counts imply —
/// pairs (7), triples (7), quads (4) and `{3,2}` splits (7) — plus the
/// singleton all-share group, which the optimizer treats as the
/// normalization baseline.
pub fn group_by_shape(configs: Vec<SharingConfig>) -> Vec<Vec<SharingConfig>> {
    let mut by_shape: std::collections::BTreeMap<Vec<usize>, Vec<SharingConfig>> =
        Default::default();
    for c in configs {
        by_shape.entry(c.shape()).or_default().push(c);
    }
    by_shape.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classes for the paper cores: A ≡ B.
    const PAPER_CLASSES: [usize; 5] = [0, 0, 1, 2, 3];
    /// All-distinct classes.
    const DISTINCT: [usize; 5] = [0, 1, 2, 3, 4];

    #[test]
    fn bell_counts_without_dedup() {
        // Bell numbers: B(1)=1, B(2)=2, B(3)=5, B(4)=15, B(5)=52.
        for (n, bell) in [(1usize, 1usize), (2, 2), (3, 5), (4, 15), (5, 52)] {
            let classes: Vec<usize> = (0..n).collect();
            assert_eq!(enumerate_bell(n, &classes).len(), bell, "B({n})");
        }
    }

    #[test]
    fn paper_enumeration_has_exactly_26_configs() {
        let configs = enumerate_paper(5, &PAPER_CLASSES);
        assert_eq!(configs.len(), 26);
        // Shape census: 7 pairs, 7 triples, 4 quads, 7 {3,2}, 1 all-share.
        let census = |shape: &[usize]| configs.iter().filter(|c| c.shape() == shape).count();
        assert_eq!(census(&[2]), 7);
        assert_eq!(census(&[3]), 7);
        assert_eq!(census(&[4]), 4);
        assert_eq!(census(&[3, 2]), 7);
        assert_eq!(census(&[5]), 1);
    }

    #[test]
    fn dedup_uses_equivalence_classes() {
        // Without dedup there are 10 pairs; with A≡B only 7 remain.
        let all = enumerate_paper(5, &DISTINCT);
        let pairs = |cfgs: &[SharingConfig]| {
            cfgs.iter()
                .filter(|c| {
                    c.groups().iter().filter(|g| g.len() == 2).count() == 1
                        && c.wrapper_count() == 4
                })
                .count()
        };
        assert_eq!(pairs(&all), 10);
        assert_eq!(pairs(&enumerate_paper(5, &PAPER_CLASSES)), 7);
    }

    #[test]
    fn display_matches_paper_notation() {
        let cfg = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
        assert_eq!(cfg.to_string(), "{A,B,E}{C,D}");
        assert_eq!(SharingConfig::no_sharing(3).to_string(), "no-sharing");
        assert_eq!(SharingConfig::all_shared(5).to_string(), "{A,B,C,D,E}");
    }

    #[test]
    fn canonical_form_is_order_insensitive() {
        let a = SharingConfig::new(4, vec![vec![2, 0], vec![3, 1]]);
        let b = SharingConfig::new(4, vec![vec![1, 3], vec![0, 2]]);
        assert_eq!(a, b);
    }

    #[test]
    fn assignment_inverts_groups() {
        let cfg = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
        let a = cfg.assignment();
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[4]);
        assert_eq!(a[2], a[3]);
        assert_ne!(a[0], a[2]);
    }

    #[test]
    fn shape_grouping_for_paper_set_matches_evaluation_counts() {
        let groups = group_by_shape(enumerate_paper(5, &PAPER_CLASSES));
        let sizes: Vec<(Vec<usize>, usize)> =
            groups.iter().map(|g| (g[0].shape(), g.len())).collect();
        // Pairs (7), triples (7), {3,2} splits (7), quads (4), all-share
        // (1, the baseline): these group sizes produce the paper's
        // evaluation counts of 10 = 4 + (7−1) and 7 = 4 + (4−1).
        assert_eq!(
            sizes,
            vec![(vec![2], 7), (vec![3], 7), (vec![3, 2], 7), (vec![4], 4), (vec![5], 1),]
        );
    }

    #[test]
    fn shape_of_special_partitions() {
        assert_eq!(SharingConfig::no_sharing(5).shape(), Vec::<usize>::new());
        assert_eq!(SharingConfig::all_shared(5).shape(), vec![5]);
        let cfg = SharingConfig::new(5, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(cfg.shape(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_panic() {
        SharingConfig::new(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "every core")]
    fn missing_core_panics() {
        SharingConfig::new(3, vec![vec![0, 1]]);
    }

    #[test]
    fn wrapper_count_and_sharing_flags() {
        assert_eq!(SharingConfig::all_shared(5).wrapper_count(), 1);
        assert_eq!(SharingConfig::no_sharing(5).wrapper_count(), 5);
        assert!(!SharingConfig::no_sharing(5).has_sharing());
        assert!(SharingConfig::all_shared(2).has_sharing());
    }
}
