//! Human-readable rendering of plan results.
//!
//! A [`PlanReport`](crate::PlanReport) carries everything a test engineer
//! needs — the chosen wrapper sharing, the cost breakdown and the
//! schedule — and this module turns it into the kind of summary the
//! paper's tables condense, plus CSV rows for downstream tooling.

use std::fmt::Write as _;

use crate::planner::{PlanReport, Planner};

/// Renders a multi-line summary of a plan: configuration, costs,
/// evaluation effort, analog placements and TAM utilization.
///
/// `planner` must be the planner that produced the report (it rebuilds
/// the schedule problem to recover job labels).
pub fn render_plan(planner: &mut Planner<'_>, report: &PlanReport) -> String {
    let problem = planner.build_problem(&report.best.config, report.tam_width);
    let mut out = String::new();
    let _ = writeln!(out, "wrapper sharing : {}", report.best.config);
    let _ = writeln!(out, "TAM width       : {}", report.tam_width);
    let _ = writeln!(out, "test time       : {} cycles", report.best.makespan);
    let _ = writeln!(
        out,
        "costs           : C_T {:.1}, C_A {:.1}, total {:.2} (W_T {:.2}/W_A {:.2})",
        report.best.time_cost,
        report.best.area_cost,
        report.best.total_cost,
        report.weights.time(),
        report.weights.area(),
    );
    let _ = writeln!(
        out,
        "evaluations     : {} of {} candidates",
        report.evaluations, report.candidates
    );
    let _ = writeln!(out, "utilization     : {:.1}%", report.schedule.utilization() * 100.0);
    let _ = writeln!(out, "analog schedule :");
    for e in report.schedule.entries() {
        let label = &problem.jobs[e.job].label;
        if problem.jobs[e.job].group.is_some() {
            let _ = writeln!(out, "  {label:<20} w={:<3} [{:>9}, {:>9})", e.width, e.start, e.end);
        }
    }
    out
}

/// Renders a Table-3-style text table from a cross-width
/// [`TableReport`](crate::TableReport): one row per sharing
/// configuration, one column per TAM width, the normalized test time
/// `C_T` in packed cells and the prune class in pruned ones (`w-` width
/// bound, `c-` cost bound, `x-` cross-width incumbent). The footer names
/// the winning cell and the sweep counters.
pub fn render_table_report(report: &crate::TableReport) -> String {
    use crate::planner::table::CellOutcome;
    let mut out = String::new();
    let _ = write!(out, "{:<4} {:<24}", "Nw", "sharing");
    for w in &report.widths {
        let _ = write!(out, " {:>8}", format!("W={w}"));
    }
    out.push('\n');
    for (ci, config) in report.configs.iter().enumerate() {
        let _ = write!(out, "{:<4} {:<24}", config.wrapper_count(), config.to_string());
        for wi in 0..report.widths.len() {
            let cell = match report.outcome(ci, wi) {
                // A lazily swept width has no normalizer: show the raw
                // makespan (in kilocycles) instead of C_T.
                CellOutcome::Packed { makespan } => match report.time_cost(ci, wi) {
                    Some(c_t) => format!("{c_t:.1}"),
                    None => format!("{}k", makespan / 1000),
                },
                CellOutcome::WidthBoundPruned => "w-".into(),
                CellOutcome::CostBoundPruned => "c-".into(),
                CellOutcome::CrossWidthPruned => "x-".into(),
            };
            let _ = write!(out, " {cell:>8}");
        }
        out.push('\n');
    }
    let s = report.stats;
    let _ = writeln!(
        out,
        "winner: {} at W={} ({} cycles, cost {:.2}); {} packed / {} pruned of {} cells \
         (width {}, cost {}, cross-width {}) in {} waves",
        report.best.config,
        report.winner_width,
        report.winner_makespan,
        report.best.total_cost,
        s.packed,
        s.cells - s.packed,
        s.cells,
        s.width_bound_prunes,
        s.cost_bound_prunes,
        s.cross_width_prunes,
        s.waves,
    );
    out
}

/// One CSV row per schedule entry: `label,group,width,start,end`.
pub fn schedule_csv(planner: &mut Planner<'_>, report: &PlanReport) -> Vec<Vec<String>> {
    let problem = planner.build_problem(&report.best.config, report.tam_width);
    report
        .schedule
        .entries()
        .iter()
        .map(|e| {
            vec![
                problem.jobs[e.job].label.clone(),
                problem.jobs[e.job].group.map_or(String::new(), |g| g.to_string()),
                e.width.to_string(),
                e.start.to_string(),
                e.end.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerOptions;
    use crate::{CostWeights, MixedSignalSoc};
    use msoc_tam::Effort;

    fn plan() -> (MixedSignalSoc, PlanReport) {
        let soc = MixedSignalSoc::d695m();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        );
        let report = p.cost_optimizer(16, CostWeights::balanced(), 0.0).unwrap();
        (soc, report)
    }

    #[test]
    fn rendered_plan_mentions_all_key_facts() {
        let (soc, report) = plan();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        );
        let text = render_plan(&mut p, &report);
        assert!(text.contains("wrapper sharing"));
        assert!(text.contains(&report.best.config.to_string()));
        assert!(text.contains(&format!("{} cycles", report.best.makespan)));
        assert!(text.contains("analog schedule"));
        // All 20 analog tests appear (6+6 for the I-Q pair, 3+3+2 for C/D/E).
        assert_eq!(text.matches(" w=").count(), 20);
    }

    #[test]
    fn rendered_table_report_shows_costs_prunes_and_the_winner() {
        let soc = MixedSignalSoc::p93791m();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        );
        let configs: Vec<_> = p.candidates().into_iter().take(6).collect();
        let report = p.plan_table(&configs, &[16, 64], CostWeights::balanced()).unwrap();
        let text = render_table_report(&report);
        assert!(text.contains("W=16") && text.contains("W=64"));
        assert!(text.contains("winner:"));
        assert!(text.contains("cross-width"));
        // The narrow column is dominated by prune markers on this SOC.
        assert!(text.contains("x-") || text.contains("w-") || text.contains("c-"));
        assert_eq!(text.lines().count(), configs.len() + 2);
    }

    #[test]
    fn csv_covers_every_entry_with_five_fields() {
        let (soc, report) = plan();
        let mut p = Planner::with_options(
            &soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        );
        let rows = schedule_csv(&mut p, &report);
        assert_eq!(rows.len(), report.schedule.entries().len());
        assert!(rows.iter().all(|r| r.len() == 5));
        // Start/end parse back as numbers and are ordered.
        for r in &rows {
            let start: u64 = r[3].parse().unwrap();
            let end: u64 = r[4].parse().unwrap();
            assert!(end > start);
        }
    }
}
