//! Mixed-signal SOC test planning — the primary contribution of the
//! reproduced paper (Sehgal, Liu, Ozev, Chakrabarty, DATE 2005).
//!
//! Given a digital SOC, a set of wrapped analog cores and an SOC-level TAM
//! width `W`, the planner decides
//!
//! 1. which analog cores share analog test wrappers
//!    ([`SharingConfig`]),
//! 2. the TAM width of every core test, and
//! 3. a test schedule in which tests sharing a wrapper never overlap,
//!
//! minimizing the total cost `C = W_T·C_T + W_A·C_A` (paper eq. 2), where
//! `C_T` is the SOC test time normalized to the most constrained
//! configuration (all analog cores on one wrapper) and `C_A` is the area
//! overhead of the analog wrappers normalized to the no-sharing case
//! (paper eq. 1).
//!
//! Two optimizers are provided:
//!
//! * [`Planner::exhaustive`] — evaluates every sharing configuration
//!   (optimal, expensive),
//! * [`Planner::cost_optimizer`] — the paper's pruning heuristic (its
//!   Fig. 3): configurations are grouped by degree of sharing, each group
//!   is represented by its preliminary-cost minimizer (a bound computable
//!   without scheduling), only surviving groups are evaluated fully.
//!
//! # Examples
//!
//! ```no_run
//! use msoc_core::{CostWeights, MixedSignalSoc, Planner};
//!
//! let soc = MixedSignalSoc::p93791m();
//! let mut planner = Planner::new(&soc);
//! let report = planner.cost_optimizer(32, CostWeights::balanced(), 0.0)?;
//! println!(
//!     "chose {} at cost {:.1} after {} evaluations",
//!     report.best.config, report.best.total_cost, report.evaluations,
//! );
//! # Ok::<(), msoc_core::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod partition;
pub mod planner;
pub mod report;
pub mod service;
pub mod soc;

pub use cost::CostWeights;
pub use metrics::LatencyHistogram;
pub use partition::SharingConfig;
pub use planner::table::{CellOutcome, TableCell, TableReport, TableStats};
pub use planner::{
    EvaluatedConfig, Interrupted, PlanError, PlanReport, PlanStats, Planner, PlannerOptions,
};
pub use service::{
    blob_name, parse_blob_name, recover, recover_with_caps, CancelToken, CoreEdit, DaemonConfig,
    DaemonStats, Deadline, DirStore, ExportCache, ExportOutcome, FaultCounters, FaultyStore, Job,
    JobBuilder, JobOutcome, JobReport, JobResult, JobSpec, MemStore, PlanRequest, PlanService,
    Priority, RecoveryReport, SectionSizes, ServiceSnapshot, ServiceStats, ShardStats,
    SnapshotDaemon, SnapshotError, SnapshotStats, SnapshotStore, SocHandle, StoreError,
    TableRequest,
};
pub use soc::MixedSignalSoc;
