//! The cross-width table sweep engine.
//!
//! The paper's headline results are whole *tables*: Table 3 sweeps every
//! sharing configuration across every TAM width. Evaluating that matrix as
//! `|widths|` independent candidate sweeps — the per-width loop the
//! planner ran before this module — wastes the matrix's monotone
//! structure: the schedule-independent lower bound at one width bounds
//! every *narrower* width (see [`msoc_tam::bounds::WidthBoundCurve`]), so
//! a makespan packed anywhere in the matrix rules out whole swaths of
//! cells everywhere else.
//!
//! [`Planner::plan_table`] searches the matrix as one problem:
//!
//! 1. **Baselines first.** The all-share normalization configuration is
//!    packed at every width (it defines `T_max(w)`, the cost
//!    normalization), exactly as `cost_optimizer` would.
//! 2. **Best-first cell order.** The remaining cells are sorted by their
//!    width-curve lower bound, widest widths and strongest candidates
//!    first, so the earliest packs establish a tight incumbent.
//! 3. **One shared incumbent.** A single [`AtomicU64`] holds the best
//!    makespan packed so far, shared across *configs and widths*. Cells
//!    whose lower bound strictly exceeds it are pruned without packing —
//!    the prune is exact (a pruned cell provably cannot be the table's
//!    best-makespan cell), so the winner is bit-identical to the
//!    brute-force nested loop.
//! 4. **Deterministic waves.** Cells are processed in fixed-size waves:
//!    prune decisions read the incumbent only at wave boundaries (so the
//!    set of pruned cells — and every [`TableStats`] counter — is
//!    identical regardless of thread count), while the packs inside a
//!    wave fan out over `msoc_par` and update the incumbent via
//!    `fetch_min`. The winner itself is a deterministic
//!    `(makespan, cell index)` reduction.
//! 5. **Sessions preserved.** Every pack routes through the planner's
//!    per-width [`PackSession`]s and the service's schedule cache, so
//!    skeleton checkpoints, the delta-prefix trie and cross-instance
//!    caching all keep working — a table cell costs exactly what the same
//!    `(config, width)` cost in the per-width loop, when it is packed at
//!    all.
//!
//! Pruned cells are classified by which *pre-existing* mechanism could
//! have caught them: [`CellOutcome::WidthBoundPruned`] cells lose to
//! their own config's packed best (the `best_width_for` prune),
//! [`CellOutcome::CostBoundPruned`] cells additionally lose the blended
//! cost comparison at their width (the `cost_optimizer` member prune),
//! and [`CellOutcome::CrossWidthPruned`] cells are the new power: only
//! the incumbent shared across configurations and widths rules them out.
//!
//! [`PackSession`]: msoc_tam::PackSession

use std::cmp::Reverse;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use msoc_tam::bounds::WidthBoundCurve;
use msoc_tam::{PackSession, Schedule, ScheduleError, TestJob};

use crate::cost::{self, CostWeights};
use crate::partition::{self, SharingConfig};
use crate::planner::{EvaluatedConfig, PlanError, PlanReport, Planner};

/// Cells per wave. Fixed (not the host's thread count) so the prune
/// decisions — frozen at wave boundaries — are bit-identical on every
/// machine; it only caps how many packs one barrier can overlap.
const WAVE: usize = 16;

/// What happened to one `(config, width)` cell of a table sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell was packed; its scheduled makespan (bit-identical to a
    /// per-width `schedule_batch` of the same cell).
    Packed {
        /// Scheduled SOC test time in cycles.
        makespan: u64,
    },
    /// Pruned: the cell's width-curve lower bound exceeds its own
    /// configuration's best packed makespan — the per-config width prune
    /// `best_width_for` already had. Cells a job cannot fit at all
    /// (`bound == u64::MAX`) land here too.
    WidthBoundPruned,
    /// Pruned: the bound exceeds the shared incumbent *and* the cell's
    /// blended-cost lower bound exceeds the best evaluated cost at its
    /// width — the `cost_optimizer` member prune would also have skipped
    /// it.
    CostBoundPruned,
    /// Pruned by the shared incumbent alone: only a makespan packed at a
    /// *different* configuration and/or width rules this cell out. The
    /// per-width loop had no mechanism for this.
    CrossWidthPruned,
}

/// Per-cell accounting of a [`TableReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCell {
    /// Index into [`TableReport::configs`].
    pub config: usize,
    /// TAM width of the cell.
    pub width: u32,
    /// Outcome of the cell.
    pub outcome: CellOutcome,
}

/// Aggregate counters of one [`Planner::plan_table`] run. Deterministic:
/// identical on every host and thread count for the same inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Total cells in the matrix (`configs × widths`).
    pub cells: usize,
    /// Cells actually packed (including the all-share baseline cells).
    pub packed: usize,
    /// Cells pruned by their own config's packed best (see
    /// [`CellOutcome::WidthBoundPruned`]).
    pub width_bound_prunes: usize,
    /// Cells pruned where the blended-cost bound also ruled them out (see
    /// [`CellOutcome::CostBoundPruned`]).
    pub cost_bound_prunes: usize,
    /// Cells only the shared cross-width incumbent could prune (see
    /// [`CellOutcome::CrossWidthPruned`]).
    pub cross_width_prunes: usize,
    /// Barrier waves the sweep ran.
    pub waves: usize,
    /// All-share baseline packs a lazy (pure-makespan) sweep skipped: the
    /// eager path packs `T_max` at every width up front, the lazy path
    /// packs a baseline only where the table itself demands one (an
    /// all-share cell that survives pruning, or the winner width's
    /// normalizer). Always 0 for eager sweeps.
    pub baseline_skips: usize,
}

/// The result of a [`Planner::plan_table`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// The candidate configurations, in input order.
    pub configs: Vec<SharingConfig>,
    /// The TAM widths, in input order.
    pub widths: Vec<u32>,
    /// The table's best cell — minimum scheduled makespan over the whole
    /// matrix, ties to the earliest cell in config-major order — fully
    /// evaluated (cost-capped makespan, `C_T`/`C_A`, blended cost) at
    /// [`Self::winner_width`].
    pub best: EvaluatedConfig,
    /// Width of the winning cell.
    pub winner_width: u32,
    /// The winning cell's *raw* scheduled makespan (the uncapped value a
    /// nested `best_width_for` loop reports).
    pub winner_makespan: u64,
    /// `T_max(w)` per width (all-share makespan, the `C_T` normalizer).
    /// Always `Some` for eager sweeps; a lazy (pure-makespan) sweep fills
    /// only the widths whose baseline it actually packed (see
    /// [`TableStats::baseline_skips`]).
    pub t_max: Vec<Option<u64>>,
    /// Every cell's outcome, config-major (`config * widths.len() +
    /// width_index`).
    pub cells: Vec<TableCell>,
    /// Deterministic sweep counters.
    pub stats: TableStats,
}

impl TableReport {
    /// The outcome of cell `(config index, width index)`.
    pub fn outcome(&self, config: usize, width_idx: usize) -> CellOutcome {
        self.cells[config * self.widths.len() + width_idx].outcome
    }

    /// The packed makespan of a cell, `None` when it was pruned.
    pub fn makespan(&self, config: usize, width_idx: usize) -> Option<u64> {
        match self.outcome(config, width_idx) {
            CellOutcome::Packed { makespan } => Some(makespan),
            _ => None,
        }
    }

    /// Normalized test time `C_T` of a packed cell (100 = the all-share
    /// baseline at the same width, the paper's Table 3 metric). `None`
    /// when the cell was pruned or the width's baseline was lazily
    /// skipped (its normalizer was never computed).
    pub fn time_cost(&self, config: usize, width_idx: usize) -> Option<f64> {
        let t_max = self.t_max[width_idx]?;
        self.makespan(config, width_idx).map(|m| cost::time_cost(m.min(t_max), t_max))
    }
}

/// One cell queued for packing in a wave.
struct PendingCell {
    cell: usize,
    session: Arc<PackSession>,
}

impl<'a> Planner<'a> {
    /// Plans the full `configs × widths` matrix through one shared
    /// incumbent (see the [module docs](self)).
    ///
    /// Every packed cell's makespan is bit-identical to what
    /// [`Planner::schedule_batch`] computes for the same `(config,
    /// width)`, and the winner — the matrix's minimum-makespan cell, ties
    /// to the earliest config then the earliest width in input order — is
    /// bit-identical to the brute-force nested loop with pruning
    /// disabled. Results land in the planner's makespan/schedule caches,
    /// so follow-up [`Planner::evaluate`]/[`Planner::schedule_for`] calls
    /// on packed cells are cache hits.
    ///
    /// # Lazy baselines
    ///
    /// A pure-makespan query (`weights.area() == 0`) never needs the
    /// cost classification that the all-share `T_max` normalizers exist
    /// for, so the sweep goes *lazy*: the baseline rows — the most
    /// expensive packs of the whole matrix — are not pre-packed; all-share
    /// cells compete in the waves like any other cell (where the shared
    /// incumbent usually prunes them), and only the winner width's
    /// normalizer is packed for the final evaluation.
    /// [`TableStats::baseline_skips`] counts the avoided packs and
    /// [`TableReport::t_max`] is `None` at skipped widths. The winner and
    /// every packed cell remain bit-identical to the eager sweep.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoAnalogCores`] for an all-digital SOC,
    /// [`PlanError::Incompatible`] when a candidate violates the sharing
    /// policy, [`PlanError::Schedule`] when the all-share baseline or
    /// an unpruned cell cannot be scheduled (a width too narrow for
    /// *every* cell surfaces the earliest such cell's error), and
    /// [`PlanError::Interrupted`] when the driving job's deadline or
    /// cancellation fires at a wave boundary.
    ///
    /// [`PlanError::Interrupted`]: crate::PlanError::Interrupted
    ///
    /// # Panics
    ///
    /// Panics if `configs` or `widths` is empty, or if `widths` contains
    /// duplicates.
    pub fn plan_table(
        &mut self,
        configs: &[SharingConfig],
        widths: &[u32],
        weights: CostWeights,
    ) -> Result<TableReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        assert!(!configs.is_empty(), "plan_table needs at least one configuration");
        assert!(!widths.is_empty(), "plan_table needs at least one width");
        {
            let mut sorted = widths.to_vec();
            sorted.sort_unstable();
            assert!(sorted.windows(2).all(|p| p[0] != p[1]), "plan_table widths must be distinct");
        }
        let nw = widths.len();
        let n_cells = configs.len() * nw;

        // Exact schedule-independent ingredients, one pass each: the
        // per-candidate delta jobs, the exact area costs, and the
        // width→bound curves (built over the widest session's skeleton —
        // staircases agree on every shared point, so the curve lower-bounds
        // every narrower width too).
        let deltas: Vec<Vec<TestJob>> = configs.iter().map(|c| self.delta_jobs(c)).collect();
        let area_costs: Vec<f64> = configs
            .iter()
            .map(|c| {
                cost::area_cost(
                    c,
                    &self.soc.analog,
                    &self.opts.area_model,
                    &self.opts.sharing_policy,
                )
            })
            .collect::<Result<_, _>>()?;
        let sessions: Vec<Arc<PackSession>> =
            widths.iter().map(|&w| Arc::clone(self.session(w))).collect();
        let widest_idx = (0..nw).max_by_key(|&i| widths[i]).expect("widths is non-empty");
        let widest_skeleton = sessions[widest_idx].skeleton();
        let curves: Vec<WidthBoundCurve<'_>> = deltas
            .iter()
            .map(|d| WidthBoundCurve::new(widest_skeleton.iter().chain(d.iter())))
            .collect();
        let cell_bound = |cell: usize| curves[cell / nw].bound_at(widths[cell % nw]);
        let bounds: Vec<u64> = (0..n_cells).map(cell_bound).collect();

        // Baselines: T_max(w) per width, the C_T normalizer. The *eager*
        // path (cost-blended weights) packs all of them up front — they cap
        // every cost and classify the cost-bound prunes. A *pure-makespan*
        // query (`W_A = 0`) never needs a cost classification to pick its
        // winner, so the lazy path skips these most-expensive packs
        // entirely: all-share cells (if the baseline is in `configs`)
        // compete in the waves like any other cell — where the shared
        // incumbent usually prunes them — and only the winner width's
        // normalizer is packed at the end, for the final evaluation.
        // Winner and every packed cell stay bit-identical either way: the
        // baselines only ever *seed* the incumbent, and the prune is exact
        // with or without that seeding.
        let lazy = weights.area() == 0.0;
        let all_shared = SharingConfig::all_shared(self.soc.analog.len());
        let mut t_max: Vec<Option<u64>> = vec![None; nw];
        let mut baseline_packed = vec![false; nw];
        if !lazy {
            self.check_interrupt()?;
            let baseline_delta = self.delta_jobs(&all_shared);
            let baseline_cells: Vec<PendingCell> = (0..nw)
                .map(|wi| PendingCell { cell: wi, session: Arc::clone(&sessions[wi]) })
                .collect();
            let packed = self.pack_cells(
                &baseline_cells,
                |_| baseline_delta.as_slice(),
                |_| all_shared.clone(),
            )?;
            for (wi, m) in packed {
                t_max[wi] = Some(m);
                baseline_packed[wi] = true;
            }
        }

        // Best-first order: strongest bound first, widest width on ties,
        // canonical cell index last — deterministic on every host. The
        // all-share cells (if the baseline is in `configs`) are already
        // packed on the eager path and only need their outcomes recorded.
        let mut outcomes: Vec<Option<CellOutcome>> = vec![None; n_cells];
        let mut stats = TableStats { cells: n_cells, ..TableStats::default() };
        let incumbent = AtomicU64::new(u64::MAX);
        let mut per_config_best: Vec<u64> = vec![u64::MAX; configs.len()];
        let mut per_width_best: Vec<u64> = vec![u64::MAX; nw];
        let mut width_cost_best: Vec<f64> = vec![f64::INFINITY; nw];
        let base_idx = configs.iter().position(|c| *c == all_shared);
        if !lazy {
            if let Some(base_idx) = base_idx {
                for wi in 0..nw {
                    let m = t_max[wi].expect("eager sweeps pack every baseline");
                    let cell = base_idx * nw + wi;
                    outcomes[cell] = Some(CellOutcome::Packed { makespan: m });
                    stats.packed += 1;
                    incumbent.fetch_min(m, Ordering::Relaxed);
                    per_config_best[base_idx] = per_config_best[base_idx].min(m);
                    per_width_best[wi] = per_width_best[wi].min(m);
                    let c = weights.blend(cost::time_cost(m, m), area_costs[base_idx]);
                    width_cost_best[wi] = width_cost_best[wi].min(c);
                }
            }
        }

        // Structural feasibility, binary-searched per config over the
        // monotone curve: widths narrower than the first one whose bound
        // is finite cannot hold some job of the config at all — the width
        // bound in its purest form, pruned before the waves without an
        // error for the rest of the table. (Widths wider than the first
        // feasible one are feasible too, by monotonicity.)
        let mut width_order: Vec<usize> = (0..nw).collect();
        width_order.sort_by_key(|&wi| widths[wi]);
        let ascending: Vec<u32> = width_order.iter().map(|&wi| widths[wi]).collect();
        for (c, curve) in curves.iter().enumerate() {
            let first_feasible = curve.first_within(&ascending, u64::MAX - 1).unwrap_or(nw);
            for &wi in &width_order[..first_feasible] {
                let cell = c * nw + wi;
                if outcomes[cell].is_none() {
                    outcomes[cell] = Some(CellOutcome::WidthBoundPruned);
                    stats.width_bound_prunes += 1;
                }
            }
        }

        let mut order: Vec<usize> = (0..n_cells).filter(|&cell| outcomes[cell].is_none()).collect();
        order.sort_by_key(|&cell| (bounds[cell], Reverse(widths[cell % nw]), cell));

        for wave in order.chunks(WAVE) {
            // The deterministic interruption point of a table job: a
            // deadline or cancellation lands exactly between waves, so an
            // interrupted sweep abandons whole waves and every schedule it
            // already cached is a complete, bit-identical pack.
            self.check_interrupt()?;
            stats.waves += 1;
            // Freeze the incumbent (and the classification inputs) at the
            // wave boundary: decisions depend only on completed waves, so
            // they are identical regardless of how the packs below
            // interleave across threads.
            let frozen = incumbent.load(Ordering::Relaxed);
            let mut to_pack: Vec<PendingCell> = Vec::new();
            for &cell in wave {
                let (c, wi) = (cell / nw, cell % nw);
                // Structurally infeasible cells never reach the waves
                // (the first_within pre-pass above), so a finite bound is
                // guaranteed here.
                if bounds[cell] > frozen {
                    // Exact prune: makespan(cell) >= bound > frozen >=
                    // the final minimum, so this cell cannot win (ties
                    // survive — the inequality chain is strict).
                    //
                    // Classification is pure accounting (it never decides
                    // *whether* to prune). The lazy path has no T_max to
                    // blend costs with, so its cost-bound class compares
                    // raw makespans at the cell's width — with W_A = 0 the
                    // same ordering the blended cost induces.
                    let cost_pruned = if lazy {
                        bounds[cell] > per_width_best[wi]
                    } else {
                        let t = t_max[wi].expect("eager sweeps pack every baseline");
                        let cost_lb =
                            weights.blend(cost::time_cost(bounds[cell].min(t), t), area_costs[c]);
                        cost_lb > width_cost_best[wi]
                    };
                    let outcome = if bounds[cell] > per_config_best[c] {
                        CellOutcome::WidthBoundPruned
                    } else if cost_pruned {
                        CellOutcome::CostBoundPruned
                    } else {
                        CellOutcome::CrossWidthPruned
                    };
                    outcomes[cell] = Some(outcome);
                    match outcome {
                        CellOutcome::WidthBoundPruned => stats.width_bound_prunes += 1,
                        CellOutcome::CostBoundPruned => stats.cost_bound_prunes += 1,
                        CellOutcome::CrossWidthPruned => stats.cross_width_prunes += 1,
                        CellOutcome::Packed { .. } => unreachable!("pruned cells are not packed"),
                    }
                    continue;
                }
                to_pack.push(PendingCell { cell, session: Arc::clone(&sessions[wi]) });
            }
            if to_pack.is_empty() {
                continue;
            }
            let packed = self.pack_cells(
                &to_pack,
                |cell| deltas[cell / nw].as_slice(),
                |cell| configs[cell / nw].clone(),
            )?;
            for (cell, makespan) in packed {
                let (c, wi) = (cell / nw, cell % nw);
                outcomes[cell] = Some(CellOutcome::Packed { makespan });
                stats.packed += 1;
                incumbent.fetch_min(makespan, Ordering::Relaxed);
                per_config_best[c] = per_config_best[c].min(makespan);
                per_width_best[wi] = per_width_best[wi].min(makespan);
                if lazy {
                    // A lazily swept all-share cell that survives pruning
                    // IS the width's baseline — record its normalizer.
                    if base_idx == Some(c) {
                        t_max[wi] = Some(makespan);
                        baseline_packed[wi] = true;
                    }
                } else {
                    let t = t_max[wi].expect("eager sweeps pack every baseline");
                    let c_t = cost::time_cost(makespan.min(t), t);
                    width_cost_best[wi] =
                        width_cost_best[wi].min(weights.blend(c_t, area_costs[c]));
                }
            }
        }

        // Deterministic (makespan, cell index) reduction over the packed
        // cells: the canonical config-major index breaks ties exactly like
        // the nested reference loop.
        let winner = outcomes
            .iter()
            .enumerate()
            .filter_map(|(cell, o)| match o {
                Some(CellOutcome::Packed { makespan }) => Some((cell, *makespan)),
                _ => None,
            })
            .min_by_key(|&(cell, m)| (m, cell));
        let Some((winner_cell, winner_makespan)) = winner else {
            // Only the lazy path can get here (the eager baseline pack
            // would have errored): every cell is structurally infeasible,
            // so packing the widest width's all-share baseline — which
            // every cell's problem refines — surfaces the schedule error.
            self.t_max(widths[widest_idx])?;
            unreachable!("an all-infeasible matrix cannot pack its baseline");
        };
        let (winner_config, winner_wi) = (winner_cell / nw, winner_cell % nw);
        let winner_width = widths[winner_wi];
        let best = self.evaluate(&configs[winner_config], winner_width, weights)?;
        if lazy {
            // The final evaluation just packed (or reused) the winner
            // width's normalizer; record it. Every other width's baseline
            // stayed lazily unpacked — those are the skips.
            t_max[winner_wi] = Some(self.t_max(winner_width)?);
            baseline_packed[winner_wi] = true;
            stats.baseline_skips = baseline_packed.iter().filter(|&&p| !p).count();
        }

        // Drop the sweep's full schedules from the planner cache, exactly
        // like a `report()` sweep: only pinned entries survive. Makespans
        // stay cached (they are what post-table `evaluate` calls read),
        // and a later `schedule_for` on a packed cell is a service
        // schedule-cache hit, not a re-pack.
        let pinned = &self.pinned;
        self.schedules.retain(|key, _| pinned.contains(key));

        let cells: Vec<TableCell> = outcomes
            .into_iter()
            .enumerate()
            .map(|(cell, o)| TableCell {
                config: cell / nw,
                width: widths[cell % nw],
                outcome: o.expect("every cell is packed or pruned"),
            })
            .collect();
        Ok(TableReport {
            configs: configs.to_vec(),
            widths: widths.to_vec(),
            best,
            winner_width,
            winner_makespan,
            t_max,
            cells,
            stats,
        })
    }

    /// The paper's `Cost_Optimizer` heuristic swept across a whole set of
    /// TAM widths as **one** problem — the cross-width routing of the
    /// per-width loop callers used to run around [`Planner::cost_optimizer`].
    ///
    /// Structure per width is exactly the heuristic's (Fig. 3): group by
    /// shape, evaluate each group's preliminary-cost representative fully,
    /// eliminate groups whose representative is more than `delta` above
    /// the best representative at that width, then evaluate the surviving
    /// members. The sweep packs across widths through the table engine's
    /// machinery instead of width-by-width:
    ///
    /// - The all-share baselines and the representatives (the preliminary
    ///   cost is width-independent, so every width shares one
    ///   representative set) are packed for **all widths in one parallel
    ///   batch** each.
    /// - Surviving members compete in best-first [`WAVE`]-sized waves
    ///   behind one **global blended-cost incumbent** shared across
    ///   widths: a member whose cost lower bound
    ///   ([`Planner::cost_lower_bound`]) strictly exceeds the incumbent —
    ///   frozen at wave boundaries, so the pruned set is deterministic at
    ///   any thread count — is skipped without packing. The per-width
    ///   loop's member prune could only use that width's own incumbent;
    ///   the global incumbent also rules members out with makespans packed
    ///   at *other* widths. Prunes land in
    ///   [`PlanStats::cost_bound_prunes`](crate::PlanStats).
    ///
    /// The prune is exact (a pruned member's real cost provably exceeds a
    /// realized cost, and ties survive the strict comparison), and the
    /// final winner is folded in the per-width reference order — width in
    /// input order, then baseline, representatives, surviving members —
    /// so the reported best `(config, width)` is bit-identical to running
    /// [`Planner::cost_optimizer`] at every width and keeping the
    /// strictly-better report. [`PlanReport::tam_width`] is the winning
    /// width; [`PlanReport::evaluations`] counts representative and
    /// member evaluations summed over the sweep (baselines stay free,
    /// matching the paper's Table 4 accounting);
    /// [`PlanReport::candidates`] is `candidates × widths`.
    ///
    /// # Errors
    ///
    /// As [`Planner::cost_optimizer`] at each width, plus
    /// [`PlanError::Interrupted`] at batch/wave boundaries.
    ///
    /// [`PlanError::Interrupted`]: crate::PlanError::Interrupted
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains duplicates.
    pub fn cost_optimizer_sweep(
        &mut self,
        widths: &[u32],
        weights: CostWeights,
        delta: f64,
    ) -> Result<PlanReport, PlanError> {
        if self.soc.analog.is_empty() {
            return Err(PlanError::NoAnalogCores);
        }
        assert!(!widths.is_empty(), "cost_optimizer_sweep needs at least one width");
        {
            let mut sorted = widths.to_vec();
            sorted.sort_unstable();
            assert!(
                sorted.windows(2).all(|p| p[0] != p[1]),
                "cost_optimizer_sweep widths must be distinct"
            );
        }
        let nw = widths.len();
        let candidates = self.candidates();
        let n_candidates = candidates.len();
        let all_shared = SharingConfig::all_shared(self.soc.analog.len());
        let groups: Vec<Vec<SharingConfig>> = partition::group_by_shape(
            candidates.into_iter().filter(|c| *c != all_shared && c.has_sharing()).collect(),
        );
        let sessions: Vec<Arc<PackSession>> =
            widths.iter().map(|&w| Arc::clone(self.session(w))).collect();

        // Baselines: T_max at every width, one parallel batch.
        self.check_interrupt()?;
        let baseline_delta = self.delta_jobs(&all_shared);
        let baseline_cells: Vec<PendingCell> = (0..nw)
            .map(|wi| PendingCell { cell: wi, session: Arc::clone(&sessions[wi]) })
            .collect();
        self.pack_cells(&baseline_cells, |_| baseline_delta.as_slice(), |_| all_shared.clone())?;

        // One representative set for the whole sweep: the preliminary cost
        // has no width input, so every width picks the same minimizers.
        let mut rep_configs: Vec<SharingConfig> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut rep: Option<(&SharingConfig, f64)> = None;
            for config in group {
                let prelim = cost::preliminary_cost(
                    config,
                    &self.soc.analog,
                    &self.opts.area_model,
                    &self.opts.sharing_policy,
                    weights,
                )?;
                if rep.is_none_or(|(_, c)| prelim < c) {
                    rep = Some((config, prelim));
                }
            }
            let (config, _) = rep.expect("groups are non-empty");
            rep_configs.push(config.clone());
        }
        let rep_deltas: Vec<Vec<TestJob>> =
            rep_configs.iter().map(|c| self.delta_jobs(c)).collect();
        self.check_interrupt()?;
        let rep_cells: Vec<PendingCell> = (0..rep_configs.len() * nw)
            .map(|cell| PendingCell { cell, session: Arc::clone(&sessions[cell % nw]) })
            .collect();
        self.pack_cells(
            &rep_cells,
            |cell| rep_deltas[cell / nw].as_slice(),
            |cell| rep_configs[cell / nw].clone(),
        )?;

        // Evaluate baselines and representatives (pure cache reads now) to
        // seed the global incumbent and gate group survival per width.
        let mut evaluations = 0usize;
        let mut incumbent = f64::INFINITY;
        let mut rep_evals: Vec<Vec<EvaluatedConfig>> = Vec::with_capacity(nw);
        for &w in widths {
            incumbent = incumbent.min(self.evaluate(&all_shared, w, weights)?.total_cost);
            let evals: Vec<EvaluatedConfig> = rep_configs
                .iter()
                .map(|c| self.evaluate(c, w, weights))
                .collect::<Result<_, _>>()?;
            evaluations += evals.len();
            for e in &evals {
                incumbent = incumbent.min(e.total_cost);
            }
            rep_evals.push(evals);
        }

        // Surviving members of every width, in the per-width reference
        // order (width-major, groups in representative order, members in
        // group order) — the order the final winner fold replays.
        struct SweepMember {
            wi: usize,
            config: SharingConfig,
            delta_jobs: Vec<TestJob>,
            bound: f64,
            packed: bool,
        }
        let mut members: Vec<SweepMember> = Vec::new();
        for (wi, evals) in rep_evals.iter().enumerate() {
            let c_star = evals.iter().map(|e| e.total_cost).fold(f64::INFINITY, f64::min);
            for (g_idx, rep_eval) in evals.iter().enumerate() {
                if rep_eval.total_cost - c_star > delta {
                    continue;
                }
                for config in &groups[g_idx] {
                    if config == &rep_eval.config {
                        continue;
                    }
                    let bound = self.cost_lower_bound(config, widths[wi], weights)?;
                    members.push(SweepMember {
                        wi,
                        config: config.clone(),
                        delta_jobs: self.delta_jobs(config),
                        bound,
                        packed: false,
                    });
                }
            }
        }

        // Best-first member waves behind the frozen global incumbent.
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by(|&a, &b| members[a].bound.total_cmp(&members[b].bound).then(a.cmp(&b)));
        for wave in order.chunks(WAVE) {
            self.check_interrupt()?;
            let frozen = incumbent;
            let to_pack: Vec<PendingCell> = wave
                .iter()
                .filter(|&&m| {
                    if members[m].bound > frozen {
                        self.cost_bound_prunes += 1;
                        false
                    } else {
                        true
                    }
                })
                .map(|&m| PendingCell { cell: m, session: Arc::clone(&sessions[members[m].wi]) })
                .collect();
            if to_pack.is_empty() {
                continue;
            }
            self.pack_cells(
                &to_pack,
                |m| members[m].delta_jobs.as_slice(),
                |m| members[m].config.clone(),
            )?;
            for pending in &to_pack {
                let m = pending.cell;
                let config = members[m].config.clone();
                let eval = self.evaluate(&config, widths[members[m].wi], weights)?;
                evaluations += 1;
                incumbent = incumbent.min(eval.total_cost);
                members[m].packed = true;
            }
        }

        // Final fold in the reference order (all cache reads): pruned
        // members provably exceed a realized cost, so skipping them
        // cannot change the strictly-better winner.
        let mut best: Option<(EvaluatedConfig, u32)> = None;
        let fold = |eval: EvaluatedConfig, w: u32, best: &mut Option<(EvaluatedConfig, u32)>| {
            if best.as_ref().is_none_or(|(b, _)| eval.total_cost < b.total_cost) {
                *best = Some((eval, w));
            }
        };
        let mut member_iter = members.iter().peekable();
        for (wi, &w) in widths.iter().enumerate() {
            fold(self.evaluate(&all_shared, w, weights)?, w, &mut best);
            for eval in &rep_evals[wi] {
                fold(eval.clone(), w, &mut best);
            }
            while member_iter.peek().is_some_and(|m| m.wi == wi) {
                let m = member_iter.next().expect("peeked");
                if m.packed {
                    fold(self.evaluate(&m.config, w, weights)?, w, &mut best);
                }
            }
        }
        let (best, winner_width) = best.expect("the all-share baseline is always evaluated");
        self.report(best, evaluations, n_candidates * nw, winner_width, weights)
    }

    /// Packs one wave of cells in parallel through the service's schedule
    /// cache, warming each involved session's skeleton checkpoints first.
    /// Results come back as `(cell, makespan)` with the schedules landed
    /// in the planner's makespan/schedule caches; the earliest (by cell
    /// index) failure wins error reporting, like `schedule_batch`.
    fn pack_cells<'d, F, G>(
        &mut self,
        to_pack: &[PendingCell],
        jobs_for: F,
        config_for: G,
    ) -> Result<Vec<(usize, u64)>, PlanError>
    where
        F: Fn(usize) -> &'d [TestJob] + Sync,
        G: Fn(usize) -> SharingConfig,
    {
        for pending in to_pack {
            pending.session.warm();
        }
        let results: Vec<Result<Arc<Schedule>, ScheduleError>> = {
            let service = self.service();
            let tracked = self.track_revision;
            msoc_par::map(to_pack, |_, pending| {
                service.pack_tracked(&pending.session, jobs_for(pending.cell), tracked)
            })
        };
        let mut packed: Vec<(usize, u64)> = Vec::with_capacity(to_pack.len());
        let mut first_error: Option<(usize, ScheduleError)> = None;
        for (pending, result) in to_pack.iter().zip(results) {
            match result {
                Ok(schedule) => {
                    let key = (config_for(pending.cell), pending.session.tam_width());
                    packed.push((pending.cell, schedule.makespan()));
                    self.makespans.insert(key.clone(), schedule.makespan());
                    self.schedules.insert(key, schedule);
                }
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(c, _)| pending.cell < *c) {
                        first_error = Some((pending.cell, e));
                    }
                }
            }
        }
        match first_error {
            Some((_, e)) => Err(e.into()),
            None => Ok(packed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerOptions;
    use crate::soc::MixedSignalSoc;
    use msoc_tam::Effort;

    fn quick_planner(soc: &MixedSignalSoc) -> Planner<'_> {
        Planner::with_options(
            soc,
            PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() },
        )
    }

    /// The nested reference loop: every cell packed, winner by
    /// `(makespan, config index, width index)` — what `plan_table` must
    /// reproduce without packing everything.
    fn brute_force_winner(
        soc: &MixedSignalSoc,
        configs: &[SharingConfig],
        widths: &[u32],
    ) -> (SharingConfig, u32, u64) {
        let mut p = quick_planner(soc);
        let mut best: Option<(usize, usize, u64)> = None;
        for (ci, config) in configs.iter().enumerate() {
            for (wi, &w) in widths.iter().enumerate() {
                let m = p.makespan(config, w).expect("reference cell is feasible");
                if best.is_none_or(|(_, _, bm)| m < bm) {
                    best = Some((ci, wi, m));
                }
            }
        }
        let (ci, wi, m) = best.expect("non-empty matrix");
        (configs[ci].clone(), widths[wi], m)
    }

    #[test]
    fn table_winner_matches_the_brute_force_nested_loop() {
        let soc = MixedSignalSoc::d695m();
        let mut p = quick_planner(&soc);
        let configs = p.candidates();
        let widths = [16, 24];
        let report = p.plan_table(&configs, &widths, CostWeights::balanced()).unwrap();
        let (bf_config, bf_width, bf_makespan) = brute_force_winner(&soc, &configs, &widths);
        assert_eq!(report.best.config, bf_config);
        assert_eq!(report.winner_width, bf_width);
        assert_eq!(report.winner_makespan, bf_makespan);
    }

    #[test]
    fn packed_cells_are_bit_identical_to_per_width_batches() {
        let soc = MixedSignalSoc::d695m();
        let mut table_planner = quick_planner(&soc);
        let configs = table_planner.candidates();
        let widths = [16, 24];
        let report = table_planner.plan_table(&configs, &widths, CostWeights::balanced()).unwrap();

        let mut loop_planner = quick_planner(&soc);
        let mut packed = 0usize;
        for (ci, config) in configs.iter().enumerate() {
            for (wi, &w) in widths.iter().enumerate() {
                if let Some(m) = report.makespan(ci, wi) {
                    assert_eq!(
                        m,
                        loop_planner.makespan(config, w).unwrap(),
                        "cell ({config}, w={w}) diverged from the per-width loop"
                    );
                    packed += 1;
                }
            }
        }
        assert_eq!(packed, report.stats.packed);
        assert_eq!(report.cells.len(), configs.len() * widths.len());
        assert_eq!(
            report.stats.packed
                + report.stats.width_bound_prunes
                + report.stats.cost_bound_prunes
                + report.stats.cross_width_prunes,
            report.stats.cells,
            "every cell is packed or pruned exactly once: {:?}",
            report.stats
        );
    }

    #[test]
    fn cross_width_incumbent_prunes_cells_the_per_width_loop_could_not() {
        // p93791m is area-bound dominated: the widest width's makespans
        // rule out nearly every narrow-width cell before packing.
        let soc = MixedSignalSoc::p93791m();
        let mut p = quick_planner(&soc);
        let configs: Vec<SharingConfig> = p.candidates().into_iter().take(8).collect();
        let widths = [16, 32, 64];
        let report = p.plan_table(&configs, &widths, CostWeights::balanced()).unwrap();
        assert!(
            report.stats.cross_width_prunes > 0,
            "the shared incumbent must prune across configs/widths: {:?}",
            report.stats
        );
        assert!(
            report.stats.packed < report.stats.cells,
            "a table sweep must not pack every cell: {:?}",
            report.stats
        );
        // The winner is still exact.
        let (bf_config, bf_width, bf_makespan) = brute_force_winner(&soc, &configs, &widths);
        assert_eq!(
            (report.best.config.clone(), report.winner_width, report.winner_makespan),
            (bf_config, bf_width, bf_makespan)
        );
    }

    #[test]
    fn table_sweep_retains_only_pinned_schedules() {
        // Like a `report()` sweep, the table drops its losing schedules
        // from the planner cache (makespans stay for cheap evaluation,
        // and re-fetching a packed cell's schedule is a service
        // schedule-cache hit).
        let soc = MixedSignalSoc::d695m();
        let mut p = quick_planner(&soc);
        let configs = p.candidates();
        let report = p.plan_table(&configs, &[16, 24], CostWeights::balanced()).unwrap();
        assert!(p.schedules.is_empty(), "unpinned table schedules must be dropped");
        assert!(!p.makespans.is_empty(), "makespans stay cached");
        let winner = report.best.config.clone();
        let schedule = p.schedule_for(&winner, report.winner_width).unwrap();
        assert_eq!(schedule.makespan(), report.winner_makespan);
    }

    #[test]
    fn baseline_cells_report_time_cost_100() {
        let soc = MixedSignalSoc::d695m();
        let mut p = quick_planner(&soc);
        let configs = p.candidates();
        let widths = [16, 24];
        let report = p.plan_table(&configs, &widths, CostWeights::balanced()).unwrap();
        let base = configs
            .iter()
            .position(|c| *c == SharingConfig::all_shared(5))
            .expect("paper enumeration includes the all-share baseline");
        for wi in 0..widths.len() {
            assert_eq!(report.makespan(base, wi), report.t_max[wi]);
            assert!(report.t_max[wi].is_some(), "eager sweeps record every normalizer");
            let c_t = report.time_cost(base, wi).unwrap();
            assert!((c_t - 100.0).abs() < 1e-9, "baseline C_T must be 100, got {c_t}");
        }
        assert_eq!(report.stats.baseline_skips, 0, "eager sweeps never skip baselines");
    }

    #[test]
    fn lazy_pure_makespan_table_skips_baselines_and_keeps_the_winner() {
        // W_A = 0 is a pure-makespan query: the all-share baseline rows
        // are not pre-packed, the winner must still be bit-identical to
        // the eager (and brute-force) sweep, and every cell the lazy
        // sweep does pack must match the per-width loop.
        let soc = MixedSignalSoc::p93791m();
        let mut lazy = quick_planner(&soc);
        let configs = lazy.candidates();
        let widths = [16, 32, 64];
        let report = lazy.plan_table(&configs, &widths, CostWeights::new(1.0, 0.0)).unwrap();
        assert!(
            report.stats.baseline_skips > 0,
            "a pure-makespan sweep must skip baseline packs: {:?}",
            report.stats
        );
        let mut eager = quick_planner(&soc);
        let eager_report = eager.plan_table(&configs, &widths, CostWeights::balanced()).unwrap();
        assert_eq!(report.best.config, eager_report.best.config);
        assert_eq!(report.winner_width, eager_report.winner_width);
        assert_eq!(report.winner_makespan, eager_report.winner_makespan);
        // The winner width's normalizer is known; skipped widths are None.
        let winner_wi =
            widths.iter().position(|&w| w == report.winner_width).expect("winner width in set");
        assert_eq!(report.t_max[winner_wi], eager_report.t_max[winner_wi]);
        assert_eq!(report.t_max.iter().filter(|t| t.is_none()).count(), {
            // skips counted = widths whose baseline never packed
            report.stats.baseline_skips
        });
        // Packed lazy cells are bit-identical to the per-width loop.
        let mut loop_planner = quick_planner(&soc);
        for (ci, config) in configs.iter().enumerate() {
            for (wi, &w) in widths.iter().enumerate() {
                if let Some(m) = report.makespan(ci, wi) {
                    assert_eq!(m, loop_planner.makespan(config, w).unwrap());
                }
            }
        }
        // Accounting still closes.
        let s = report.stats;
        assert_eq!(
            s.packed + s.width_bound_prunes + s.cost_bound_prunes + s.cross_width_prunes,
            s.cells
        );
    }

    #[test]
    fn table_stats_are_deterministic_across_runs() {
        let soc = MixedSignalSoc::p93791m();
        let configs: Vec<SharingConfig> = quick_planner(&soc).candidates();
        let widths = [24, 48];
        let run = |soc: &MixedSignalSoc| {
            let mut p = quick_planner(soc);
            p.plan_table(&configs[..6], &widths, CostWeights::balanced()).unwrap()
        };
        let a = run(&soc);
        let b = run(&soc);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a, b);
    }

    /// The per-width reference: `cost_optimizer` at every width, keeping
    /// the strictly-better report — what the sweep must reproduce.
    fn reference_cost_sweep(
        soc: &MixedSignalSoc,
        widths: &[u32],
        weights: CostWeights,
        delta: f64,
    ) -> (crate::PlanReport, usize) {
        let mut p = quick_planner(soc);
        let mut best: Option<crate::PlanReport> = None;
        let mut evaluations = 0usize;
        for &w in widths {
            let report = p.cost_optimizer(w, weights, delta).expect("reference plan");
            evaluations += report.evaluations;
            if best.as_ref().is_none_or(|b| report.best.total_cost < b.best.total_cost) {
                best = Some(report);
            }
        }
        (best.expect("non-empty width set"), evaluations)
    }

    #[test]
    fn cost_sweep_matches_the_per_width_reference_loop() {
        for (soc, widths) in
            [(MixedSignalSoc::d695m(), vec![16, 24]), (MixedSignalSoc::p93791m(), vec![16, 32, 64])]
        {
            let weights = CostWeights::balanced();
            let (reference, ref_evals) = reference_cost_sweep(&soc, &widths, weights, 0.0);
            let mut p = quick_planner(&soc);
            let sweep = p.cost_optimizer_sweep(&widths, weights, 0.0).unwrap();
            assert_eq!(sweep.best.config, reference.best.config, "winner config diverged");
            assert_eq!(sweep.tam_width, reference.tam_width, "winner width diverged");
            assert_eq!(sweep.best, reference.best, "winner evaluation diverged");
            assert!(
                sweep.evaluations <= ref_evals,
                "the global incumbent must not add evaluations: {} > {ref_evals}",
                sweep.evaluations
            );
        }
    }

    #[test]
    fn cost_sweep_inherits_cross_width_pruning() {
        // On the area-dominated p93791m matrix the wide widths' packed
        // costs rule out members at other widths before packing — the
        // per-width loop had no mechanism for this.
        let soc = MixedSignalSoc::p93791m();
        let widths = [16, 32, 64];
        let weights = CostWeights::balanced();
        let (_, ref_evals) = reference_cost_sweep(&soc, &widths, weights, 0.0);
        let mut p = quick_planner(&soc);
        let sweep = p.cost_optimizer_sweep(&widths, weights, 0.0).unwrap();
        let stats = p.stats();
        assert!(
            stats.cost_bound_prunes > 0,
            "the global cost incumbent must prune members: {stats:?}"
        );
        assert!(
            sweep.evaluations < ref_evals,
            "pruning must save evaluations: {} vs {ref_evals}",
            sweep.evaluations
        );
    }

    #[test]
    fn cost_sweep_is_deterministic_across_runs() {
        let soc = MixedSignalSoc::d695m();
        let run = || {
            let mut p = quick_planner(&soc);
            let report = p.cost_optimizer_sweep(&[16, 24], CostWeights::balanced(), 0.0).unwrap();
            (report, p.stats())
        };
        let (a, a_stats) = run();
        let (b, b_stats) = run();
        assert_eq!(a, b);
        assert_eq!(a_stats, b_stats);
    }

    #[test]
    fn width_too_narrow_for_the_baseline_is_a_schedule_error() {
        // Width 8 cannot fit core D's 10-wire IIP3 test: every cell at
        // w=8 is structurally infeasible. The all-share baseline fails
        // there too, so an explicit narrow width in the width set is an
        // error only when even the baseline cannot be packed (cells that
        // are infeasible for just one candidate are width-bound pruned
        // instead).
        let soc = MixedSignalSoc::d695m();
        let mut p = quick_planner(&soc);
        let configs = p.candidates();
        match p.plan_table(&configs, &[8, 16], CostWeights::balanced()) {
            Err(PlanError::Schedule(_)) => {}
            other => panic!("expected a baseline schedule error, got {other:?}"),
        }
    }
}
