//! The paper's cost model (eqs. 1–3).
//!
//! * **Area overhead cost** `C_A` (eq. 1): the effective wrapper area of a
//!   sharing configuration — `Σ_j (1+ρ_j)·area_j` over its wrappers —
//!   normalized to the no-sharing total `Σ_i a_i` and scaled to 100.
//! * **Test time cost** `C_T`: SOC test time normalized to the
//!   all-cores-share-one-wrapper configuration (the most constrained
//!   schedule) and scaled to 100.
//! * **Total cost** (eq. 2): `C = W_T·C_T + W_A·C_A` with `W_T + W_A = 1`.
//! * **Preliminary cost** (eq. 3): same blend, with the analog test-time
//!   *lower bound* standing in for the scheduled `C_T` — computable
//!   without running the TAM optimizer, which is what makes the paper's
//!   pruning heuristic cheap.

use msoc_analog::AnalogCoreSpec;
use msoc_awrapper::{AreaModel, IncompatibleSharing, SharedWrapper, SharingPolicy};

use crate::partition::SharingConfig;

/// The cost weighting factors `(W_T, W_A)` of the paper's eq. 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    w_time: f64,
    w_area: f64,
}

impl CostWeights {
    /// Creates weights; they must be non-negative and sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if a weight is negative or `w_time + w_area ≠ 1` (±1e-9).
    pub fn new(w_time: f64, w_area: f64) -> Self {
        assert!(w_time >= 0.0 && w_area >= 0.0, "weights must be non-negative");
        assert!(
            ((w_time + w_area) - 1.0).abs() < 1e-9,
            "weights must sum to 1, got {w_time} + {w_area}"
        );
        CostWeights { w_time, w_area }
    }

    /// `W_T = W_A = 0.5`.
    pub fn balanced() -> Self {
        CostWeights::new(0.5, 0.5)
    }

    /// Time-dominated weighting `(0.8, 0.2)`.
    pub fn time_heavy() -> Self {
        CostWeights::new(0.8, 0.2)
    }

    /// Area-dominated weighting `(0.2, 0.8)`.
    pub fn area_heavy() -> Self {
        CostWeights::new(0.2, 0.8)
    }

    /// Pure-makespan weighting `(1, 0)`: area is ignored entirely, which
    /// lets [`Planner::plan_table`](crate::Planner::plan_table) skip the
    /// all-share baseline packs (lazy baselines).
    pub fn time_only() -> Self {
        CostWeights::new(1.0, 0.0)
    }

    /// The test-time weight `W_T`.
    pub fn time(&self) -> f64 {
        self.w_time
    }

    /// The area weight `W_A`.
    pub fn area(&self) -> f64 {
        self.w_area
    }

    /// Blends the two cost components: `W_T·c_time + W_A·c_area`.
    pub fn blend(&self, c_time: f64, c_area: f64) -> f64 {
        self.w_time * c_time + self.w_area * c_area
    }
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights::balanced()
    }
}

/// Area overhead cost `C_A` of a sharing configuration (paper eq. 1):
/// `100 · Σ_j (1+ρ_j)·area_j / Σ_i a_i`.
///
/// The no-sharing configuration scores exactly 100; configurations whose
/// sharing overhead (larger shared wrappers plus routing) exceeds the
/// dedicated-wrapper total score above 100 and should be pruned by the
/// caller, as the paper prescribes.
///
/// # Errors
///
/// Returns [`IncompatibleSharing`] when a group violates the policy's
/// speed–resolution demand cap.
///
/// # Panics
///
/// Panics if `config.n_cores() != cores.len()`.
pub fn area_cost(
    config: &SharingConfig,
    cores: &[AnalogCoreSpec],
    model: &AreaModel,
    policy: &SharingPolicy,
) -> Result<f64, IncompatibleSharing> {
    assert_eq!(config.n_cores(), cores.len(), "config must cover every analog core");
    let mut shared_total = 0.0;
    for group in config.groups() {
        let members: Vec<&AnalogCoreSpec> = group.iter().map(|&c| &cores[c]).collect();
        let wrapper = SharedWrapper::build(&members, model, policy)?;
        shared_total += wrapper.effective_area();
    }
    let dedicated_total: f64 = cores.iter().map(|c| model.core_area(c)).sum();
    Ok(100.0 * shared_total / dedicated_total)
}

/// Analog test-time lower bound of a configuration, in cycles: the busiest
/// wrapper's serial chain, over *all* wrappers including dedicated ones.
/// This is the true scheduling bound.
pub fn analog_time_bound(config: &SharingConfig, cores: &[AnalogCoreSpec]) -> u64 {
    assert_eq!(config.n_cores(), cores.len(), "config must cover every analog core");
    config
        .groups()
        .iter()
        .map(|g| g.iter().map(|&c| cores[c].total_cycles()).sum())
        .max()
        .unwrap_or(0)
}

/// The paper's `T_LB`: the busiest *shared* wrapper's serial chain, in
/// cycles (0 when nothing is shared).
///
/// The paper's Table 1 tabulates this shared-only variant — its `{D,E}`
/// entry is the D+E chain even though core C's dedicated test is longer —
/// because the quantity ranks how much serialization pressure *sharing*
/// adds; dedicated chains are common to every configuration.
pub fn shared_time_bound(config: &SharingConfig, cores: &[AnalogCoreSpec]) -> u64 {
    assert_eq!(config.n_cores(), cores.len(), "config must cover every analog core");
    config
        .groups()
        .iter()
        .filter(|g| g.len() >= 2)
        .map(|g| g.iter().map(|&c| cores[c].total_cycles()).sum())
        .max()
        .unwrap_or(0)
}

/// [`shared_time_bound`] normalized to the all-share configuration's bound
/// (the total analog cycles) and scaled to 100 — the `T̄_LB` column of the
/// paper's Table 1.
pub fn normalized_time_bound(config: &SharingConfig, cores: &[AnalogCoreSpec]) -> f64 {
    let total: u64 = cores.iter().map(AnalogCoreSpec::total_cycles).sum();
    if total == 0 {
        return 0.0;
    }
    100.0 * shared_time_bound(config, cores) as f64 / total as f64
}

/// Test-time cost `C_T`: the scheduled makespan normalized to the
/// all-share configuration's makespan, scaled to 100.
///
/// # Panics
///
/// Panics if `t_max == 0`.
pub fn time_cost(makespan: u64, t_max: u64) -> f64 {
    assert!(t_max > 0, "normalization time must be positive");
    100.0 * makespan as f64 / t_max as f64
}

/// The paper's preliminary cost (eq. 3): the cost blend with the analog
/// lower bound in place of the scheduled time. Cheap to compute, used to
/// pick each group's representative in the `Cost_Optimizer`.
pub fn preliminary_cost(
    config: &SharingConfig,
    cores: &[AnalogCoreSpec],
    model: &AreaModel,
    policy: &SharingPolicy,
    weights: CostWeights,
) -> Result<f64, IncompatibleSharing> {
    let c_a = area_cost(config, cores, model, policy)?;
    Ok(weights.blend(normalized_time_bound(config, cores), c_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msoc_analog::paper_cores;

    fn setup() -> (Vec<AnalogCoreSpec>, AreaModel, SharingPolicy) {
        (paper_cores(), AreaModel::paper_calibrated(), SharingPolicy::default())
    }

    fn cfg(groups: &[&[usize]]) -> SharingConfig {
        SharingConfig::new(5, groups.iter().map(|g| g.to_vec()).collect())
    }

    #[test]
    fn weights_validate_and_blend() {
        let w = CostWeights::new(0.25, 0.75);
        assert_eq!(w.time(), 0.25);
        assert!((w.blend(100.0, 50.0) - 62.5).abs() < 1e-12);
        assert_eq!(CostWeights::default(), CostWeights::balanced());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weight_sum_panics() {
        CostWeights::new(0.5, 0.6);
    }

    #[test]
    fn no_sharing_area_cost_is_exactly_100() {
        let (cores, model, policy) = setup();
        let c = area_cost(&SharingConfig::no_sharing(5), &cores, &model, &policy).unwrap();
        assert!((c - 100.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_area_costs_match_hand_computation() {
        let (cores, model, policy) = setup();
        // Areas {A:20,B:20,C:30,D:70,E:24}, Σ = 164, β = 0.2.
        let check = |groups: &[&[usize]], expected: f64| {
            let c = area_cost(&cfg(groups), &cores, &model, &policy).unwrap();
            assert!((c - expected).abs() < 1e-9, "{:?}: {c} vs {expected}", groups);
        };
        // {A,B}: (1.2·20 + 30 + 70 + 24) / 164.
        check(&[&[0, 1], &[2], &[3], &[4]], 100.0 * 148.0 / 164.0);
        // {A,B,E}{C,D}: (1.4·24 + 1.2·70) / 164.
        check(&[&[0, 1, 4], &[2, 3]], 100.0 * 117.6 / 164.0);
        // All shared: 1.8·70 / 164.
        check(&[&[0, 1, 2, 3, 4]], 100.0 * 126.0 / 164.0);
    }

    #[test]
    fn paper_winning_split_is_the_area_optimum() {
        // {A,B,E}{C,D} — the split the paper's Table 4 selects — carries
        // the smallest C_A of the 26 candidates under the calibration.
        let (cores, model, policy) = setup();
        let best = crate::partition::enumerate_paper(5, &[0, 0, 1, 2, 3])
            .into_iter()
            .map(|c| {
                let cost = area_cost(&c, &cores, &model, &policy).unwrap();
                (c, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(best.0.to_string(), "{A,B,E}{C,D}");
    }

    #[test]
    fn sharing_reduces_area_cost_below_100_everywhere_in_paper_set() {
        let (cores, model, policy) = setup();
        for config in crate::partition::enumerate_paper(5, &[0, 0, 1, 2, 3]) {
            let c = area_cost(&config, &cores, &model, &policy).unwrap();
            assert!(c < 100.0, "{config}: C_A = {c}");
            assert!(c > 0.0);
        }
    }

    #[test]
    fn time_bounds_reproduce_table1_anchors() {
        let (cores, ..) = setup();
        let t = |groups: &[&[usize]]| normalized_time_bound(&cfg(groups), &cores);
        // The paper's Table 1 values (±0.1 for rounding).
        assert!((t(&[&[0, 2], &[1], &[3], &[4]]) - 68.5).abs() < 0.1); // {A,C}
        assert!((t(&[&[2, 3], &[0], &[1], &[4]]) - 56.0).abs() < 0.1); // {C,D}
        assert!((t(&[&[3, 4], &[0], &[1], &[2]]) - 10.1).abs() < 0.1); // {D,E}
        assert!((t(&[&[0, 1], &[2], &[3], &[4]]) - 42.7).abs() < 0.1); // {A,B}
        assert!((t(&[&[0, 1, 2], &[3, 4]]) - 89.8).abs() < 0.1); // {A,B,C}{D,E}
        assert!((t(&[&[0, 1, 2, 3], &[4]]) - 98.7).abs() < 0.1); // {A,B,C,D}
        assert!((t(&[&[0, 1, 2, 3, 4]]) - 100.0).abs() < 1e-9); // all
    }

    #[test]
    fn analog_time_bound_takes_busiest_wrapper() {
        let (cores, ..) = setup();
        // {A,B}{C,D,E}: max(2·135969, 299785+56490+7900) = 364175.
        let b = analog_time_bound(&cfg(&[&[0, 1], &[2, 3, 4]]), &cores);
        assert_eq!(b, 364_175);
    }

    #[test]
    fn shared_bound_ignores_dedicated_wrappers() {
        let (cores, ..) = setup();
        // {D,E}: shared chain 56490+7900 even though C alone is longer.
        let de = cfg(&[&[3, 4], &[0], &[1], &[2]]);
        assert_eq!(shared_time_bound(&de, &cores), 64_390);
        assert_eq!(analog_time_bound(&de, &cores), 299_785);
        // No sharing: nothing contributes.
        assert_eq!(shared_time_bound(&SharingConfig::no_sharing(5), &cores), 0);
    }

    #[test]
    fn time_cost_normalizes_to_100() {
        assert!((time_cost(500, 1000) - 50.0).abs() < 1e-12);
        assert!((time_cost(1000, 1000) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn preliminary_cost_blends_bound_and_area() {
        let (cores, model, policy) = setup();
        let config = cfg(&[&[0, 1], &[2], &[3], &[4]]);
        let c =
            preliminary_cost(&config, &cores, &model, &policy, CostWeights::balanced()).unwrap();
        let expected = 0.5 * normalized_time_bound(&config, &cores)
            + 0.5 * area_cost(&config, &cores, &model, &policy).unwrap();
        assert!((c - expected).abs() < 1e-12);
    }
}
