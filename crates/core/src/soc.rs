//! The mixed-signal SOC: a digital ITC'02 SOC plus wrapped analog cores.

use msoc_analog::{paper_cores, AnalogCoreSpec};
use msoc_itc02::{synth, Soc};

/// A mixed-signal SOC: digital cores from an ITC'02 description plus a set
/// of analog cores to be wrapped.
///
/// # Examples
///
/// ```
/// let soc = msoc_core::MixedSignalSoc::p93791m();
/// assert_eq!(soc.digital.cores().count(), 32);
/// assert_eq!(soc.analog.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSignalSoc {
    /// Display name, e.g. `p93791m`.
    pub name: String,
    /// The digital part.
    pub digital: Soc,
    /// The analog cores (order defines the core indices used by
    /// [`crate::SharingConfig`]).
    pub analog: Vec<AnalogCoreSpec>,
}

impl MixedSignalSoc {
    /// Creates a mixed-signal SOC.
    pub fn new(name: impl Into<String>, digital: Soc, analog: Vec<AnalogCoreSpec>) -> Self {
        MixedSignalSoc { name: name.into(), digital, analog }
    }

    /// The paper's experimental SOC: the synthetic `p93791s` digital SOC
    /// augmented with the five analog cores of Table 2.
    pub fn p93791m() -> Self {
        MixedSignalSoc::new("p93791m", synth::p93791s(), paper_cores())
    }

    /// A light variant for tests: the synthetic `d695s` digital SOC plus
    /// the same five analog cores.
    pub fn d695m() -> Self {
        MixedSignalSoc::new("d695m", synth::d695s(), paper_cores())
    }

    /// Equivalence classes over the analog cores: cores with identical
    /// test sets and resolution belong to one class (for the paper cores,
    /// A ≡ B). Used to deduplicate sharing configurations.
    pub fn analog_equivalence_classes(&self) -> Vec<usize> {
        let mut classes: Vec<usize> = Vec::with_capacity(self.analog.len());
        let mut reps: Vec<usize> = Vec::new();
        for (i, core) in self.analog.iter().enumerate() {
            let found = reps.iter().position(|&r| {
                let rep = &self.analog[r];
                rep.tests == core.tests && rep.resolution_bits == core.resolution_bits
            });
            match found {
                Some(class) => classes.push(class),
                None => {
                    reps.push(i);
                    classes.push(reps.len() - 1);
                }
            }
        }
        classes
    }

    /// Sum of analog test cycles over all cores (the serial-chain length
    /// of the all-cores-on-one-wrapper configuration).
    pub fn total_analog_cycles(&self) -> u64 {
        self.analog.iter().map(AnalogCoreSpec::total_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p93791m_combines_both_parts() {
        let soc = MixedSignalSoc::p93791m();
        assert_eq!(soc.name, "p93791m");
        assert_eq!(soc.digital.name, "p93791s");
        assert_eq!(soc.analog.len(), 5);
        assert_eq!(soc.total_analog_cycles(), 636_113);
    }

    #[test]
    fn equivalence_classes_identify_the_iq_pair() {
        let soc = MixedSignalSoc::p93791m();
        assert_eq!(soc.analog_equivalence_classes(), vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn distinct_cores_get_distinct_classes() {
        let mut soc = MixedSignalSoc::p93791m();
        soc.analog[1].resolution_bits = 9; // break the A ≡ B symmetry
        assert_eq!(soc.analog_equivalence_classes(), vec![0, 1, 2, 3, 4]);
    }
}
