//! The crash-safe snapshot daemon: differential, content-addressed,
//! bounded-staleness export of a [`PlanService`]'s warm state into any
//! [`SnapshotStore`], plus boot-time recovery that quarantines torn or
//! tampered generations and boots from the newest intact one.
//!
//! # Export loop
//!
//! [`SnapshotDaemon::poll`] is the whole daemon: call it from a timer, a
//! request-count hook, or a loop — the daemon itself never spawns a
//! thread, so its behavior is deterministic and testable.
//!
//! * **Differential**: nothing happens unless
//!   [`PlanService::session_ticks`] advanced since the last generation —
//!   the cheap, lock-free "did anything warm up?" signal.
//! * **Bounded staleness**: small advances may be deferred
//!   ([`DaemonConfig::min_dirty_ticks`]) to batch churny traffic, but
//!   never longer than [`DaemonConfig::max_staleness`] — a dirty service
//!   is persisted within the bound or the attempt is on record as a
//!   failure.
//! * **Content-addressed**: the blob name embeds the FNV-1a hash of the
//!   v2 bytes ([`blob_name`]), so a tick advance that did not change the
//!   exportable content (pure cache hits) is skipped for free — equal
//!   bytes, equal name, nothing to write.
//! * **Retry/backoff**: store failures are retried up to
//!   [`DaemonConfig::max_attempts`] times under capped exponential
//!   backoff with deterministic jitter; every persisted generation is
//!   read back and re-hashed ([`DaemonConfig::verify_reads`]), so even a
//!   backend that *silently* corrupts accepted writes eventually holds
//!   an intact copy or the export is reported failed — never trusted.
//! * **Pruning**: after each persisted generation the oldest ones beyond
//!   [`DaemonConfig::keep_generations`] are removed (best-effort; a
//!   failed prune is counted, not fatal).
//!
//! # Recovery
//!
//! [`recover`] walks generations newest-first. A blob whose bytes do not
//! re-hash to the name's content hash, or that fails the v2 decoder's
//! structured verification ([`SnapshotError`](super::SnapshotError)), is
//! **quarantined** (renamed aside so the next boot skips it) and the
//! walk continues; the newest intact generation boots a warm service
//! whose replay is bit-identical to the exporter at that generation.
//! With no intact generation, recovery degrades to a cold service — the
//! one outcome that is always available.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use super::snapshot::{fnv, ExportCache, SectionSizes};
use super::store::{blob_name, draw, parse_blob_name, SnapshotStore, StoreError};
use super::{PlanService, ServiceSnapshot};

/// Tuning of a [`SnapshotDaemon`] (start from `Default` and override).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Generations kept in the store; older ones are pruned after each
    /// successful export (at least 1).
    pub keep_generations: usize,
    /// Attempts per export (first try + retries) before the export is
    /// reported as [`ExportOutcome::GaveUp`] (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`max_backoff`](Self::max_backoff), plus jitter of up to half the
    /// capped value. `Duration::ZERO` disables sleeping (tests).
    pub base_backoff: Duration,
    /// Upper bound of the exponential backoff (before jitter).
    pub max_backoff: Duration,
    /// Defer exporting until at least this many session ticks are dirty
    /// (batches churny traffic; 1 = export on any advance)...
    pub min_dirty_ticks: u64,
    /// ...but never defer a dirty service longer than this.
    pub max_staleness: Duration,
    /// Seed of the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Read every persisted generation back and verify its content hash
    /// before trusting it (catches silent backend corruption at write
    /// time instead of at the next boot).
    pub verify_reads: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            keep_generations: 4,
            max_attempts: 12,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            min_dirty_ticks: 1,
            max_staleness: Duration::from_secs(30),
            jitter_seed: 0x5EED_DAE3_0115_0001,
            verify_reads: true,
        }
    }
}

/// Counters of one daemon's lifetime (all monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonStats {
    /// Calls to [`SnapshotDaemon::poll`] / [`export_now`](SnapshotDaemon::export_now).
    pub polls: u64,
    /// Polls that found the service clean (no tick advance).
    pub clean_polls: u64,
    /// Polls deferred inside the staleness bound.
    pub deferred_polls: u64,
    /// Exports skipped because the content hash matched the newest
    /// persisted generation (the content-addressing dividend).
    pub unchanged_skips: u64,
    /// Generations durably persisted (verified when
    /// [`DaemonConfig::verify_reads`]).
    pub exports_persisted: u64,
    /// Exports abandoned after [`DaemonConfig::max_attempts`] attempts.
    pub exports_failed: u64,
    /// Store attempts retried after a backed-off failure.
    pub put_retries: u64,
    /// Total backoff slept across all retries.
    pub backoff_total: Duration,
    /// Old generations pruned.
    pub pruned_generations: u64,
    /// Service shards served from the differential export cache instead
    /// of being re-walked, summed over all exports (see
    /// [`ExportCache`](super::ExportCache)).
    pub shard_exports_reused: u64,
    /// Prune/list attempts that failed (best-effort, non-fatal).
    pub prune_failures: u64,
    /// The newest generation number this daemon persisted.
    pub last_generation: Option<u64>,
}

/// What one [`SnapshotDaemon::poll`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportOutcome {
    /// The service has not advanced since the last generation.
    Clean,
    /// The service is dirty, but within the staleness bound — deferred
    /// to batch more traffic.
    Deferred {
        /// Session ticks accumulated since the last generation.
        dirty_ticks: u64,
    },
    /// The service advanced but its exportable content is unchanged
    /// (byte-identical to the newest generation) — nothing written.
    Unchanged,
    /// A new generation was durably persisted.
    Persisted {
        /// The generation number (embedded in the blob name).
        generation: u64,
        /// Attempts spent (1 = first try succeeded).
        attempts: u32,
        /// Size of the persisted v2 snapshot.
        bytes: usize,
        /// Per-section byte accounting of the persisted encoding.
        sections: SectionSizes,
    },
    /// Every attempt failed; the service stays dirty and the next poll
    /// retries from scratch.
    GaveUp {
        /// The generation number that could not be persisted.
        generation: u64,
        /// Attempts spent.
        attempts: u32,
        /// The final attempt's error.
        error: StoreError,
    },
}

/// The crash-safe export daemon (see the [module docs](self)).
///
/// Borrow a service and a store, then drive [`poll`](Self::poll):
///
/// ```
/// use msoc_core::service::{MemStore, SnapshotDaemon};
/// use msoc_core::PlanService;
///
/// let service = PlanService::new();
/// let store = MemStore::new();
/// let mut daemon = SnapshotDaemon::new(&service, &store);
/// // ... traffic ...
/// daemon.poll(); // persists iff the service warmed up since last poll
/// ```
#[derive(Debug)]
pub struct SnapshotDaemon<'a, S: SnapshotStore> {
    service: &'a PlanService,
    store: S,
    config: DaemonConfig,
    /// Service tick at the newest generation (`None` = never exported).
    last_tick: Option<u64>,
    /// Content hash of the newest generation.
    last_hash: Option<u64>,
    /// Next generation number to assign (resumes past the store's
    /// newest on attach).
    next_generation: u64,
    /// When the service first went dirty after the last generation.
    dirty_since: Option<Instant>,
    /// Jitter stream.
    rng: u64,
    /// Differential export state: clean shards re-export from here.
    cache: ExportCache,
    stats: DaemonStats,
}

impl<'a, S: SnapshotStore> SnapshotDaemon<'a, S> {
    /// A daemon with the default [`DaemonConfig`].
    pub fn new(service: &'a PlanService, store: S) -> Self {
        SnapshotDaemon::with_config(service, store, DaemonConfig::default())
    }

    /// A daemon with an explicit configuration. Attaching scans the
    /// store (best-effort) so generation numbers continue past the
    /// newest persisted one and an unchanged warm state is recognized
    /// from the newest name's content hash without reading any blob.
    pub fn with_config(service: &'a PlanService, store: S, config: DaemonConfig) -> Self {
        let (next_generation, last_hash) = match store.list() {
            Ok(names) => match names.iter().filter_map(|n| parse_blob_name(n)).max() {
                Some((generation, hash)) => (generation + 1, Some(hash)),
                None => (1, None),
            },
            Err(_) => (1, None),
        };
        SnapshotDaemon {
            service,
            store,
            rng: config.jitter_seed ^ 0x9E37_79B9_7F4A_7C15,
            config,
            last_tick: None,
            last_hash,
            next_generation,
            dirty_since: None,
            cache: ExportCache::new(),
            stats: DaemonStats::default(),
        }
    }

    /// The store the daemon writes through.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// One daemon step: export-if-dirty under the bounded-staleness
    /// policy (see the [module docs](self)).
    pub fn poll(&mut self) -> ExportOutcome {
        self.stats.polls += 1;
        let tick = self.service.session_ticks();
        // Tick 0 = the service never saw a session request; there is
        // nothing worth persisting yet.
        if tick == 0 || self.last_tick == Some(tick) {
            self.dirty_since = None;
            self.stats.clean_polls += 1;
            return ExportOutcome::Clean;
        }
        let since = *self.dirty_since.get_or_insert_with(Instant::now);
        let dirty_ticks = tick.saturating_sub(self.last_tick.unwrap_or(0));
        if dirty_ticks < self.config.min_dirty_ticks && since.elapsed() < self.config.max_staleness
        {
            self.stats.deferred_polls += 1;
            return ExportOutcome::Deferred { dirty_ticks };
        }
        self.export(tick)
    }

    /// Exports immediately, bypassing the staleness policy (still skips
    /// byte-identical content). The crash-consistent flush for graceful
    /// shutdown.
    pub fn export_now(&mut self) -> ExportOutcome {
        self.stats.polls += 1;
        self.export(self.service.session_ticks())
    }

    fn export(&mut self, tick: u64) -> ExportOutcome {
        let (snapshot, reused) = self.service.export_snapshot_with_cache(&mut self.cache);
        self.stats.shard_exports_reused += reused as u64;
        let (bytes, sections) = snapshot.to_bytes_with_stats();
        let hash = fnv(&bytes);
        if self.last_hash == Some(hash) {
            // The ticks were pure cache hits: same exportable content,
            // and the content-addressed name proves it without touching
            // the store.
            self.last_tick = Some(tick);
            self.dirty_since = None;
            self.stats.unchanged_skips += 1;
            return ExportOutcome::Unchanged;
        }
        let generation = self.next_generation;
        let name = blob_name(generation, &bytes);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.try_persist(&name, &bytes, hash) {
                Ok(()) => {
                    self.next_generation = generation + 1;
                    self.last_hash = Some(hash);
                    self.last_tick = Some(tick);
                    self.dirty_since = None;
                    self.stats.exports_persisted += 1;
                    self.stats.last_generation = Some(generation);
                    self.prune();
                    return ExportOutcome::Persisted {
                        generation,
                        attempts,
                        bytes: bytes.len(),
                        sections,
                    };
                }
                Err(error) => {
                    if attempts >= self.config.max_attempts.max(1) {
                        self.stats.exports_failed += 1;
                        return ExportOutcome::GaveUp { generation, attempts, error };
                    }
                    self.stats.put_retries += 1;
                    self.service.store_retries.fetch_add(1, Ordering::Relaxed);
                    let pause = self.backoff(attempts);
                    self.stats.backoff_total += pause;
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }

    /// One persist attempt: put, then (configurably) read back and
    /// re-hash — a backend that accepted the write but stored garbage
    /// fails here instead of at the next boot.
    fn try_persist(&mut self, name: &str, bytes: &[u8], hash: u64) -> Result<(), StoreError> {
        self.store.put(name, bytes)?;
        if self.config.verify_reads {
            let readback = self.store.get(name)?;
            if fnv(&readback) != hash {
                return Err(StoreError::Io(format!(
                    "read-back of {name} does not match what was written"
                )));
            }
        }
        Ok(())
    }

    /// Capped exponential backoff with deterministic jitter before the
    /// retry following failed attempt `attempt` (1-based).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self.config.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.config.max_backoff);
        let half = (capped.as_nanos() / 2).min(u128::from(u64::MAX)) as u64;
        let jitter = if half == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(draw(&mut self.rng) % (half + 1))
        };
        capped + jitter
    }

    /// Keep-last-K pruning (best-effort: a store that refuses to list
    /// or remove costs a counter, never the export).
    fn prune(&mut self) {
        let names = match self.store.list() {
            Ok(names) => names,
            Err(_) => {
                self.stats.prune_failures += 1;
                return;
            }
        };
        let mut generations: Vec<(u64, &String)> =
            names.iter().filter_map(|n| parse_blob_name(n).map(|(g, _)| (g, n))).collect();
        generations.sort_unstable_by_key(|g| std::cmp::Reverse(g.0));
        for (_, name) in generations.into_iter().skip(self.config.keep_generations.max(1)) {
            match self.store.remove(name) {
                Ok(()) => self.stats.pruned_generations += 1,
                Err(_) => self.stats.prune_failures += 1,
            }
        }
    }
}

/// What boot-time recovery found and did (see [`recover`]).
#[derive(Debug)]
pub struct RecoveryReport {
    /// The booted service: warm from the newest intact generation, or
    /// cold when none survived.
    pub service: PlanService,
    /// The generation the service booted from (`None` = cold).
    pub generation: Option<u64>,
    /// Generation blobs considered (quarantined blobs from earlier
    /// boots are not re-scanned — their names no longer parse as
    /// generations).
    pub scanned: usize,
    /// Generations quarantined this boot (torn, tampered or
    /// undecodable). Also recorded on the booted service's
    /// [`ServiceStats::quarantined_generations`](super::ServiceStats).
    pub quarantined: u64,
    /// Quarantine renames that failed (the corrupt blob stays put and
    /// is re-quarantined next boot).
    pub quarantine_failures: u64,
    /// Generations skipped because the store would not yield their
    /// bytes within the retry budget (transient faults — *not*
    /// quarantined; the bytes may be fine).
    pub unreadable: u64,
    /// Checkpoints restored into the booted service (the v2 importer's
    /// accounting).
    pub import_restored: u64,
    /// Checkpoints the v2 importer verified and dropped.
    pub import_dropped: u64,
}

/// Store-operation retry budget inside [`recover`] (transient faults;
/// recovery must make progress against the same faulty backends the
/// export loop survives).
const RECOVERY_ATTEMPTS: u32 = 8;

fn retried<T>(mut op: impl FnMut() -> Result<T, StoreError>) -> Result<T, StoreError> {
    let mut last = None;
    for _ in 0..RECOVERY_ATTEMPTS {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| StoreError::Io("retry budget was zero".into())))
}

/// Boots a service from `store` with the default cache caps: walks
/// generations newest-first, quarantines every corrupt or tampered blob
/// on the way, and restores the newest intact one (cold service if none
/// survive). See [`RecoveryReport`].
pub fn recover(store: &(impl SnapshotStore + ?Sized)) -> RecoveryReport {
    recover_with_caps(store, super::SCHEDULE_CACHE_CAP, super::SESSION_CACHE_CAP)
}

/// [`recover`] with explicit schedule-/session-cache caps (match the
/// exporter's [`PlanService::with_caps`] to keep every entry live).
pub fn recover_with_caps(
    store: &(impl SnapshotStore + ?Sized),
    schedule_cap: usize,
    session_cap: usize,
) -> RecoveryReport {
    let names = retried(|| store.list()).unwrap_or_default();
    let mut generations: Vec<(u64, u64, &String)> =
        names.iter().filter_map(|n| parse_blob_name(n).map(|(g, h)| (g, h, n))).collect();
    generations.sort_unstable_by_key(|g| std::cmp::Reverse(g.0));

    let mut report = RecoveryReport {
        service: PlanService::with_caps(schedule_cap, session_cap),
        generation: None,
        scanned: 0,
        quarantined: 0,
        quarantine_failures: 0,
        unreadable: 0,
        import_restored: 0,
        import_dropped: 0,
    };
    for (generation, named_hash, name) in generations {
        report.scanned += 1;
        let Ok(bytes) = retried(|| store.get(name)) else {
            report.unreadable += 1;
            continue;
        };
        // Tamper check first: the name commits to the content hash, so
        // a blob that decodes fine but is not the blob the daemon wrote
        // (swapped, rolled back) still fails here.
        let verdict = if fnv(&bytes) != named_hash {
            Err(super::SnapshotError::ChecksumMismatch)
        } else {
            ServiceSnapshot::from_bytes(&bytes).and_then(|snapshot| {
                PlanService::from_snapshot_with_caps(&snapshot, schedule_cap, session_cap)
            })
        };
        match verdict {
            Ok(service) => {
                report.service = service;
                report.generation = Some(generation);
                break;
            }
            Err(_) => {
                report.quarantined += 1;
                // Rename aside (copy + remove through the store trait):
                // the bytes stay inspectable, and the next boot's scan
                // no longer parses the name as a generation.
                let quarantined_ok = retried(|| store.put(&format!("{name}.quarantined"), &bytes))
                    .and_then(|()| retried(|| store.remove(name)))
                    .is_ok();
                if !quarantined_ok {
                    report.quarantine_failures += 1;
                }
            }
        }
    }
    report.service.quarantined_generations.fetch_add(report.quarantined, Ordering::Relaxed);
    let sessions = report.service.stats().sessions;
    report.import_restored = sessions.import_restored;
    report.import_dropped = sessions.import_dropped;
    report
}

#[cfg(test)]
mod tests {
    use super::super::store::{FaultyStore, MemStore};
    use super::super::PlanRequest;
    use super::*;
    use crate::cost::CostWeights;
    use crate::planner::PlannerOptions;
    use crate::soc::MixedSignalSoc;
    use msoc_tam::Effort;

    fn quick_opts() -> PlannerOptions {
        PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() }
    }

    fn warm(service: &PlanService, width: u32) {
        let req = PlanRequest::new(MixedSignalSoc::d695m(), width, CostWeights::balanced())
            .with_opts(quick_opts());
        service.plan(&req).unwrap();
    }

    fn fast_config() -> DaemonConfig {
        DaemonConfig {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn clean_and_unchanged_polls_never_touch_the_store() {
        let service = PlanService::new();
        let store = MemStore::new();
        let mut daemon = SnapshotDaemon::with_config(&service, &store, fast_config());
        assert_eq!(daemon.poll(), ExportOutcome::Clean, "tick 0 has nothing to persist");
        warm(&service, 16);
        match daemon.poll() {
            ExportOutcome::Persisted { generation: 1, attempts: 1, .. } => {}
            other => panic!("first dirty poll must persist generation 1: {other:?}"),
        }
        assert_eq!(daemon.poll(), ExportOutcome::Clean, "no new ticks");
        // A fresh daemon attached to the same store recognizes the warm
        // content from the newest name's embedded hash: nothing written,
        // no blob read.
        let mut reattached = SnapshotDaemon::with_config(&service, &store, fast_config());
        assert_eq!(reattached.export_now(), ExportOutcome::Unchanged);
        assert_eq!(store.list().unwrap().len(), 1, "unchanged content writes nothing");
        assert_eq!(reattached.stats().unchanged_skips, 1);
        assert_eq!(daemon.stats().exports_persisted, 1);
    }

    #[test]
    fn staleness_policy_defers_small_advances_but_never_past_the_bound() {
        let service = PlanService::new();
        let store = MemStore::new();
        let config = DaemonConfig {
            min_dirty_ticks: 1_000_000,
            max_staleness: Duration::from_secs(3600),
            ..fast_config()
        };
        let mut daemon = SnapshotDaemon::with_config(&service, &store, config);
        warm(&service, 16);
        match daemon.poll() {
            ExportOutcome::Deferred { dirty_ticks } => assert!(dirty_ticks > 0),
            other => panic!("a small advance inside the bound must defer: {other:?}"),
        }
        // A zero staleness bound forces the export on the next poll.
        daemon.config.max_staleness = Duration::ZERO;
        assert!(matches!(daemon.poll(), ExportOutcome::Persisted { .. }));
        // export_now bypasses the policy entirely.
        warm(&service, 24);
        daemon.config.max_staleness = Duration::from_secs(3600);
        assert!(matches!(daemon.poll(), ExportOutcome::Deferred { .. }));
        assert!(matches!(daemon.export_now(), ExportOutcome::Persisted { .. }));
    }

    #[test]
    fn generations_prune_to_keep_last_k_and_numbers_resume_across_attach() {
        let service = PlanService::new();
        let store = MemStore::new();
        let config = DaemonConfig { keep_generations: 2, ..fast_config() };
        {
            let mut daemon = SnapshotDaemon::with_config(&service, &store, config.clone());
            for width in [16, 20, 24, 28, 32] {
                warm(&service, width);
                assert!(matches!(daemon.poll(), ExportOutcome::Persisted { .. }));
            }
            assert_eq!(daemon.stats().pruned_generations, 3);
            assert_eq!(daemon.stats().last_generation, Some(5));
        }
        let names = store.list().unwrap();
        assert_eq!(names.len(), 2, "keep-last-2: {names:?}");
        let gens: Vec<u64> = names.iter().filter_map(|n| parse_blob_name(n).map(|g| g.0)).collect();
        assert_eq!(gens, vec![4, 5], "newest two generations survive: {names:?}");
        // A fresh daemon over the same store continues the numbering and
        // recognizes the warm content as unchanged without writing.
        let mut again = SnapshotDaemon::with_config(&service, &store, config);
        assert_eq!(again.export_now(), ExportOutcome::Unchanged);
        warm(&service, 36);
        match again.export_now() {
            ExportOutcome::Persisted { generation: 6, .. } => {}
            other => panic!("generation numbers must resume past the store: {other:?}"),
        }
    }

    #[test]
    fn export_loop_survives_heavy_faults_with_retries_and_verified_writes() {
        let service = PlanService::new();
        let faulty = FaultyStore::new(MemStore::new(), 0xFA17, 40);
        // At 40% faults with verified reads, one attempt succeeds with
        // probability ~0.36 — give the loop a budget to match.
        let config = DaemonConfig { max_attempts: 30, ..fast_config() };
        let mut daemon = SnapshotDaemon::with_config(&service, &faulty, config);
        for width in [16, 20, 24, 28] {
            warm(&service, width);
            match daemon.poll() {
                ExportOutcome::Persisted { .. } => {}
                other => panic!("the backoff budget must outlast 40% faults: {other:?}"),
            }
        }
        let stats = daemon.stats();
        assert_eq!(stats.exports_persisted, 4, "{stats:?}");
        assert!(stats.put_retries > 0, "40% faults must force retries: {stats:?}");
        assert_eq!(service.stats().store_retries, stats.put_retries);
        assert!(faulty.fault_counters().total() > 0);
        // Every surviving generation is intact on the *inner* store —
        // verified writes never leave silent corruption behind.
        for name in faulty.inner().list().unwrap() {
            let (_, named_hash) = parse_blob_name(&name).expect("only generations stored");
            let bytes = faulty.inner().get(&name).unwrap();
            assert_eq!(fnv(&bytes), named_hash, "persisted generation {name} is corrupt");
        }
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        let service = PlanService::new();
        let config = DaemonConfig {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            ..DaemonConfig::default()
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let store = MemStore::new();
            let mut daemon = SnapshotDaemon::with_config(
                &service,
                &store,
                DaemonConfig { jitter_seed: seed, ..config.clone() },
            );
            (1..=6).map(|attempt| daemon.backoff(attempt)).collect()
        };
        let a = schedule(7);
        let b = schedule(7);
        assert_eq!(a, b, "same seed, same jitter");
        for (i, pause) in a.iter().enumerate() {
            let uncapped = Duration::from_millis(1 << i);
            let cap = uncapped.min(Duration::from_millis(8));
            assert!(
                *pause >= cap && *pause <= cap + cap / 2 + Duration::from_nanos(1),
                "attempt {}: {pause:?} outside [{cap:?}, 1.5x]",
                i + 1
            );
        }
        assert_ne!(schedule(8), a, "different seeds should jitter differently");
    }

    #[test]
    fn recovery_boots_cold_from_an_empty_or_unlistable_store() {
        let empty = MemStore::new();
        let report = recover(&empty);
        assert_eq!(report.generation, None);
        assert_eq!(report.scanned, 0);
        assert_eq!(report.service.stats().cached_schedules, 0);
        // A store that always fails never panics recovery.
        let dead = FaultyStore::new(MemStore::new(), 1, 100);
        let report = recover(&dead);
        assert_eq!(report.generation, None);
    }

    #[test]
    fn recovery_quarantines_tampered_generations_and_boots_the_newest_intact() {
        let service = PlanService::new();
        let store = MemStore::new();
        let mut daemon = SnapshotDaemon::with_config(&service, &store, fast_config());
        warm(&service, 16);
        assert!(matches!(daemon.poll(), ExportOutcome::Persisted { .. }));
        let intact_hits = {
            // What a clean boot replays: capture before tampering.
            let report = recover(&store);
            assert_eq!(report.generation, Some(1));
            report.service.stats().cached_schedules
        };
        warm(&service, 24);
        assert!(matches!(daemon.poll(), ExportOutcome::Persisted { generation: 2, .. }));
        // Tamper with the newest generation: flip one byte mid-blob.
        let names = store.list().unwrap();
        let newest = names.iter().find(|n| parse_blob_name(n).is_some_and(|g| g.0 == 2)).unwrap();
        let mut bytes = store.get(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        store.put(newest, &bytes).unwrap();

        let report = recover(&store);
        assert_eq!(report.generation, Some(1), "boot falls back to the newest intact");
        assert_eq!(report.quarantined, 1, "the tampered generation is quarantined");
        assert_eq!(report.quarantine_failures, 0);
        assert_eq!(report.service.stats().quarantined_generations, 1);
        assert_eq!(report.service.stats().cached_schedules, intact_hits);
        assert_eq!(report.import_dropped, 0);
        // The quarantined blob is renamed aside, not destroyed...
        let names = store.list().unwrap();
        assert!(names.iter().any(|n| n.ends_with(".quarantined")), "{names:?}");
        // ...and the next boot doesn't re-scan it.
        let again = recover(&store);
        assert_eq!(again.scanned, 1);
        assert_eq!(again.quarantined, 0);
        assert_eq!(again.generation, Some(1));
    }
}
