//! Snapshot persistence: export the service's fingerprinted schedule
//! cache to a versioned byte format and rebuild a warm service from it in
//! another process.
//!
//! The hermetic build has no serde, so the format is hand-rolled:
//! little-endian, magic + version header, FNV-1a trailer checksum (the
//! same [`StableHasher`] stream the cache keys use). A **v2** snapshot
//! carries the *schedule cache* — solved schedules plus the exact
//! session content and delta jobs each one answers for — the session
//! table those entries reference, and every session's **checkpoint
//! trie** ([`CheckpointExport`]), so an imported service replays sweeps
//! warm from disk exactly as warm from RAM: schedule-cache hits need no
//! packing at all, and novel candidates restore their longest packed
//! prefix instead of re-packing skeletons.
//!
//! **v2 compression.** Job contents are interned once in a global
//! deduplicated table (staircases delta-encoded: widths strictly
//! increase, times strictly decrease, so consecutive differences are
//! small positive varints); sessions, tries and schedule records then
//! name jobs by content id. Placements store a **staircase point index**
//! instead of `(width, end)` — the pair is derivable from `start` plus
//! the point — and start coordinates are delta-encoded (trie nodes
//! against their parent checkpoint, schedule entries against the
//! previous entry of the start-sorted schedule) as zigzag varints. The
//! result is sub-linear in schedule count: the per-record cost is a few
//! bytes per entry instead of a re-encoded job vector. v1 snapshots
//! (schedules only, no tries) still decode; [`Self::to_bytes`] always
//! emits v2.
//!
//! [`Self::to_bytes`]: ServiceSnapshot::to_bytes
//!
//! **Content verification on import.** Every imported entry is rebuilt
//! from its carried content and checked: the schedule's recorded makespan
//! must match its entries, the schedule must [`validate`] against the
//! problem formed by its session's skeleton plus its delta jobs, and the
//! trailer checksum must match the bytes. Corruption — truncation, bit
//! flips, length-field tampering — surfaces as a structured
//! [`SnapshotError`], never a panic and never a silently wrong cache
//! entry. (The checksum and validation guard *integrity*; a snapshot is
//! trusted to come from a real service for *optimality*, exactly like any
//! other persisted cache.)
//!
//! [`validate`]: msoc_tam::Schedule::validate

use std::error::Error;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use std::collections::HashMap;

use msoc_tam::{
    fingerprint_jobs, CheckpointExport, CheckpointNode, Effort, Engine, JobKind, PackSession,
    Schedule, ScheduledTest, StableHasher, TestJob, TrieExport,
};
use msoc_wrapper::{Staircase, StaircasePoint};

use super::codec::{read_iv, read_uv, write_iv, write_uv};
use super::{PlanService, ScheduleEntry, SessionEntry};

/// Snapshot format magic (8 bytes).
const MAGIC: &[u8; 8] = b"MSOCSNAP";
/// Current snapshot format version (emitted by [`ServiceSnapshot::to_bytes`]).
const VERSION: u32 = 2;
/// The legacy schedules-only format (still decoded).
const VERSION_1: u32 = 1;

/// An exported view of a service's warm state (see the [module
/// docs](self)); serialize with [`Self::to_bytes`], restore with
/// [`PlanService::from_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    pub(crate) sessions: Vec<SessionRecord>,
    /// Per-session checkpoint tries, aligned with `sessions` (empty
    /// exports for v1 snapshots, whose sessions restore cold).
    pub(crate) tries: Vec<CheckpointExport>,
    pub(crate) schedules: Vec<ScheduleRecord>,
}

/// One pack session's content (skeleton + solver configuration).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SessionRecord {
    pub(crate) tam_width: u32,
    pub(crate) effort: Effort,
    pub(crate) engine: Engine,
    pub(crate) skeleton: Vec<TestJob>,
}

/// One solved schedule plus the exact inputs it answers for.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScheduleRecord {
    /// Index into [`ServiceSnapshot::sessions`].
    pub(crate) session: usize,
    pub(crate) delta: Vec<TestJob>,
    pub(crate) makespan: u64,
    pub(crate) entries: Vec<ScheduledTest>,
}

/// Why a snapshot could not be decoded or imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended inside a record.
    Truncated,
    /// The magic bytes are not a service snapshot's.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The trailer checksum does not match the bytes.
    ChecksumMismatch,
    /// A record is internally inconsistent (description attached).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::BadMagic => write!(f, "not a service snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl Error for SnapshotError {}

/// Section-level accounting of one snapshot encoding, from
/// [`ServiceSnapshot::stats`]: record counts, encoded bytes per format
/// section, and the compression ratio against the uncompressed v1
/// encoding of the same schedule content.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotStats {
    /// Session records carried.
    pub sessions: usize,
    /// Schedule records carried.
    pub schedules: usize,
    /// Checkpoint-trie nodes carried across all sessions.
    pub trie_nodes: usize,
    /// Stored checkpoints (nodes with a restorable pack state) carried.
    pub checkpoints: usize,
    /// Total encoded size, header and trailer included.
    pub total_bytes: usize,
    /// Bytes of the global deduplicated job-content table.
    pub content_bytes: usize,
    /// Bytes of the session table.
    pub session_bytes: usize,
    /// Bytes of the checkpoint-trie sections.
    pub trie_bytes: usize,
    /// Bytes of the schedule records.
    pub schedule_bytes: usize,
    /// Size the schedule content would occupy in the uncompressed v1
    /// encoding (which carries no tries), computed analytically.
    pub v1_bytes: usize,
    /// `v1_bytes` over the v2 bytes spent on the same content
    /// (`total_bytes - trie_bytes`): how much the content table, point
    /// indices and varint deltas save.
    pub compression_ratio: f64,
}

/// Encoded byte length of each v2 section (excludes header/trailer).
struct SectionBytes {
    contents: usize,
    sessions: usize,
    tries: usize,
    schedules: usize,
}

/// Per-section byte accounting of one encoded snapshot, from
/// [`ServiceSnapshot::to_bytes_with_stats`]: the integer subset of
/// [`SnapshotStats`] (no analytic v1 comparison, so it stays `Eq` and
/// can ride inside daemon outcomes that tests compare structurally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSizes {
    /// Bytes of the global deduplicated job-content table.
    pub content_bytes: usize,
    /// Bytes of the session table.
    pub session_bytes: usize,
    /// Bytes of the checkpoint-trie sections.
    pub trie_bytes: usize,
    /// Bytes of the schedule records.
    pub schedule_bytes: usize,
    /// Total encoded size, header and trailer included.
    pub total_bytes: usize,
}

/// One shard's cached export fragment (see [`ExportCache`]).
#[derive(Debug)]
struct ShardFragment {
    /// The shard mutation tick this fragment was built at.
    tick: u64,
    /// Live sessions homed in this shard:
    /// `(last_used, session, checkpoint-trie export)`.
    sessions: Vec<(u64, Arc<PackSession>, CheckpointExport)>,
    /// Schedule tuples in this shard's FIFO memo order:
    /// `(session, delta, makespan, entries)`.
    #[allow(clippy::type_complexity)]
    schedules: Vec<(Arc<PackSession>, Vec<TestJob>, u64, Vec<ScheduledTest>)>,
}

/// Reusable differential-export state for
/// [`PlanService::export_snapshot_with_cache`]: one cached fragment per
/// service shard, tagged with the shard's mutation tick. A shard whose
/// tick has not moved since the fragment was built re-exports from the
/// fragment — no session walk, no trie export, no schedule cloning — so
/// a mostly-idle service snapshots in time proportional to its *dirty*
/// shards.
///
/// A cache belongs to **one** service: fragments index shards by
/// position and compare raw tick values, so reusing a cache against a
/// different `PlanService` can alias unrelated ticks. Create one cache
/// per service (the snapshot daemon does this) and never share it.
#[derive(Debug, Default)]
pub struct ExportCache {
    shards: Vec<Option<ShardFragment>>,
}

impl ExportCache {
    /// An empty cache; the first export through it rebuilds every shard.
    pub fn new() -> Self {
        ExportCache::default()
    }
}

impl ServiceSnapshot {
    /// Number of session records carried.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of cached schedules carried.
    pub fn schedule_count(&self) -> usize {
        self.schedules.len()
    }

    /// Serializes the snapshot (v2, checksummed; see the [module
    /// docs](self)).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_stats().0
    }

    /// [`Self::to_bytes`] plus per-section byte accounting from the same
    /// single encoding pass (use this instead of `to_bytes` + [`stats`]
    /// when both are wanted — [`stats`] re-encodes).
    ///
    /// [`stats`]: Self::stats
    pub fn to_bytes_with_stats(&self) -> (Vec<u8>, SectionSizes) {
        let (mut out, sections) = self.encode();
        let checksum = fnv(&out);
        write_u64(&mut out, checksum);
        let sizes = SectionSizes {
            content_bytes: sections.contents,
            session_bytes: sections.sessions,
            trie_bytes: sections.tries,
            schedule_bytes: sections.schedules,
            total_bytes: out.len(),
        };
        (out, sizes)
    }

    /// Record counts, per-section encoded bytes, and the compression
    /// ratio of this snapshot's [`Self::to_bytes`] encoding.
    pub fn stats(&self) -> SnapshotStats {
        let (body, sections) = self.encode();
        let total_bytes = body.len() + 8;
        let v1_bytes = self.v1_encoded_len();
        let content_equivalent = total_bytes - sections.tries;
        SnapshotStats {
            sessions: self.sessions.len(),
            schedules: self.schedules.len(),
            trie_nodes: self.tries.iter().map(CheckpointExport::node_count).sum(),
            checkpoints: self.tries.iter().map(CheckpointExport::checkpoint_count).sum(),
            total_bytes,
            content_bytes: sections.contents,
            session_bytes: sections.sessions,
            trie_bytes: sections.tries,
            schedule_bytes: sections.schedules,
            v1_bytes,
            compression_ratio: v1_bytes as f64 / content_equivalent.max(1) as f64,
        }
    }

    /// Encodes the v2 body (no trailer), tracking section boundaries.
    fn encode(&self) -> (Vec<u8>, SectionBytes) {
        // Pass 1: intern every distinct job content in deterministic
        // walk order (session skeletons, then trie contents, then
        // schedule deltas), so identical snapshots encode identically.
        fn intern<'a>(
            table: &mut Vec<&'a TestJob>,
            ids: &mut HashMap<&'a TestJob, u64>,
            job: &'a TestJob,
        ) {
            if !ids.contains_key(job) {
                ids.insert(job, table.len() as u64);
                table.push(job);
            }
        }
        let mut table: Vec<&TestJob> = Vec::new();
        let mut ids: HashMap<&TestJob, u64> = HashMap::new();
        for s in &self.sessions {
            for job in &s.skeleton {
                intern(&mut table, &mut ids, job);
            }
        }
        for cps in &self.tries {
            for trie in &cps.tries {
                for job in &trie.contents {
                    intern(&mut table, &mut ids, job);
                }
            }
        }
        for r in &self.schedules {
            for job in &r.delta {
                intern(&mut table, &mut ids, job);
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, VERSION);

        // Global content table.
        let mark = out.len();
        write_uv(&mut out, table.len() as u64);
        for job in &table {
            write_content(&mut out, job);
        }
        let contents = out.len() - mark;

        // Session table.
        let mark = out.len();
        write_uv(&mut out, self.sessions.len() as u64);
        for s in &self.sessions {
            write_uv(&mut out, u64::from(s.tam_width));
            out.push(effort_code(s.effort));
            out.push(engine_code(s.engine));
            write_uv(&mut out, s.skeleton.len() as u64);
            for job in &s.skeleton {
                write_uv(&mut out, ids[job]);
            }
        }
        let sessions = out.len() - mark;

        // Checkpoint-trie sections, aligned with the session table.
        let mark = out.len();
        let empty = CheckpointExport::default();
        for (i, s) in self.sessions.iter().enumerate() {
            let cps = self.tries.get(i).unwrap_or(&empty);
            write_uv(&mut out, cps.tries.len() as u64);
            for trie in &cps.tries {
                write_uv(&mut out, trie.contents.len() as u64);
                for job in &trie.contents {
                    write_uv(&mut out, ids[job]);
                }
                write_uv(&mut out, trie.nodes.len() as u64);
                let mut starts: Vec<u64> = Vec::with_capacity(trie.nodes.len());
                for node in &trie.nodes {
                    write_uv(&mut out, node.parent.map_or(0, |p| u64::from(p) + 1));
                    write_uv(&mut out, u64::from(node.job));
                    write_uv(&mut out, node.content.map_or(0, |c| u64::from(c) + 1));
                    let content = node_content(s, trie, node);
                    write_placement(&mut out, content, node.width, node.start, node.end);
                    let parent_start =
                        node.parent.and_then(|p| starts.get(p as usize).copied()).unwrap_or(0);
                    write_iv(&mut out, node.start as i64 - parent_start as i64);
                    starts.push(node.start);
                    out.push(u8::from(node.stored));
                    if node.stored {
                        write_uv(&mut out, u64::from(node.lru));
                    }
                }
            }
        }
        let tries = out.len() - mark;

        // Schedule records.
        let mark = out.len();
        write_uv(&mut out, self.schedules.len() as u64);
        for r in &self.schedules {
            write_uv(&mut out, r.session as u64);
            write_uv(&mut out, r.delta.len() as u64);
            for job in &r.delta {
                write_uv(&mut out, ids[job]);
            }
            write_uv(&mut out, r.makespan);
            write_uv(&mut out, r.entries.len() as u64);
            let skeleton = self.sessions.get(r.session).map(|s| s.skeleton.as_slice());
            let mut prev_start = 0u64;
            for e in &r.entries {
                write_uv(&mut out, e.job as u64);
                let content = entry_content(skeleton, &r.delta, e.job);
                write_placement(&mut out, content, e.width, e.start, e.end);
                write_iv(&mut out, e.start as i64 - prev_start as i64);
                prev_start = e.start;
            }
        }
        let schedules = out.len() - mark;

        (out, SectionBytes { contents, sessions, tries, schedules })
    }

    /// Size this snapshot's schedule content would occupy in the v1
    /// encoding, computed analytically from the v1 layout (v1 carried
    /// no tries, so trie content is excluded).
    fn v1_encoded_len(&self) -> usize {
        fn job_len(job: &TestJob) -> usize {
            let group = if job.group.is_some() { 5 } else { 1 };
            8 + job.label.len() + 8 + 12 * job.staircase.points().len() + group + 1
        }
        fn jobs_len(jobs: &[TestJob]) -> usize {
            8 + jobs.iter().map(job_len).sum::<usize>()
        }
        let header = MAGIC.len() + 4;
        let sessions: usize =
            8 + self.sessions.iter().map(|s| 4 + 1 + 1 + jobs_len(&s.skeleton)).sum::<usize>();
        let schedules: usize = 8 + self
            .schedules
            .iter()
            .map(|r| 8 + jobs_len(&r.delta) + 8 + 8 + 28 * r.entries.len())
            .sum::<usize>();
        header + sessions + schedules + 8
    }

    /// Decodes a snapshot, verifying the header and trailer checksum;
    /// v1 and v2 streams are both understood.
    ///
    /// # Errors
    ///
    /// Returns the first [`SnapshotError`] the byte stream exhibits.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let recorded = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv(body) != recorded {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader { bytes: body, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        let snapshot = match version {
            VERSION_1 => decode_v1(&mut r)?,
            VERSION => decode_v2(&mut r)?,
            other => return Err(SnapshotError::UnsupportedVersion(other)),
        };
        if r.pos != body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last record",
                body.len() - r.pos
            )));
        }
        Ok(snapshot)
    }
}

/// The job content a trie node's placement refers to, if resolvable:
/// skeleton steps index the session skeleton, delta steps carry a local
/// content id.
fn node_content<'a>(
    session: &'a SessionRecord,
    trie: &'a TrieExport,
    node: &CheckpointNode,
) -> Option<&'a TestJob> {
    let job = node.job as usize;
    if job < session.skeleton.len() {
        session.skeleton.get(job)
    } else {
        node.content.and_then(|c| trie.contents.get(c as usize))
    }
}

/// The job content a schedule entry refers to: the combined problem is
/// skeleton jobs followed by delta jobs, in order.
fn entry_content<'a>(
    skeleton: Option<&'a [TestJob]>,
    delta: &'a [TestJob],
    job: usize,
) -> Option<&'a TestJob> {
    let skeleton = skeleton?;
    if job < skeleton.len() {
        skeleton.get(job)
    } else {
        delta.get(job - skeleton.len())
    }
}

/// Encodes one placement: tag `pi + 1` when `(width, end - start)` is
/// staircase point `pi` of `content` (the common case — one varint),
/// else tag `0` followed by raw width and absolute end, so encoding is
/// total even for hand-mutated snapshots.
fn write_placement(out: &mut Vec<u8>, content: Option<&TestJob>, width: u32, start: u64, end: u64) {
    let point = content.and_then(|job| {
        job.staircase
            .points()
            .iter()
            .position(|p| p.width == width && start.checked_add(p.time) == Some(end))
    });
    match point {
        Some(pi) => write_uv(out, pi as u64 + 1),
        None => {
            write_uv(out, 0);
            write_uv(out, u64::from(width));
            write_uv(out, end);
        }
    }
}

/// One job content in the global table: varint label, delta-encoded
/// staircase (widths strictly increase, times strictly decrease), group
/// tag, kind byte.
fn write_content(out: &mut Vec<u8>, job: &TestJob) {
    write_uv(out, job.label.len() as u64);
    out.extend_from_slice(job.label.as_bytes());
    let points = job.staircase.points();
    write_uv(out, points.len() as u64);
    let mut prev: Option<&StaircasePoint> = None;
    for p in points {
        match prev {
            None => {
                write_uv(out, u64::from(p.width));
                write_uv(out, p.time);
            }
            Some(q) => {
                write_uv(out, u64::from(p.width - q.width));
                write_uv(out, q.time - p.time);
            }
        }
        prev = Some(p);
    }
    write_uv(out, job.group.map_or(0, |g| u64::from(g) + 1));
    out.push(match job.kind {
        JobKind::Skeleton => 0,
        JobKind::Delta => 1,
    });
}

/// Decodes the legacy v1 body (schedules only): imported sessions get
/// empty checkpoint exports and restore cold.
fn decode_v1(r: &mut Reader) -> Result<ServiceSnapshot, SnapshotError> {
    let session_count = r.u64()?;
    let mut sessions = Vec::new();
    for _ in 0..session_count {
        let tam_width = r.u32()?;
        let effort = decode_effort(r.u8()?)?;
        let engine = decode_engine(r.u8()?)?;
        let skeleton = r.jobs()?;
        sessions.push(SessionRecord { tam_width, effort, engine, skeleton });
    }
    let schedule_count = r.u64()?;
    let mut schedules = Vec::new();
    for _ in 0..schedule_count {
        let session = usize::try_from(r.u64()?)
            .map_err(|_| SnapshotError::Corrupt("session index overflows usize".into()))?;
        if session >= sessions.len() {
            return Err(SnapshotError::Corrupt(format!(
                "schedule references session {session} of {}",
                sessions.len()
            )));
        }
        let delta = r.jobs()?;
        let makespan = r.u64()?;
        let entry_count = r.u64()?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            let job = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("job index overflows usize".into()))?;
            let width = r.u32()?;
            let start = r.u64()?;
            let end = r.u64()?;
            entries.push(ScheduledTest { job, width, start, end });
        }
        schedules.push(ScheduleRecord { session, delta, makespan, entries });
    }
    let tries = sessions.iter().map(|_| CheckpointExport::default()).collect();
    Ok(ServiceSnapshot { sessions, tries, schedules })
}

/// Decodes the v2 body (content table, sessions, checkpoint tries,
/// schedules); see the [module docs](self) for the layout.
fn decode_v2(r: &mut Reader) -> Result<ServiceSnapshot, SnapshotError> {
    // Global content table.
    let content_count = r.uv()?;
    let mut contents: Vec<TestJob> = Vec::new();
    for i in 0..content_count {
        contents.push(read_content(r).map_err(|e| prefix(format!("content {i}"), e))?);
    }

    // Session table.
    let session_count = r.uv()?;
    let mut sessions = Vec::new();
    for i in 0..session_count {
        let corrupt = |what: String| SnapshotError::Corrupt(format!("session {i}: {what}"));
        let tam_width =
            u32::try_from(r.uv()?).map_err(|_| corrupt("TAM width overflows u32".into()))?;
        let effort = decode_effort(r.u8()?)?;
        let engine = decode_engine(r.u8()?)?;
        let skeleton_len = r.uv()?;
        let mut skeleton = Vec::new();
        for _ in 0..skeleton_len {
            skeleton.push(content_ref(&contents, r.uv()?).map_err(corrupt)?.clone());
        }
        sessions.push(SessionRecord { tam_width, effort, engine, skeleton });
    }

    // Checkpoint-trie sections, one per session.
    let mut tries = Vec::new();
    for (i, session) in sessions.iter().enumerate() {
        let corrupt = |what: String| SnapshotError::Corrupt(format!("session {i} tries: {what}"));
        let member_count = r.uv()?;
        if member_count > 8 {
            return Err(corrupt(format!("{member_count} portfolio members")));
        }
        let mut export = CheckpointExport::default();
        for _ in 0..member_count {
            let local_count = r.uv()?;
            let mut local: Vec<TestJob> = Vec::new();
            for _ in 0..local_count {
                local.push(content_ref(&contents, r.uv()?).map_err(corrupt)?.clone());
            }
            let node_count = r.uv()?;
            let mut nodes: Vec<CheckpointNode> = Vec::new();
            let mut starts: Vec<u64> = Vec::new();
            for n in 0..node_count {
                let node = read_node(r, session, &local, &starts, n)
                    .map_err(|e| prefix(format!("session {i} trie node {n}"), e))?;
                starts.push(node.start);
                nodes.push(node);
            }
            export.tries.push(TrieExport { contents: local, nodes });
        }
        tries.push(export);
    }

    // Schedule records.
    let schedule_count = r.uv()?;
    let mut schedules = Vec::new();
    for i in 0..schedule_count {
        let corrupt = |what: String| SnapshotError::Corrupt(format!("schedule {i}: {what}"));
        let session = usize::try_from(r.uv()?)
            .map_err(|_| corrupt("session index overflows usize".into()))?;
        let skeleton = sessions.get(session).map(|s| s.skeleton.as_slice()).ok_or_else(|| {
            corrupt(format!("references session {session} of {}", sessions.len()))
        })?;
        let delta_len = r.uv()?;
        let mut delta = Vec::new();
        for _ in 0..delta_len {
            delta.push(content_ref(&contents, r.uv()?).map_err(corrupt)?.clone());
        }
        let makespan = r.uv()?;
        let entry_count = r.uv()?;
        let mut entries: Vec<ScheduledTest> = Vec::new();
        let mut prev_start = 0u64;
        for _ in 0..entry_count {
            let job = usize::try_from(r.uv()?)
                .map_err(|_| corrupt("job index overflows usize".into()))?;
            let content = entry_content(Some(skeleton), &delta, job);
            let (width, duration, raw_end) = read_placement(r, content)
                .map_err(|e| prefix(format!("schedule {i} entry {}", entries.len()), e))?;
            let start = shifted(prev_start, r.iv()?)
                .ok_or_else(|| corrupt("entry start delta out of range".into()))?;
            prev_start = start;
            let end = resolve_end(start, duration, raw_end)
                .ok_or_else(|| corrupt("entry end overflows".into()))?;
            entries.push(ScheduledTest { job, width, start, end });
        }
        schedules.push(ScheduleRecord { session, delta, makespan, entries });
    }

    Ok(ServiceSnapshot { sessions, tries, schedules })
}

/// Prefixes a nested decode error with its record's position.
fn prefix(context: String, e: SnapshotError) -> SnapshotError {
    match e {
        SnapshotError::Corrupt(what) => SnapshotError::Corrupt(format!("{context}: {what}")),
        other => other,
    }
}

/// Looks up a global content id.
fn content_ref(contents: &[TestJob], id: u64) -> Result<&TestJob, String> {
    usize::try_from(id)
        .ok()
        .and_then(|id| contents.get(id))
        .ok_or_else(|| format!("content id {id} of {}", contents.len()))
}

/// Applies a signed varint delta to a base coordinate, rejecting
/// out-of-range results.
fn shifted(base: u64, delta: i64) -> Option<u64> {
    u64::try_from(i128::from(base) + i128::from(delta)).ok()
}

/// Resolves an entry/node end coordinate from either placement form.
fn resolve_end(start: u64, duration: Option<u64>, raw_end: Option<u64>) -> Option<u64> {
    match (duration, raw_end) {
        (Some(d), _) => start.checked_add(d),
        (None, Some(end)) => Some(end),
        (None, None) => None,
    }
}

/// Reads one placement: returns `(width, Some(duration), None)` for the
/// point-indexed form or `(width, None, Some(end))` for the raw form.
fn read_placement(
    r: &mut Reader,
    content: Option<&TestJob>,
) -> Result<(u32, Option<u64>, Option<u64>), SnapshotError> {
    let tag = r.uv()?;
    if tag == 0 {
        let width = u32::try_from(r.uv()?)
            .map_err(|_| SnapshotError::Corrupt("raw placement width overflows u32".into()))?;
        let end = r.uv()?;
        return Ok((width, None, Some(end)));
    }
    let pi = usize::try_from(tag - 1)
        .map_err(|_| SnapshotError::Corrupt("point index overflows usize".into()))?;
    let job = content
        .ok_or_else(|| SnapshotError::Corrupt("point index without resolvable content".into()))?;
    let point = job.staircase.points().get(pi).ok_or_else(|| {
        SnapshotError::Corrupt(format!(
            "point index {pi} of {} ({})",
            job.staircase.points().len(),
            job.label
        ))
    })?;
    Ok((point.width, Some(point.time), None))
}

/// Reads one checkpoint-trie node; `starts` holds the decoded start
/// coordinates of all earlier nodes (parents precede children).
fn read_node(
    r: &mut Reader,
    session: &SessionRecord,
    local: &[TestJob],
    starts: &[u64],
    index: u64,
) -> Result<CheckpointNode, SnapshotError> {
    let corrupt = |what: String| SnapshotError::Corrupt(what);
    let parent_tag = r.uv()?;
    let parent = match parent_tag {
        0 => None,
        tag => {
            let p =
                u32::try_from(tag - 1).map_err(|_| corrupt("parent index overflows u32".into()))?;
            if u64::from(p) >= index {
                return Err(corrupt(format!("parent {p} does not precede node {index}")));
            }
            Some(p)
        }
    };
    let job = u32::try_from(r.uv()?).map_err(|_| corrupt("job index overflows u32".into()))?;
    let content = match r.uv()? {
        0 => None,
        tag => Some(
            u32::try_from(tag - 1).map_err(|_| corrupt("content index overflows u32".into()))?,
        ),
    };
    let resolved = if (job as usize) < session.skeleton.len() {
        session.skeleton.get(job as usize)
    } else {
        content.and_then(|c| local.get(c as usize))
    };
    let (width, duration, raw_end) = read_placement(r, resolved)?;
    let parent_start = parent.and_then(|p| starts.get(p as usize).copied()).unwrap_or(0);
    let start =
        shifted(parent_start, r.iv()?).ok_or_else(|| corrupt("start delta out of range".into()))?;
    let end =
        resolve_end(start, duration, raw_end).ok_or_else(|| corrupt("end overflows".into()))?;
    let stored = match r.u8()? {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("unknown stored tag {other}"))),
    };
    let lru = if stored {
        u32::try_from(r.uv()?).map_err(|_| corrupt("LRU rank overflows u32".into()))?
    } else {
        0
    };
    Ok(CheckpointNode { parent, job, content, width, start, end, stored, lru })
}

/// Reads one global-table job content (see [`write_content`]).
fn read_content(r: &mut Reader) -> Result<TestJob, SnapshotError> {
    let corrupt = |what: String| SnapshotError::Corrupt(what);
    let label_len =
        usize::try_from(r.uv()?).map_err(|_| corrupt("label length overflows usize".into()))?;
    let label = String::from_utf8(r.take(label_len)?.to_vec())
        .map_err(|_| corrupt("label is not UTF-8".into()))?;
    let point_count = r.uv()?;
    if point_count == 0 {
        return Err(corrupt(format!("job {label} has no staircase points")));
    }
    let mut points: Vec<StaircasePoint> = Vec::new();
    for _ in 0..point_count {
        let point = match points.last() {
            None => {
                let width =
                    u32::try_from(r.uv()?).map_err(|_| corrupt("width overflows u32".into()))?;
                StaircasePoint { width, time: r.uv()? }
            }
            Some(prev) => {
                let dw = r.uv()?;
                let dt = r.uv()?;
                if dw == 0 || dt == 0 {
                    return Err(corrupt(format!("job {label} has a non-monotone staircase")));
                }
                let width = u64::from(prev.width)
                    .checked_add(dw)
                    .and_then(|w| u32::try_from(w).ok())
                    .ok_or_else(|| corrupt("width overflows u32".into()))?;
                let time = prev
                    .time
                    .checked_sub(dt)
                    .ok_or_else(|| corrupt(format!("job {label} time underflows")))?;
                StaircasePoint { width, time }
            }
        };
        points.push(point);
    }
    let group = match r.uv()? {
        0 => None,
        tag => Some(u32::try_from(tag - 1).map_err(|_| corrupt("group id overflows u32".into()))?),
    };
    let kind = match r.u8()? {
        0 => JobKind::Skeleton,
        1 => JobKind::Delta,
        other => return Err(corrupt(format!("unknown job kind {other}"))),
    };
    Ok(TestJob { label, staircase: Staircase::from_points(points), group, kind })
}

impl PlanService {
    /// Exports the current schedule cache (and the sessions it
    /// references) as a [`ServiceSnapshot`]. Cache eviction order is
    /// preserved, so an export → import roundtrip behaves like the
    /// original service under further traffic.
    pub fn export_snapshot(&self) -> ServiceSnapshot {
        self.export_snapshot_with_cache(&mut ExportCache::new()).0
    }

    /// [`Self::export_snapshot`] through a differential [`ExportCache`]:
    /// shards whose mutation tick has not moved since `cache` last saw
    /// them re-export from their cached fragment instead of re-walking
    /// sessions, re-exporting tries and re-cloning schedules. Returns the
    /// snapshot and how many shards were served from the cache — the
    /// output is **byte-identical** to a fragment-less export of the same
    /// state (fragments only skip work, never change content or order).
    pub fn export_snapshot_with_cache(&self, cache: &mut ExportCache) -> (ServiceSnapshot, usize) {
        cache.shards.resize_with(self.shards.len(), || None);
        // Hold every shard lock for the duration of the export (acquired
        // in shard index order, the only multi-shard lock site) so the
        // snapshot is one consistent cross-shard view.
        let states: Vec<_> = self.shards.iter().map(|shard| shard.lock()).collect();
        let mut reused = 0usize;
        for ((shard, state), slot) in self.shards.iter().zip(&states).zip(&mut cache.shards) {
            let tick = shard.tick.load(Ordering::Relaxed);
            if slot.as_ref().is_some_and(|f| f.tick == tick) {
                reused += 1;
                continue;
            }
            let mut sessions: Vec<(u64, Arc<PackSession>, CheckpointExport)> = Vec::new();
            for bucket in state.sessions.values() {
                for entry in bucket {
                    sessions.push((
                        entry.last_used,
                        Arc::clone(&entry.session),
                        entry.session.export_checkpoints(),
                    ));
                }
            }
            // This shard's FIFO eviction order, consuming bucket entries
            // in insertion order (each key may appear once per entry).
            let mut schedules = Vec::new();
            let mut cursors: HashMap<u64, usize> = HashMap::new();
            for &key in &state.memo_order {
                let Some(bucket) = state.schedules.get(&key) else { continue };
                let cursor = cursors.entry(key).or_insert(0);
                let Some(entry) = bucket.get(*cursor) else { continue };
                *cursor += 1;
                schedules.push((
                    Arc::clone(&entry.session),
                    entry.delta.clone(),
                    entry.schedule.makespan(),
                    entry.schedule.entries().to_vec(),
                ));
            }
            *slot = Some(ShardFragment { tick, sessions, schedules });
        }
        // Assemble exactly what the fragment-less exporter produced:
        // live sessions first, sorted by the global LRU tick (unique
        // values from one atomic clock, so the order is the service-wide
        // request order), then schedule records in shard-index × FIFO
        // order, orphan sessions — referenced by a schedule but evicted
        // from the session cache — appended at first reference with their
        // tries exported live (orphans are invisible to shard ticks, so
        // they are never served stale from a fragment).
        let mut live: Vec<(u64, &Arc<PackSession>, &CheckpointExport)> = cache
            .shards
            .iter()
            .flatten()
            .flat_map(|f| f.sessions.iter().map(|(t, s, cp)| (*t, s, cp)))
            .collect();
        live.sort_by_key(|e| e.0);
        let mut sessions: Vec<Arc<PackSession>> =
            live.iter().map(|(_, s, _)| Arc::clone(s)).collect();
        let mut tries: Vec<CheckpointExport> =
            live.iter().map(|(_, _, cp)| (*cp).clone()).collect();
        let mut records: Vec<ScheduleRecord> = Vec::new();
        for fragment in cache.shards.iter().flatten() {
            for (session, delta, makespan, entries) in &fragment.schedules {
                let session_idx = match sessions.iter().position(|s| Arc::ptr_eq(s, session)) {
                    Some(idx) => idx,
                    None => {
                        sessions.push(Arc::clone(session));
                        tries.push(session.export_checkpoints());
                        sessions.len() - 1
                    }
                };
                records.push(ScheduleRecord {
                    session: session_idx,
                    delta: delta.clone(),
                    makespan: *makespan,
                    entries: entries.clone(),
                });
            }
        }
        drop(states);
        let snapshot = ServiceSnapshot {
            sessions: sessions
                .into_iter()
                .map(|s| SessionRecord {
                    tam_width: s.tam_width(),
                    effort: s.effort(),
                    engine: s.engine(),
                    skeleton: s.skeleton().to_vec(),
                })
                .collect(),
            tries,
            schedules: records,
        };
        (snapshot, reused)
    }

    /// Rebuilds a warm service from a snapshot with the **default** cache
    /// caps, content-verifying every entry: each schedule must validate
    /// against the problem formed by its session's skeleton and its delta
    /// jobs. A planner on the imported service re-hits the schedule cache
    /// exactly where the exporting service would have.
    ///
    /// The snapshot format does not carry the exporter's cache caps: a
    /// snapshot from a service built with larger
    /// [`with_caps`](PlanService::with_caps) bounds imports only the
    /// newest default-cap's worth of entries (the overflow is dropped
    /// oldest-first and counted in the eviction stats) — use
    /// [`Self::from_snapshot_with_caps`] to restore at full size.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when a record fails
    /// verification.
    pub fn from_snapshot(snapshot: &ServiceSnapshot) -> Result<PlanService, SnapshotError> {
        PlanService::from_snapshot_with_caps(
            snapshot,
            super::SCHEDULE_CACHE_CAP,
            super::SESSION_CACHE_CAP,
        )
    }

    /// [`Self::from_snapshot`] with explicit schedule- and session-cache
    /// bounds (match the exporter's [`with_caps`](PlanService::with_caps)
    /// to keep every snapshot entry live).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when a record fails
    /// verification.
    pub fn from_snapshot_with_caps(
        snapshot: &ServiceSnapshot,
        schedule_cap: usize,
        session_cap: usize,
    ) -> Result<PlanService, SnapshotError> {
        let service = PlanService::with_caps(schedule_cap, session_cap);
        let sessions: Vec<Arc<PackSession>> = snapshot
            .sessions
            .iter()
            .map(|s| {
                Arc::new(PackSession::new(s.tam_width, s.skeleton.clone(), s.effort, s.engine))
            })
            .collect();
        // Restore checkpoint tries before the sessions see traffic. Each
        // restored checkpoint is verified against a deterministic re-pack
        // of its own prefix inside `import_checkpoints`; mismatches are
        // dropped and counted, never trusted.
        for (session, checkpoints) in sessions.iter().zip(&snapshot.tries) {
            session.import_checkpoints(checkpoints);
        }
        for session in &sessions {
            let tick = service.session_tick.fetch_add(1, Ordering::Relaxed) + 1;
            let fp = session.fingerprint();
            let mut state = service.shards[super::shard_index(fp)].lock();
            state
                .sessions
                .entry(fp)
                .or_default()
                .push(SessionEntry { session: Arc::clone(session), last_used: tick });
            state.session_count += 1;
        }
        for (i, record) in snapshot.schedules.iter().enumerate() {
            let corrupt = |what: String| SnapshotError::Corrupt(format!("schedule {i}: {what}"));
            let session = sessions.get(record.session).ok_or_else(|| {
                corrupt(format!("references session {} of {}", record.session, sessions.len()))
            })?;
            let schedule = Schedule::from_persisted(
                session.tam_width(),
                record.makespan,
                record.entries.clone(),
            )
            .map_err(&corrupt)?;
            let mut delta = record.delta.clone();
            for job in &mut delta {
                job.kind = JobKind::Delta;
            }
            let problem = session.problem_for(&delta);
            schedule.validate(&problem).map_err(&corrupt)?;
            let mut h = StableHasher::new();
            h.write_u64(session.fingerprint());
            h.write_u64(fingerprint_jobs(&delta));
            let key = h.finish();
            let mut state = service.shards[super::shard_index(key)].lock();
            state.schedules.entry(key).or_default().push(ScheduleEntry {
                session: Arc::clone(session),
                delta,
                schedule: Arc::new(schedule),
            });
            state.memo_order.push_back(key);
        }
        // A snapshot larger than the caps keeps each shard's newest
        // entries; the drops are visible in the eviction counters, not
        // silent. Every shard's mutation tick is bumped once so the
        // import is visible to any differential [`ExportCache`] built
        // over this service.
        for shard in service.shards.iter() {
            let mut state = shard.lock();
            shard.tick.fetch_add(1, Ordering::Relaxed);
            state.trim_schedules(service.schedule_cap);
            while state.session_count > service.session_cap {
                state.evict_lru_session();
            }
        }
        Ok(service)
    }
}

fn effort_code(effort: Effort) -> u8 {
    match effort {
        Effort::Quick => 0,
        Effort::Standard => 1,
        Effort::Thorough => 2,
    }
}

fn decode_effort(code: u8) -> Result<Effort, SnapshotError> {
    match code {
        0 => Ok(Effort::Quick),
        1 => Ok(Effort::Standard),
        2 => Ok(Effort::Thorough),
        other => Err(SnapshotError::Corrupt(format!("unknown effort code {other}"))),
    }
}

fn engine_code(engine: Engine) -> u8 {
    match engine {
        Engine::Skyline => 0,
        Engine::Naive => 1,
        Engine::MaxRects => 2,
        Engine::Guillotine => 3,
        Engine::Portfolio => 4,
    }
}

fn decode_engine(code: u8) -> Result<Engine, SnapshotError> {
    match code {
        0 => Ok(Engine::Skyline),
        1 => Ok(Engine::Naive),
        2 => Ok(Engine::MaxRects),
        3 => Ok(Engine::Guillotine),
        4 => Ok(Engine::Portfolio),
        other => Err(SnapshotError::Corrupt(format!("unknown engine code {other}"))),
    }
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over untrusted bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// One LEB128 varint (v2 sections).
    fn uv(&mut self) -> Result<u64, SnapshotError> {
        read_uv(self.bytes, &mut self.pos)
    }

    /// One zigzag varint (v2 sections).
    fn iv(&mut self) -> Result<i64, SnapshotError> {
        read_iv(self.bytes, &mut self.pos)
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("string length overflows usize".into()))?;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("label is not UTF-8".into()))
    }

    fn jobs(&mut self) -> Result<Vec<TestJob>, SnapshotError> {
        let count = self.u64()?;
        let mut jobs = Vec::new();
        for _ in 0..count {
            let label = self.string()?;
            let point_count = self.u64()?;
            let mut points = Vec::new();
            for _ in 0..point_count {
                let width = self.u32()?;
                let time = self.u64()?;
                points.push(StaircasePoint { width, time });
            }
            // `Staircase::from_points` panics on malformed input; the
            // service boundary must reject it as corruption instead.
            if points.is_empty() {
                return Err(SnapshotError::Corrupt(format!("job {label} has no staircase points")));
            }
            let monotone = points
                .windows(2)
                .all(|pair| pair[0].width < pair[1].width && pair[0].time > pair[1].time);
            if !monotone {
                return Err(SnapshotError::Corrupt(format!(
                    "job {label} has a non-monotone staircase"
                )));
            }
            let group = match self.u8()? {
                0 => None,
                1 => Some(self.u32()?),
                other => return Err(SnapshotError::Corrupt(format!("unknown group tag {other}"))),
            };
            let kind = match self.u8()? {
                0 => JobKind::Skeleton,
                1 => JobKind::Delta,
                other => return Err(SnapshotError::Corrupt(format!("unknown job kind {other}"))),
            };
            jobs.push(TestJob { label, staircase: Staircase::from_points(points), group, kind });
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{JobBuilder, PlanService};
    use super::*;
    use crate::soc::MixedSignalSoc;
    use crate::{CostWeights, PlannerOptions};

    fn quick_opts() -> PlannerOptions {
        PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() }
    }

    fn warm_service() -> (PlanService, Vec<super::super::Job>) {
        let service = PlanService::new();
        let jobs: Vec<_> = [16u32, 24]
            .iter()
            .map(|&w| {
                JobBuilder::new(MixedSignalSoc::d695m())
                    .single(w)
                    .weights(CostWeights::balanced())
                    .opts(quick_opts())
                    .build()
                    .unwrap()
            })
            .collect();
        let outcomes = service.submit(&jobs);
        assert!(outcomes.iter().all(|o| o.report().is_some()));
        (service, jobs)
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let (service, _) = warm_service();
        let snapshot = service.export_snapshot();
        assert!(snapshot.schedule_count() > 0);
        assert!(snapshot.session_count() > 0);
        assert!(
            snapshot.tries.iter().map(CheckpointExport::checkpoint_count).sum::<usize>() > 0,
            "a warm service must export checkpoints"
        );
        let bytes = snapshot.to_bytes();
        let decoded = ServiceSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn snapshot_stats_account_for_every_byte_and_beat_v1_encoding() {
        let (service, _) = warm_service();
        let snapshot = service.export_snapshot();
        let stats = snapshot.stats();
        assert_eq!(stats.sessions, snapshot.session_count());
        assert_eq!(stats.schedules, snapshot.schedule_count());
        assert_eq!(stats.total_bytes, snapshot.to_bytes().len());
        let header_and_trailer = MAGIC.len() + 4 + 8;
        assert_eq!(
            stats.content_bytes
                + stats.session_bytes
                + stats.trie_bytes
                + stats.schedule_bytes
                + header_and_trailer,
            stats.total_bytes,
            "sections plus framing must cover the stream: {stats:?}"
        );
        assert!(stats.trie_nodes >= stats.checkpoints);
        assert!(stats.checkpoints > 0, "{stats:?}");
        // The acceptance bound: v2 spends under 1/1.5 of the v1 bytes on
        // the same schedule content.
        assert!(
            stats.compression_ratio > 1.5,
            "v2 must compress the v1 encoding by >1.5x: {stats:?}"
        );
    }

    #[test]
    fn cached_export_is_byte_identical_and_reuses_clean_shards() {
        let (service, _) = warm_service();
        let mut cache = ExportCache::new();
        // Cold cache: every fragment rebuilds, output matches the
        // fragment-less exporter bit for bit.
        let (first, reused) = service.export_snapshot_with_cache(&mut cache);
        assert_eq!(reused, 0, "a cold cache has nothing to reuse");
        assert_eq!(first.to_bytes(), service.export_snapshot().to_bytes());
        // Idle service: every fragment reuses, output unchanged.
        let (idle, reused) = service.export_snapshot_with_cache(&mut cache);
        assert_eq!(reused, service.shards.len());
        assert_eq!(idle.to_bytes(), first.to_bytes());
        // Incremental traffic dirties only the touched shards; the cached
        // export still matches a fresh full export exactly.
        let job = JobBuilder::new(MixedSignalSoc::d695m())
            .single(32)
            .weights(CostWeights::balanced())
            .opts(quick_opts())
            .build()
            .unwrap();
        assert!(service.submit(std::slice::from_ref(&job))[0].report().is_some());
        let (after, reused) = service.export_snapshot_with_cache(&mut cache);
        assert!(reused > 0, "untouched shards must be served from the cache");
        assert!(reused < service.shards.len(), "the new traffic must dirty a shard");
        assert_eq!(after.to_bytes(), service.export_snapshot().to_bytes());
        assert!(after.schedule_count() > first.schedule_count());
    }

    #[test]
    fn snapshot_bytes_are_a_fixed_point_of_import_then_export() {
        let (service, _) = warm_service();
        let bytes = service.export_snapshot().to_bytes();
        let imported =
            PlanService::from_snapshot(&ServiceSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        let again = imported.export_snapshot().to_bytes();
        assert_eq!(bytes, again, "export → import → export must be bit-identical");
    }

    #[test]
    fn imported_sessions_restore_their_checkpoint_tries() {
        let (service, jobs) = warm_service();
        let snapshot = service.export_snapshot();
        let imported = PlanService::from_snapshot(&snapshot).unwrap();
        let warm = imported.stats();
        assert!(
            warm.sessions.import_restored > 0,
            "imported sessions must restore checkpoints: {warm:?}"
        );
        assert_eq!(warm.sessions.import_dropped, 0, "{warm:?}");
        // Replay hits the schedule cache outright; the restored tries are
        // exercised (and proven equal to warm RAM) by the session-level
        // property tests and the bench `snapshot` section.
        let replay = imported.submit(&jobs);
        assert!(replay.iter().all(|o| o.report().is_some()));
        assert_eq!(imported.stats().sessions.skeleton_misses, warm.sessions.skeleton_misses);
    }

    #[test]
    fn tampered_checkpoints_are_dropped_and_counted_not_fatal() {
        let (service, jobs) = warm_service();
        let baseline = service.submit(&jobs);
        let mut snapshot = service.export_snapshot();
        let victim = snapshot
            .tries
            .iter_mut()
            .flat_map(|cps| cps.tries.iter_mut())
            .find(|t| !t.nodes.is_empty())
            .expect("a warm snapshot has trie nodes");
        victim.nodes[0].start += 1;
        // Checkpoints are an optimization, not content: a tampered
        // placement fails its verification re-pack and is dropped, the
        // import itself succeeds.
        let imported = PlanService::from_snapshot(&snapshot).unwrap();
        let stats = imported.stats();
        assert!(stats.sessions.import_dropped > 0, "{stats:?}");
        let replay = imported.submit(&jobs);
        for (a, b) in baseline.iter().zip(&replay) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
        }
    }

    #[test]
    fn imported_services_replay_without_packing_and_bit_identically() {
        let (service, jobs) = warm_service();
        let baseline = service.submit(&jobs);
        let snapshot = service.export_snapshot();
        let bytes = snapshot.to_bytes();
        let imported =
            PlanService::from_snapshot(&ServiceSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        let replay = imported.submit(&jobs);
        for (a, b) in baseline.iter().zip(&replay) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
        }
        let stats = imported.stats();
        assert_eq!(stats.schedule_misses, 0, "imported replay must be pure cache hits: {stats:?}");
        assert!(stats.schedule_hits > 0, "{stats:?}");
    }

    #[test]
    fn import_caps_are_explicit_and_overflow_is_counted_not_silent() {
        // Warm enough widths that the schedule count outnumbers the
        // shards — per-shard caps then evict by pigeonhole.
        let service = PlanService::new();
        let jobs: Vec<_> = [16u32, 20, 24, 28]
            .iter()
            .map(|&w| {
                JobBuilder::new(MixedSignalSoc::d695m())
                    .single(w)
                    .weights(CostWeights::balanced())
                    .opts(quick_opts())
                    .build()
                    .unwrap()
            })
            .collect();
        assert!(service.submit(&jobs).iter().all(|o| o.report().is_some()));
        let snapshot = service.export_snapshot();
        let shards = service.shard_count();
        assert!(snapshot.schedule_count() > shards);
        // A tiny cap (one schedule and one session per shard) keeps only
        // each shard's newest entries and says so.
        let starved = PlanService::from_snapshot_with_caps(&snapshot, 1, 1).unwrap();
        let stats = starved.stats();
        assert!(stats.cached_schedules as usize <= shards, "{stats:?}");
        assert!(stats.schedule_evictions > 0, "{stats:?}");
        assert_eq!(
            (stats.cached_schedules + stats.schedule_evictions) as usize,
            snapshot.schedule_count(),
            "dropped snapshot entries must be visible: {stats:?}"
        );
        // Results stay correct either way — dropped entries just repack.
        let replay = starved.submit(&jobs);
        let baseline = service.submit(&jobs);
        for (a, b) in baseline.iter().zip(&replay) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
        }
        // A cap matching the exporter's keeps everything.
        let roomy = PlanService::from_snapshot_with_caps(&snapshot, 4096, 256).unwrap();
        assert_eq!(roomy.stats().schedule_evictions, 0);
        assert_eq!(roomy.stats().cached_schedules as usize, snapshot.schedule_count());
    }

    #[test]
    fn every_flipped_byte_is_rejected_not_panicking() {
        let (service, _) = warm_service();
        let bytes = service.export_snapshot().to_bytes();
        // Flip a sample of bytes across the whole stream; every mutation
        // must surface a structured error or decode to a snapshot whose
        // import still verifies (a flip confined to, say, a makespan is
        // caught by the checksum first).
        for i in (0..bytes.len()).step_by(41) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match ServiceSnapshot::from_bytes(&bad) {
                Err(_) => {}
                Ok(snapshot) => {
                    // Checksum collision is ~impossible at one flip; but if
                    // decode succeeded the import verification must hold.
                    let _ = PlanService::from_snapshot(&snapshot);
                }
            }
        }
        // Truncations at every prefix length are structured errors too.
        for len in 0..bytes.len().min(64) {
            assert!(ServiceSnapshot::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn tampered_records_fail_import_verification() {
        let (service, _) = warm_service();
        let mut snapshot = service.export_snapshot();
        // A makespan that disagrees with its entries is corrupt.
        snapshot.schedules[0].makespan += 1;
        match PlanService::from_snapshot(&snapshot) {
            Err(SnapshotError::Corrupt(what)) => assert!(what.contains("makespan"), "{what}"),
            other => panic!("expected corruption, got {other:?}"),
        }
        // An entry widened off its staircase fails validation: no job has
        // a `(width + 1, same time)` point (staircases are strictly
        // monotone in both axes).
        let (service, _) = warm_service();
        let mut snapshot = service.export_snapshot();
        snapshot.schedules[0].entries[0].width += 1;
        match PlanService::from_snapshot(&snapshot) {
            Err(SnapshotError::Corrupt(what)) => assert!(what.contains("staircase"), "{what}"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let (service, _) = warm_service();
        let bytes = service.export_snapshot().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // The checksum sees the magic flip first; patch the checksum to
        // prove the magic check itself fires.
        let len = wrong_magic.len();
        let fixed = fnv(&wrong_magic[..len - 8]);
        wrong_magic[len - 8..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(ServiceSnapshot::from_bytes(&wrong_magic), Err(SnapshotError::BadMagic));

        let mut wrong_version = bytes;
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = wrong_version.len();
        let fixed = fnv(&wrong_version[..len - 8]);
        wrong_version[len - 8..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(
            ServiceSnapshot::from_bytes(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }
}
