//! Snapshot persistence: export the service's fingerprinted schedule
//! cache to a versioned byte format and rebuild a warm service from it in
//! another process.
//!
//! The hermetic build has no serde, so the format is hand-rolled:
//! little-endian, length-prefixed, magic + version header, FNV-1a
//! trailer checksum (the same [`StableHasher`] stream the cache keys
//! use). A snapshot carries the *schedule cache* — solved schedules plus
//! the exact session content and delta jobs each one answers for — and
//! the session table those entries reference; imported sessions start
//! with cold checkpoints (checkpoints are a wall-time optimization, not
//! content) and rebuild them on first use.
//!
//! **Content verification on import.** Every imported entry is rebuilt
//! from its carried content and checked: the schedule's recorded makespan
//! must match its entries, the schedule must [`validate`] against the
//! problem formed by its session's skeleton plus its delta jobs, and the
//! trailer checksum must match the bytes. Corruption — truncation, bit
//! flips, length-field tampering — surfaces as a structured
//! [`SnapshotError`], never a panic and never a silently wrong cache
//! entry. (The checksum and validation guard *integrity*; a snapshot is
//! trusted to come from a real service for *optimality*, exactly like any
//! other persisted cache.)
//!
//! [`validate`]: msoc_tam::Schedule::validate

use std::error::Error;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use msoc_tam::{
    fingerprint_jobs, Effort, Engine, JobKind, PackSession, Schedule, ScheduledTest, StableHasher,
    TestJob,
};
use msoc_wrapper::{Staircase, StaircasePoint};

use super::{PlanService, ScheduleEntry, SessionEntry};

/// Snapshot format magic (8 bytes).
const MAGIC: &[u8; 8] = b"MSOCSNAP";
/// Current snapshot format version.
const VERSION: u32 = 1;

/// An exported view of a service's warm state (see the [module
/// docs](self)); serialize with [`Self::to_bytes`], restore with
/// [`PlanService::from_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    pub(crate) sessions: Vec<SessionRecord>,
    pub(crate) schedules: Vec<ScheduleRecord>,
}

/// One pack session's content (skeleton + solver configuration).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SessionRecord {
    pub(crate) tam_width: u32,
    pub(crate) effort: Effort,
    pub(crate) engine: Engine,
    pub(crate) skeleton: Vec<TestJob>,
}

/// One solved schedule plus the exact inputs it answers for.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScheduleRecord {
    /// Index into [`ServiceSnapshot::sessions`].
    pub(crate) session: usize,
    pub(crate) delta: Vec<TestJob>,
    pub(crate) makespan: u64,
    pub(crate) entries: Vec<ScheduledTest>,
}

/// Why a snapshot could not be decoded or imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended inside a record.
    Truncated,
    /// The magic bytes are not a service snapshot's.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The trailer checksum does not match the bytes.
    ChecksumMismatch,
    /// A record is internally inconsistent (description attached).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::BadMagic => write!(f, "not a service snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl Error for SnapshotError {}

impl ServiceSnapshot {
    /// Number of session records carried.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of cached schedules carried.
    pub fn schedule_count(&self) -> usize {
        self.schedules.len()
    }

    /// Serializes the snapshot (versioned, checksummed; see the
    /// [module docs](self)).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, VERSION);
        write_u64(&mut out, self.sessions.len() as u64);
        for s in &self.sessions {
            write_u32(&mut out, s.tam_width);
            out.push(effort_code(s.effort));
            out.push(engine_code(s.engine));
            write_jobs(&mut out, &s.skeleton);
        }
        write_u64(&mut out, self.schedules.len() as u64);
        for r in &self.schedules {
            write_u64(&mut out, r.session as u64);
            write_jobs(&mut out, &r.delta);
            write_u64(&mut out, r.makespan);
            write_u64(&mut out, r.entries.len() as u64);
            for e in &r.entries {
                write_u64(&mut out, e.job as u64);
                write_u32(&mut out, e.width);
                write_u64(&mut out, e.start);
                write_u64(&mut out, e.end);
            }
        }
        let checksum = fnv(&out);
        write_u64(&mut out, checksum);
        out
    }

    /// Decodes a snapshot, verifying the header and trailer checksum.
    ///
    /// # Errors
    ///
    /// Returns the first [`SnapshotError`] the byte stream exhibits.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let recorded = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        if fnv(body) != recorded {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut r = Reader { bytes: body, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let session_count = r.u64()?;
        let mut sessions = Vec::new();
        for _ in 0..session_count {
            let tam_width = r.u32()?;
            let effort = decode_effort(r.u8()?)?;
            let engine = decode_engine(r.u8()?)?;
            let skeleton = r.jobs()?;
            sessions.push(SessionRecord { tam_width, effort, engine, skeleton });
        }
        let schedule_count = r.u64()?;
        let mut schedules = Vec::new();
        for _ in 0..schedule_count {
            let session = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::Corrupt("session index overflows usize".into()))?;
            if session >= sessions.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "schedule references session {session} of {}",
                    sessions.len()
                )));
            }
            let delta = r.jobs()?;
            let makespan = r.u64()?;
            let entry_count = r.u64()?;
            let mut entries = Vec::new();
            for _ in 0..entry_count {
                let job = usize::try_from(r.u64()?)
                    .map_err(|_| SnapshotError::Corrupt("job index overflows usize".into()))?;
                let width = r.u32()?;
                let start = r.u64()?;
                let end = r.u64()?;
                entries.push(ScheduledTest { job, width, start, end });
            }
            schedules.push(ScheduleRecord { session, delta, makespan, entries });
        }
        if r.pos != body.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last record",
                body.len() - r.pos
            )));
        }
        Ok(ServiceSnapshot { sessions, schedules })
    }
}

impl PlanService {
    /// Exports the current schedule cache (and the sessions it
    /// references) as a [`ServiceSnapshot`]. Cache eviction order is
    /// preserved, so an export → import roundtrip behaves like the
    /// original service under further traffic.
    pub fn export_snapshot(&self) -> ServiceSnapshot {
        // Hold every shard lock for the duration of the export (acquired
        // in shard index order, the only multi-shard lock site) so the
        // snapshot is one consistent cross-shard view.
        let states: Vec<_> = self.shards.iter().map(|shard| shard.lock()).collect();
        // Sessions first, in LRU-tick order (the tick clock is global, so
        // this is the service-wide request order and deterministic given
        // the service history): the live session cache plus any session
        // only the schedule entries still reference.
        let mut live: Vec<&SessionEntry> =
            states.iter().flat_map(|state| state.sessions.values().flatten()).collect();
        live.sort_by_key(|e| e.last_used);
        let mut sessions: Vec<Arc<PackSession>> =
            live.into_iter().map(|e| Arc::clone(&e.session)).collect();
        let mut records: Vec<ScheduleRecord> = Vec::new();
        // Walk each shard's FIFO eviction order in shard index order,
        // consuming bucket entries in insertion order (each key may
        // appear once per entry).
        for state in &states {
            let mut cursors: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            for &key in &state.memo_order {
                let Some(bucket) = state.schedules.get(&key) else { continue };
                let cursor = cursors.entry(key).or_insert(0);
                let Some(entry) = bucket.get(*cursor) else { continue };
                *cursor += 1;
                let session_idx = match sessions.iter().position(|s| Arc::ptr_eq(s, &entry.session))
                {
                    Some(idx) => idx,
                    None => {
                        sessions.push(Arc::clone(&entry.session));
                        sessions.len() - 1
                    }
                };
                records.push(ScheduleRecord {
                    session: session_idx,
                    delta: entry.delta.clone(),
                    makespan: entry.schedule.makespan(),
                    entries: entry.schedule.entries().to_vec(),
                });
            }
        }
        ServiceSnapshot {
            sessions: sessions
                .into_iter()
                .map(|s| SessionRecord {
                    tam_width: s.tam_width(),
                    effort: s.effort(),
                    engine: s.engine(),
                    skeleton: s.skeleton().to_vec(),
                })
                .collect(),
            schedules: records,
        }
    }

    /// Rebuilds a warm service from a snapshot with the **default** cache
    /// caps, content-verifying every entry: each schedule must validate
    /// against the problem formed by its session's skeleton and its delta
    /// jobs. A planner on the imported service re-hits the schedule cache
    /// exactly where the exporting service would have.
    ///
    /// The snapshot format does not carry the exporter's cache caps: a
    /// snapshot from a service built with larger
    /// [`with_caps`](PlanService::with_caps) bounds imports only the
    /// newest default-cap's worth of entries (the overflow is dropped
    /// oldest-first and counted in the eviction stats) — use
    /// [`Self::from_snapshot_with_caps`] to restore at full size.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when a record fails
    /// verification.
    pub fn from_snapshot(snapshot: &ServiceSnapshot) -> Result<PlanService, SnapshotError> {
        PlanService::from_snapshot_with_caps(
            snapshot,
            super::SCHEDULE_CACHE_CAP,
            super::SESSION_CACHE_CAP,
        )
    }

    /// [`Self::from_snapshot`] with explicit schedule- and session-cache
    /// bounds (match the exporter's [`with_caps`](PlanService::with_caps)
    /// to keep every snapshot entry live).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Corrupt`] when a record fails
    /// verification.
    pub fn from_snapshot_with_caps(
        snapshot: &ServiceSnapshot,
        schedule_cap: usize,
        session_cap: usize,
    ) -> Result<PlanService, SnapshotError> {
        let service = PlanService::with_caps(schedule_cap, session_cap);
        let sessions: Vec<Arc<PackSession>> = snapshot
            .sessions
            .iter()
            .map(|s| {
                Arc::new(PackSession::new(s.tam_width, s.skeleton.clone(), s.effort, s.engine))
            })
            .collect();
        for session in &sessions {
            let tick = service.session_tick.fetch_add(1, Ordering::Relaxed) + 1;
            let fp = session.fingerprint();
            let mut state = service.shards[super::shard_index(fp)].lock();
            state
                .sessions
                .entry(fp)
                .or_default()
                .push(SessionEntry { session: Arc::clone(session), last_used: tick });
            state.session_count += 1;
        }
        for (i, record) in snapshot.schedules.iter().enumerate() {
            let corrupt = |what: String| SnapshotError::Corrupt(format!("schedule {i}: {what}"));
            let session = sessions.get(record.session).ok_or_else(|| {
                corrupt(format!("references session {} of {}", record.session, sessions.len()))
            })?;
            let schedule = Schedule::from_persisted(
                session.tam_width(),
                record.makespan,
                record.entries.clone(),
            )
            .map_err(&corrupt)?;
            let mut delta = record.delta.clone();
            for job in &mut delta {
                job.kind = JobKind::Delta;
            }
            let problem = session.problem_for(&delta);
            schedule.validate(&problem).map_err(&corrupt)?;
            let mut h = StableHasher::new();
            h.write_u64(session.fingerprint());
            h.write_u64(fingerprint_jobs(&delta));
            let key = h.finish();
            let mut state = service.shards[super::shard_index(key)].lock();
            state.schedules.entry(key).or_default().push(ScheduleEntry {
                session: Arc::clone(session),
                delta,
                schedule: Arc::new(schedule),
            });
            state.memo_order.push_back(key);
        }
        // A snapshot larger than the caps keeps each shard's newest
        // entries; the drops are visible in the eviction counters, not
        // silent.
        for shard in service.shards.iter() {
            let mut state = shard.lock();
            state.trim_schedules(service.schedule_cap);
            while state.session_count > service.session_cap {
                state.evict_lru_session();
            }
        }
        Ok(service)
    }
}

fn effort_code(effort: Effort) -> u8 {
    match effort {
        Effort::Quick => 0,
        Effort::Standard => 1,
        Effort::Thorough => 2,
    }
}

fn decode_effort(code: u8) -> Result<Effort, SnapshotError> {
    match code {
        0 => Ok(Effort::Quick),
        1 => Ok(Effort::Standard),
        2 => Ok(Effort::Thorough),
        other => Err(SnapshotError::Corrupt(format!("unknown effort code {other}"))),
    }
}

fn engine_code(engine: Engine) -> u8 {
    match engine {
        Engine::Skyline => 0,
        Engine::Naive => 1,
        Engine::MaxRects => 2,
        Engine::Guillotine => 3,
        Engine::Portfolio => 4,
    }
}

fn decode_engine(code: u8) -> Result<Engine, SnapshotError> {
    match code {
        0 => Ok(Engine::Skyline),
        1 => Ok(Engine::Naive),
        2 => Ok(Engine::MaxRects),
        3 => Ok(Engine::Guillotine),
        4 => Ok(Engine::Portfolio),
        other => Err(SnapshotError::Corrupt(format!("unknown engine code {other}"))),
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_jobs(out: &mut Vec<u8>, jobs: &[TestJob]) {
    write_u64(out, jobs.len() as u64);
    for job in jobs {
        write_str(out, &job.label);
        write_u64(out, job.staircase.points().len() as u64);
        for p in job.staircase.points() {
            write_u32(out, p.width);
            write_u64(out, p.time);
        }
        match job.group {
            Some(g) => {
                out.push(1);
                write_u32(out, g);
            }
            None => out.push(0),
        }
        out.push(match job.kind {
            JobKind::Skeleton => 0,
            JobKind::Delta => 1,
        });
    }
}

/// Bounds-checked little-endian reader over untrusted bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("string length overflows usize".into()))?;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("label is not UTF-8".into()))
    }

    fn jobs(&mut self) -> Result<Vec<TestJob>, SnapshotError> {
        let count = self.u64()?;
        let mut jobs = Vec::new();
        for _ in 0..count {
            let label = self.string()?;
            let point_count = self.u64()?;
            let mut points = Vec::new();
            for _ in 0..point_count {
                let width = self.u32()?;
                let time = self.u64()?;
                points.push(StaircasePoint { width, time });
            }
            // `Staircase::from_points` panics on malformed input; the
            // service boundary must reject it as corruption instead.
            if points.is_empty() {
                return Err(SnapshotError::Corrupt(format!("job {label} has no staircase points")));
            }
            let monotone = points
                .windows(2)
                .all(|pair| pair[0].width < pair[1].width && pair[0].time > pair[1].time);
            if !monotone {
                return Err(SnapshotError::Corrupt(format!(
                    "job {label} has a non-monotone staircase"
                )));
            }
            let group = match self.u8()? {
                0 => None,
                1 => Some(self.u32()?),
                other => return Err(SnapshotError::Corrupt(format!("unknown group tag {other}"))),
            };
            let kind = match self.u8()? {
                0 => JobKind::Skeleton,
                1 => JobKind::Delta,
                other => return Err(SnapshotError::Corrupt(format!("unknown job kind {other}"))),
            };
            jobs.push(TestJob { label, staircase: Staircase::from_points(points), group, kind });
        }
        Ok(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{JobBuilder, PlanService};
    use super::*;
    use crate::soc::MixedSignalSoc;
    use crate::{CostWeights, PlannerOptions};

    fn quick_opts() -> PlannerOptions {
        PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() }
    }

    fn warm_service() -> (PlanService, Vec<super::super::Job>) {
        let service = PlanService::new();
        let jobs: Vec<_> = [16u32, 24]
            .iter()
            .map(|&w| {
                JobBuilder::new(MixedSignalSoc::d695m())
                    .single(w)
                    .weights(CostWeights::balanced())
                    .opts(quick_opts())
                    .build()
                    .unwrap()
            })
            .collect();
        let outcomes = service.submit(&jobs);
        assert!(outcomes.iter().all(|o| o.report().is_some()));
        (service, jobs)
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let (service, _) = warm_service();
        let snapshot = service.export_snapshot();
        assert!(snapshot.schedule_count() > 0);
        assert!(snapshot.session_count() > 0);
        let bytes = snapshot.to_bytes();
        let decoded = ServiceSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn imported_services_replay_without_packing_and_bit_identically() {
        let (service, jobs) = warm_service();
        let baseline = service.submit(&jobs);
        let snapshot = service.export_snapshot();
        let bytes = snapshot.to_bytes();
        let imported =
            PlanService::from_snapshot(&ServiceSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        let replay = imported.submit(&jobs);
        for (a, b) in baseline.iter().zip(&replay) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
        }
        let stats = imported.stats();
        assert_eq!(stats.schedule_misses, 0, "imported replay must be pure cache hits: {stats:?}");
        assert!(stats.schedule_hits > 0, "{stats:?}");
    }

    #[test]
    fn import_caps_are_explicit_and_overflow_is_counted_not_silent() {
        // Warm enough widths that the schedule count outnumbers the
        // shards — per-shard caps then evict by pigeonhole.
        let service = PlanService::new();
        let jobs: Vec<_> = [16u32, 20, 24, 28]
            .iter()
            .map(|&w| {
                JobBuilder::new(MixedSignalSoc::d695m())
                    .single(w)
                    .weights(CostWeights::balanced())
                    .opts(quick_opts())
                    .build()
                    .unwrap()
            })
            .collect();
        assert!(service.submit(&jobs).iter().all(|o| o.report().is_some()));
        let snapshot = service.export_snapshot();
        let shards = service.shard_count();
        assert!(snapshot.schedule_count() > shards);
        // A tiny cap (one schedule and one session per shard) keeps only
        // each shard's newest entries and says so.
        let starved = PlanService::from_snapshot_with_caps(&snapshot, 1, 1).unwrap();
        let stats = starved.stats();
        assert!(stats.cached_schedules as usize <= shards, "{stats:?}");
        assert!(stats.schedule_evictions > 0, "{stats:?}");
        assert_eq!(
            (stats.cached_schedules + stats.schedule_evictions) as usize,
            snapshot.schedule_count(),
            "dropped snapshot entries must be visible: {stats:?}"
        );
        // Results stay correct either way — dropped entries just repack.
        let replay = starved.submit(&jobs);
        let baseline = service.submit(&jobs);
        for (a, b) in baseline.iter().zip(&replay) {
            let (a, b) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
        }
        // A cap matching the exporter's keeps everything.
        let roomy = PlanService::from_snapshot_with_caps(&snapshot, 4096, 256).unwrap();
        assert_eq!(roomy.stats().schedule_evictions, 0);
        assert_eq!(roomy.stats().cached_schedules as usize, snapshot.schedule_count());
    }

    #[test]
    fn every_flipped_byte_is_rejected_not_panicking() {
        let (service, _) = warm_service();
        let bytes = service.export_snapshot().to_bytes();
        // Flip a sample of bytes across the whole stream; every mutation
        // must surface a structured error or decode to a snapshot whose
        // import still verifies (a flip confined to, say, a makespan is
        // caught by the checksum first).
        for i in (0..bytes.len()).step_by(41) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match ServiceSnapshot::from_bytes(&bad) {
                Err(_) => {}
                Ok(snapshot) => {
                    // Checksum collision is ~impossible at one flip; but if
                    // decode succeeded the import verification must hold.
                    let _ = PlanService::from_snapshot(&snapshot);
                }
            }
        }
        // Truncations at every prefix length are structured errors too.
        for len in 0..bytes.len().min(64) {
            assert!(ServiceSnapshot::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn tampered_records_fail_import_verification() {
        let (service, _) = warm_service();
        let mut snapshot = service.export_snapshot();
        // A makespan that disagrees with its entries is corrupt.
        snapshot.schedules[0].makespan += 1;
        match PlanService::from_snapshot(&snapshot) {
            Err(SnapshotError::Corrupt(what)) => assert!(what.contains("makespan"), "{what}"),
            other => panic!("expected corruption, got {other:?}"),
        }
        // An entry widened off its staircase fails validation: no job has
        // a `(width + 1, same time)` point (staircases are strictly
        // monotone in both axes).
        let (service, _) = warm_service();
        let mut snapshot = service.export_snapshot();
        snapshot.schedules[0].entries[0].width += 1;
        match PlanService::from_snapshot(&snapshot) {
            Err(SnapshotError::Corrupt(what)) => assert!(what.contains("staircase"), "{what}"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let (service, _) = warm_service();
        let bytes = service.export_snapshot().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // The checksum sees the magic flip first; patch the checksum to
        // prove the magic check itself fires.
        let len = wrong_magic.len();
        let fixed = fnv(&wrong_magic[..len - 8]);
        wrong_magic[len - 8..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(ServiceSnapshot::from_bytes(&wrong_magic), Err(SnapshotError::BadMagic));

        let mut wrong_version = bytes;
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        let len = wrong_version.len();
        let fixed = fnv(&wrong_version[..len - 8]);
        wrong_version[len - 8..].copy_from_slice(&fixed.to_le_bytes());
        assert_eq!(
            ServiceSnapshot::from_bytes(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }
}
