//! Varint primitives for the v2 snapshot encoding.
//!
//! Snapshot v2 stores almost every integer as a **LEB128 varint**: seven
//! payload bits per byte, least-significant group first, high bit set on
//! every byte except the last. Signed deltas (placement starts relative to
//! the parent checkpoint, entry starts relative to the previous entry) are
//! **zigzag-mapped** first (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) so small
//! magnitudes of either sign stay short.
//!
//! The reader is strict: encodings longer than ten bytes, payload bits past
//! the 64th, and non-canonical zero continuation tails are all rejected as
//! corruption rather than silently accepted, so every valid value has
//! exactly one encoding and flipped bytes cannot alias to a different valid
//! stream.
//!
//! The primitives are public: the `msoc_net` wire protocol frames its
//! messages with the same strict varints, so a flipped length byte on the
//! wire fails exactly like a flipped length byte on disk.

use super::snapshot::SnapshotError;

/// Append `value` as a LEB128 varint.
pub fn write_uv(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `value` zigzag-mapped, then LEB128.
pub fn write_iv(out: &mut Vec<u8>, value: i64) {
    write_uv(out, zigzag(value));
}

/// Map a signed value to an unsigned one with small absolute values first.
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Invert [`zigzag`].
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Decode one LEB128 varint from `bytes` starting at `*pos`, advancing it.
///
/// # Errors
///
/// [`SnapshotError::Truncated`] when the stream ends mid-varint,
/// [`SnapshotError::Corrupt`] for overlong or non-canonical encodings.
pub fn read_uv(bytes: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let mut value: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *bytes.get(*pos).ok_or(SnapshotError::Truncated)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(SnapshotError::Corrupt("varint overflows 64 bits".into()));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift != 0 {
                return Err(SnapshotError::Corrupt("non-canonical varint".into()));
            }
            return Ok(value);
        }
    }
    Err(SnapshotError::Corrupt("varint longer than 10 bytes".into()))
}

/// Decode one zigzag varint.
///
/// # Errors
///
/// As [`read_uv`].
pub fn read_iv(bytes: &[u8], pos: &mut usize) -> Result<i64, SnapshotError> {
    Ok(unzigzag(read_uv(bytes, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_uv(value: u64) {
        let mut buf = Vec::new();
        write_uv(&mut buf, value);
        let mut pos = 0;
        assert_eq!(read_uv(&buf, &mut pos).expect("roundtrip"), value);
        assert_eq!(pos, buf.len(), "no trailing bytes for {value}");
    }

    #[test]
    fn unsigned_values_roundtrip() {
        for value in [0, 1, 127, 128, 255, 300, 16383, 16384, u64::from(u32::MAX), u64::MAX] {
            roundtrip_uv(value);
        }
    }

    #[test]
    fn signed_values_roundtrip() {
        for value in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_iv(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_iv(&buf, &mut pos).expect("roundtrip"), value);
        }
    }

    #[test]
    fn small_magnitudes_encode_short() {
        let mut buf = Vec::new();
        write_iv(&mut buf, -3);
        assert_eq!(buf.len(), 1, "zigzag keeps small negatives in one byte");
    }

    #[test]
    fn truncated_and_overlong_encodings_are_rejected() {
        let mut pos = 0;
        assert!(matches!(read_uv(&[0x80], &mut pos), Err(SnapshotError::Truncated)));
        // Eleven continuation bytes can never be a canonical u64.
        let overlong = [0x80u8; 11];
        pos = 0;
        assert!(matches!(read_uv(&overlong, &mut pos), Err(SnapshotError::Corrupt(_))));
        // 0x80 0x00 re-encodes zero with a wasted byte: non-canonical.
        pos = 0;
        assert!(matches!(read_uv(&[0x80, 0x00], &mut pos), Err(SnapshotError::Corrupt(_))));
        // Payload bits past the 64th.
        let wide = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        pos = 0;
        assert!(matches!(read_uv(&wide, &mut pos), Err(SnapshotError::Corrupt(_))));
    }
}
