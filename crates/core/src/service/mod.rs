//! The persistent plan service: fingerprinted caches shared across
//! planner instances and whole fleets of SOCs, plus the job-oriented
//! multi-SOC planning front-end.
//!
//! A [`Planner`] is scoped to one SOC and one options set; every planner
//! used to rebuild its pack sessions and schedules from nothing. A
//! [`PlanService`] is the long-lived owner of that state:
//!
//! * **Session cache** — [`PackSession`]s keyed by their stable content
//!   [fingerprint](PackSession::fingerprint) (skeleton jobs + TAM width +
//!   effort + engine). Two planners for the same digital SOC — or two
//!   *runs* of the same plan request hours apart — share one session, and
//!   with it every skeleton checkpoint and delta-prefix snapshot the
//!   session has accumulated.
//! * **Schedule cache** — solved schedules keyed by (session fingerprint,
//!   delta-job fingerprint), so a warm service answers repeated plan
//!   requests without packing at all.
//! * **Job front-end** — [`PlanService::submit`] runs a batch of typed
//!   [`Job`]s (single-width plan, cross-width table, or best-width query,
//!   built by one [`JobBuilder`] that owns all request validation) over
//!   the available cores via `msoc_par`, honoring per-job
//!   [`Deadline`]s, [`CancelToken`]s and [`Priority`], and returns one
//!   typed [`JobOutcome`] per job. The legacy entry points
//!   ([`PlanService::plan`], [`plan_batch`], [`plan_table`],
//!   [`plan_table_batch`]) are thin shims over `submit`.
//! * **Incremental revisions** — [`PlanService::register`] issues a
//!   [`SocHandle`]; [`SocHandle::revise`] applies [`CoreEdit`]s and
//!   re-fingerprints only the dirty core subtrees, so re-planning a
//!   lightly edited fleet re-hits the caches everywhere the content is
//!   unchanged (see [`ServiceStats::revision_cache_hits`]).
//! * **Snapshots** — [`PlanService::export_snapshot`] /
//!   [`PlanService::from_snapshot`] round-trip the fingerprinted schedule
//!   cache through a versioned byte format ([`ServiceSnapshot`]), closing
//!   the cross-process persistence gap.
//! * **Crash safety** — [`SnapshotDaemon`] persists generations of that
//!   format differentially (only when [`PlanService::session_ticks`]
//!   advanced, skipping content-identical re-exports for free via
//!   content-addressed [`blob_name`]s) into any [`SnapshotStore`], with
//!   capped exponential backoff on store faults, keep-last-K pruning,
//!   and boot-time [`recover`]y that quarantines torn or tampered
//!   generations and boots warm from the newest intact one.
//!
//! Fingerprints are fast discriminators, not proofs: both caches verify
//! full content equality on every fingerprint hit and treat mismatches as
//! misses, so served results are **bit-identical** to what a cold planner
//! would compute — the property tests in `tests/properties.rs` assert
//! this across random fleets.
//!
//! ```
//! use msoc_core::{CostWeights, JobBuilder, JobResult, MixedSignalSoc, PlanService};
//!
//! let service = PlanService::new();
//! let soc = service.register(MixedSignalSoc::d695m());
//! let job = JobBuilder::for_handle(&soc).single(16).weights(CostWeights::balanced()).build()?;
//! let cold = service.submit(std::slice::from_ref(&job));
//! let warm = service.submit(std::slice::from_ref(&job)); // schedule-cache hits
//! let (cold, warm) = (cold[0].report().unwrap(), warm[0].report().unwrap());
//! match (&cold.result, &warm.result) {
//!     (JobResult::Plan(c), JobResult::Plan(w)) => assert_eq!(c.best, w.best),
//!     other => unreachable!("single jobs return plans: {other:?}"),
//! }
//! assert!(service.stats().schedule_hits > 0);
//! # Ok::<(), msoc_core::PlanError>(())
//! ```

pub mod codec;
mod daemon;
pub(crate) mod job;
mod revision;
mod snapshot;
mod store;

pub use daemon::{
    recover, recover_with_caps, DaemonConfig, DaemonStats, ExportOutcome, RecoveryReport,
    SnapshotDaemon,
};
pub use job::{
    CancelToken, Deadline, Job, JobBuilder, JobOutcome, JobReport, JobResult, JobSpec, Priority,
};
pub use revision::{CoreEdit, SocHandle};
pub use snapshot::{ExportCache, SectionSizes, ServiceSnapshot, SnapshotError, SnapshotStats};
pub use store::{
    blob_name, parse_blob_name, DirStore, FaultCounters, FaultyStore, MemStore, SnapshotStore,
    StoreError,
};

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use msoc_tam::{
    fingerprint_jobs, Effort, Engine, PackSession, Schedule, ScheduleError, SessionStats,
    StableHasher, TestJob,
};

use crate::cost::CostWeights;
use crate::planner::table::TableReport;
use crate::planner::{PlanError, PlanReport, PlannerOptions};
use crate::soc::MixedSignalSoc;

#[cfg(test)]
use crate::planner::Planner;

/// Default bound on retained schedules in the service's schedule cache.
const SCHEDULE_CACHE_CAP: usize = 4096;

/// Default bound on live pack sessions in the service's session cache.
///
/// Each session retains its skeleton jobs plus up to a few MB of packed
/// checkpoints, so an unbounded cache would grow without limit under
/// multi-tenant traffic (every distinct digital SOC × width × effort is a
/// new session). Above the cap the least recently *requested* session is
/// dropped; results never change — an evicted session is rebuilt cold on
/// its next request.
const SESSION_CACHE_CAP: usize = 256;

/// Number of cache shards (power of two; the shard index is the low bits
/// of the FNV fingerprint).
///
/// Sixteen shards keep the per-shard mutex hold times short enough that
/// submitter threads only contend when they genuinely hit the same
/// fingerprint neighborhood, while staying small enough that aggregating
/// [`ServiceStats`] across shards stays cheap. FNV-1a mixes every input
/// byte into the low bits, so fingerprints spread uniformly; going wider
/// than the host's core count buys nothing (a thread can only hold one
/// shard lock at a time), so 16 covers the deployment targets without
/// per-host tuning.
const SHARDS: usize = 16;

/// The shard index a fingerprint lives in.
fn shard_index(fp: u64) -> usize {
    fp as usize & (SHARDS - 1)
}

/// One fully cached schedule: the exact inputs it answers for (verified on
/// every hit) plus the solved schedule. Holding the session `Arc` (not
/// just its fingerprint) is what makes hit verification *content*-exact on
/// the session side too: a fingerprint collision between two sessions with
/// different skeletons must degrade to a miss, never to a schedule packed
/// against the wrong skeleton.
#[derive(Debug)]
struct ScheduleEntry {
    session: Arc<PackSession>,
    delta: Vec<TestJob>,
    schedule: Arc<Schedule>,
}

/// Full content equality of two sessions (the collision-proof check
/// behind every fingerprint-keyed session hit).
fn sessions_equal(a: &PackSession, b: &PackSession) -> bool {
    a.tam_width() == b.tam_width()
        && a.effort() == b.effort()
        && a.engine() == b.engine()
        && a.skeleton() == b.skeleton()
}

/// One cached session plus its LRU clock value.
#[derive(Debug)]
struct SessionEntry {
    session: Arc<PackSession>,
    /// Value of `session_tick` at the last hit or insertion.
    last_used: u64,
}

/// One cache shard: the slice of both fingerprint-keyed caches whose
/// keys land in this shard, behind its own lock. Concurrent submitters
/// only serialize when they touch the same shard.
#[derive(Debug, Default)]
struct Shard {
    state: Mutex<ShardState>,
    /// Times a locker found this shard's mutex already held (a would-block
    /// `try_lock` before the blocking acquire) — the contention signal the
    /// load harness reports per shard.
    contention: AtomicU64,
    /// Monotone per-shard mutation clock: bumped whenever this shard's
    /// *exportable* content may have changed — a session request landing
    /// here (LRU order moved), a pack landing a schedule here, a pack
    /// mutating the checkpoint trie of a session homed here, or a
    /// snapshot import inserting here. The differential exporter
    /// ([`ExportCache`]) reuses a shard's cached fragment while this
    /// clock stands still.
    tick: AtomicU64,
}

impl Shard {
    /// Locks the shard, counting contention when the lock is already held.
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        match self.state.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.state.lock().expect("plan service shard lock")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => {
                unreachable!("plan service shard lock poisoned")
            }
        }
    }
}

#[derive(Debug, Default)]
struct ShardState {
    /// Sessions bucketed by fingerprint; the bucket is a `Vec` so a
    /// fingerprint collision degrades to a linear content scan instead of
    /// a wrong answer. LRU-bounded by the service's per-shard session cap.
    sessions: HashMap<u64, Vec<SessionEntry>>,
    /// Live sessions (cheaper than re-counting the buckets per insert).
    session_count: usize,
    /// Solved schedules bucketed by combined fingerprint, FIFO-bounded
    /// per shard.
    schedules: HashMap<u64, Vec<ScheduleEntry>>,
    memo_order: VecDeque<u64>,
    session_lookups: u64,
    session_hits: u64,
    session_misses: u64,
    session_evictions: u64,
    schedule_lookups: u64,
    schedule_hits: u64,
    schedule_misses: u64,
    schedule_evictions: u64,
}

impl ShardState {
    /// Drops the least recently used session (LRU over request ticks).
    /// Outstanding `Arc` handles — planners mid-sweep, schedule-cache
    /// entries — keep evicted sessions alive until released; the service
    /// just stops handing them out.
    fn evict_lru_session(&mut self) {
        let victim = self
            .sessions
            .iter()
            .flat_map(|(&fp, bucket)| {
                bucket.iter().enumerate().map(move |(i, e)| (e.last_used, fp, i))
            })
            .min()
            .map(|(_, fp, i)| (fp, i));
        let Some((fp, i)) = victim else { return };
        let bucket = self.sessions.get_mut(&fp).expect("victim bucket exists");
        bucket.remove(i);
        if bucket.is_empty() {
            self.sessions.remove(&fp);
        }
        self.session_count -= 1;
        self.session_evictions += 1;
    }

    /// Enforces the per-shard schedule FIFO cap (oldest-first).
    fn trim_schedules(&mut self, cap: usize) {
        while self.memo_order.len() > cap {
            let Some(old) = self.memo_order.pop_front() else { break };
            let mut evicted = false;
            if let Some(bucket) = self.schedules.get_mut(&old) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    evicted = true;
                }
                if bucket.is_empty() {
                    self.schedules.remove(&old);
                }
            }
            if evicted {
                self.schedule_evictions += 1;
            }
        }
    }
}

/// Aggregate statistics of a [`PlanService`].
///
/// The `session_*`/`schedule_*` counters are the service's own cache
/// layers; `sessions` aggregates the reuse counters of every pack session
/// the service owns (see [`SessionStats`]); `live_sessions` and
/// `cached_schedules` are current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Session-cache lookups (`session_hits + session_misses`).
    pub session_lookups: u64,
    /// Planner session requests served from the cache.
    pub session_hits: u64,
    /// Sessions created (fingerprint misses).
    pub session_misses: u64,
    /// Sessions dropped by the LRU session cap.
    pub session_evictions: u64,
    /// Schedule-cache lookups (`schedule_hits + schedule_misses`).
    pub schedule_lookups: u64,
    /// Pack requests answered from the schedule cache.
    pub schedule_hits: u64,
    /// Pack requests that had to pack.
    pub schedule_misses: u64,
    /// Schedules dropped by the FIFO cap.
    pub schedule_evictions: u64,
    /// Session- and schedule-cache hits served to jobs planned through a
    /// *revised* [`SocHandle`] — the reuse the incremental-revision API
    /// exists for (unchanged content re-hits, only dirty content repacks).
    pub revision_cache_hits: u64,
    /// Jobs accepted by [`PlanService::submit`] (shed jobs included —
    /// they arrived, the service chose not to run them).
    pub jobs_submitted: u64,
    /// Jobs that ended interrupted (deadline exceeded or cancelled).
    pub jobs_interrupted: u64,
    /// Jobs that ended [`JobOutcome::Failed`] — a caught per-job panic,
    /// or an outcome lost by the dispatch layer.
    pub jobs_failed: u64,
    /// Jobs shed without running — beyond the per-batch
    /// [`PlanService::with_admission_cap`] or the service-wide
    /// [`PlanService::with_queue_depth_cap`] (both return
    /// [`JobOutcome::Rejected`]).
    pub jobs_shed: u64,
    /// Snapshot-store put/get attempts retried by a
    /// [`SnapshotDaemon`] bound to this service (each retry follows a
    /// backed-off store failure).
    pub store_retries: u64,
    /// Snapshot generations quarantined during boot-time recovery
    /// ([`recover`]) because their bytes were torn, tampered or
    /// undecodable.
    pub quarantined_generations: u64,
    /// Aggregate pack-session counters over every owned session.
    pub sessions: SessionStats,
    /// Sessions currently owned.
    pub live_sessions: u64,
    /// Schedules currently cached.
    pub cached_schedules: u64,
    /// Times any shard lock was found already held (see
    /// [`ShardStats::contentions`]).
    pub lock_contentions: u64,
}

/// Per-shard cache statistics (see [`PlanService::shard_stats`]).
///
/// The sum of any counter over all shards equals the corresponding
/// [`ServiceStats`] aggregate — the coherence the concurrency property
/// tests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index (low bits of the fingerprint).
    pub index: usize,
    /// Sessions currently owned by this shard.
    pub live_sessions: u64,
    /// Schedules currently cached in this shard.
    pub cached_schedules: u64,
    /// Session-cache lookups that landed in this shard.
    pub session_lookups: u64,
    /// Schedule-cache lookups that landed in this shard.
    pub schedule_lookups: u64,
    /// Times this shard's lock was found already held by another thread.
    pub contentions: u64,
}

/// The persistent plan service (see the module docs).
///
/// All methods take `&self`; the service is internally synchronized and
/// is shared across threads by reference. Both caches are split into
/// [`SHARDS`] fingerprint-sharded slices with per-shard locks (held only
/// for lookups and insertions — packing and planning run outside them),
/// so concurrent `submit` batches only contend when they hit the same
/// shard; the remaining top-level counters are atomics.
#[derive(Debug)]
pub struct PlanService {
    shards: Box<[Shard]>,
    /// Monotone LRU clock over session requests (global so the eviction
    /// order — and snapshot export order — is the service-wide request
    /// order, not a per-shard approximation).
    session_tick: AtomicU64,
    revision_cache_hits: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_interrupted: AtomicU64,
    pub(crate) jobs_failed: AtomicU64,
    pub(crate) jobs_shed: AtomicU64,
    pub(crate) store_retries: AtomicU64,
    pub(crate) quarantined_generations: AtomicU64,
    /// Per-shard schedule FIFO bound (`with_caps` divided over shards).
    schedule_cap: usize,
    /// Per-shard session LRU bound (`with_caps` divided over shards).
    session_cap: usize,
    /// Most jobs one `submit` batch may dispatch (`None` = unbounded);
    /// the excess is shed as [`PlanError::Overloaded`] rejections.
    pub(crate) admission_cap: Option<usize>,
    /// Most jobs in flight across *all* concurrent `submit` batches
    /// (`None` = unbounded); arrivals beyond the free depth are shed as
    /// [`PlanError::Overloaded`] rejections, lowest priority first.
    pub(crate) queue_depth_cap: Option<usize>,
    /// Jobs currently dispatched and not yet finished (the queue-depth
    /// reservation counter).
    pub(crate) inflight: AtomicU64,
}

impl Default for PlanService {
    fn default() -> Self {
        PlanService::new()
    }
}

impl PlanService {
    /// Creates an empty service with the default schedule- and
    /// session-cache bounds.
    pub fn new() -> Self {
        PlanService::with_caps(SCHEDULE_CACHE_CAP, SESSION_CACHE_CAP)
    }

    /// Creates an empty service retaining at most `cap` solved schedules
    /// (oldest-first eviction, enforced per shard — see
    /// [`Self::with_caps`]). Results never depend on the cap — an evicted
    /// schedule is re-packed on its next request.
    pub fn with_schedule_cap(cap: usize) -> Self {
        PlanService::with_caps(cap, SESSION_CACHE_CAP)
    }

    /// Creates an empty service retaining at most `cap` live pack
    /// sessions (least-recently-requested eviction, enforced per shard —
    /// see [`Self::with_caps`] — and counted in
    /// [`ServiceStats::session_evictions`]). Results never depend on the
    /// cap: an evicted session is rebuilt cold — and re-packs
    /// bit-identically — on its next request.
    pub fn with_session_cap(cap: usize) -> Self {
        PlanService::with_caps(SCHEDULE_CACHE_CAP, cap)
    }

    /// Creates an empty service with explicit schedule- and session-cache
    /// bounds.
    ///
    /// Both caps are enforced **per shard** (each of the [`SHARDS`] shards
    /// gets `cap.div_ceil(SHARDS)`, at least 1), so the effective total
    /// bound is the cap rounded up to a multiple of the shard count, and
    /// fingerprint-skewed traffic may evict a hot shard before the
    /// service-wide total reaches the cap. Results never depend on either
    /// cap — an evicted entry is rebuilt cold on its next request.
    pub fn with_caps(schedule_cap: usize, session_cap: usize) -> Self {
        PlanService {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            session_tick: AtomicU64::new(0),
            revision_cache_hits: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_interrupted: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            store_retries: AtomicU64::new(0),
            quarantined_generations: AtomicU64::new(0),
            schedule_cap: schedule_cap.max(1).div_ceil(SHARDS).max(1),
            session_cap: session_cap.max(1).div_ceil(SHARDS).max(1),
            admission_cap: None,
            queue_depth_cap: None,
            inflight: AtomicU64::new(0),
        }
    }

    /// Caps how many jobs one [`submit`](Self::submit) batch may
    /// dispatch: the highest-priority `cap` jobs (ties to input order)
    /// run, the rest are shed immediately as
    /// [`JobOutcome::Rejected`]\([`PlanError::Overloaded`]) and counted
    /// in [`ServiceStats::jobs_shed`]. Admission control bounds the
    /// latency cost of an oversized batch instead of queueing it
    /// unboundedly; shed jobs can simply be resubmitted in a batch
    /// within the cap.
    pub fn with_admission_cap(mut self, cap: usize) -> Self {
        self.admission_cap = Some(cap.max(1));
        self
    }

    /// Caps how many jobs may be **in flight across all concurrent
    /// [`submit`](Self::submit) batches** to `cap`: each batch reserves
    /// slots from the shared depth budget before dispatching, and
    /// whatever does not fit — the lowest-priority tail of that batch,
    /// ties to input order — is shed immediately as
    /// [`JobOutcome::Rejected`]\([`PlanError::Overloaded`]) and counted
    /// in [`ServiceStats::jobs_shed`]. Slots are released as soon as the
    /// batch's dispatched jobs finish, so a shed job can simply be
    /// resubmitted.
    ///
    /// The per-batch [`with_admission_cap`](Self::with_admission_cap)
    /// bounds one caller's burst; the queue-depth cap is the
    /// *service-wide* backpressure a multi-tenant server needs when many
    /// connections submit at once.
    pub fn with_queue_depth_cap(mut self, cap: usize) -> Self {
        self.queue_depth_cap = Some(cap.max(1));
        self
    }

    /// Number of cache shards (fixed at build time; see [`SHARDS`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The service's monotone request clock: advances on every session
    /// request anywhere in the service, so a changed value means the
    /// caches may have warmed since the last observation. This is the
    /// dirtiness signal [`SnapshotDaemon`] polls for differential
    /// export.
    pub fn session_ticks(&self) -> u64 {
        self.session_tick.load(Ordering::Relaxed)
    }

    /// The session for `(tam_width, effort, engine, skeleton)`, shared
    /// across every planner bound to this service.
    ///
    /// `skeleton` is built by the caller (it is also the content key);
    /// the returned session may have been created by an earlier planner —
    /// possibly for a *different* [`MixedSignalSoc`] value with the same
    /// digital part — and already carry warm checkpoints.
    pub fn session(
        &self,
        tam_width: u32,
        effort: Effort,
        engine: Engine,
        skeleton: Vec<TestJob>,
    ) -> Arc<PackSession> {
        self.session_tracked(tam_width, effort, engine, skeleton, false)
    }

    /// [`Self::session`] with revision attribution: when `tracked`, a
    /// cache hit is also counted in
    /// [`ServiceStats::revision_cache_hits`] (the caller is planning a
    /// revised [`SocHandle`] and the hit proves unchanged content was
    /// reused rather than rebuilt).
    pub(crate) fn session_tracked(
        &self,
        tam_width: u32,
        effort: Effort,
        engine: Engine,
        mut skeleton: Vec<TestJob>,
        tracked: bool,
    ) -> Arc<PackSession> {
        // Normalize up front (what session construction would do), so the
        // warm path fingerprints and compares without building a
        // throwaway session.
        for job in &mut skeleton {
            job.kind = msoc_tam::JobKind::Skeleton;
        }
        let fp = msoc_tam::session_fingerprint(tam_width, effort, engine, &skeleton);
        let tick = self.session_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let home = &self.shards[shard_index(fp)];
        let mut state = home.lock();
        // Even a hit moves `last_used` (export order), so every request
        // dirties the home shard for the differential exporter. Bumped
        // under the lock: an exporter then never tags a fragment with a
        // tick whose mutation it could not yet see.
        home.tick.fetch_add(1, Ordering::Relaxed);
        state.session_lookups += 1;
        let bucket = state.sessions.entry(fp).or_default();
        let found = bucket
            .iter_mut()
            .find(|entry| {
                let session = &entry.session;
                session.tam_width() == tam_width
                    && session.effort() == effort
                    && session.engine() == engine
                    && session.skeleton() == skeleton
            })
            .map(|entry| {
                entry.last_used = tick;
                Arc::clone(&entry.session)
            });
        if let Some(session) = found {
            state.session_hits += 1;
            if tracked {
                self.revision_cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            return session;
        }
        let created = Arc::new(PackSession::new(tam_width, skeleton, effort, engine));
        state
            .sessions
            .entry(fp)
            .or_default()
            .push(SessionEntry { session: Arc::clone(&created), last_used: tick });
        state.session_count += 1;
        state.session_misses += 1;
        while state.session_count > self.session_cap {
            state.evict_lru_session();
        }
        created
    }

    /// Packs `delta` on `session` through the schedule cache: a warm hit
    /// returns the previously solved schedule (content-verified), a miss
    /// packs outside the lock and caches the result.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] exactly as [`PackSession::pack`] would.
    pub fn pack(
        &self,
        session: &Arc<PackSession>,
        delta: &[TestJob],
    ) -> Result<Arc<Schedule>, ScheduleError> {
        self.pack_tracked(session, delta, false)
    }

    /// [`Self::pack`] with revision attribution (see
    /// [`Self::session_tracked`]).
    pub(crate) fn pack_tracked(
        &self,
        session: &Arc<PackSession>,
        delta: &[TestJob],
        tracked: bool,
    ) -> Result<Arc<Schedule>, ScheduleError> {
        let mut h = StableHasher::new();
        h.write_u64(session.fingerprint());
        h.write_u64(fingerprint_jobs(delta));
        let key = h.finish();
        // Content-exact hit check: the pointer compare answers the common
        // case (sessions come from this service's cache, so equal content
        // means the same `Arc`) and the full compare keeps externally
        // constructed sessions — and fingerprint collisions — honest.
        let matches = |e: &ScheduleEntry| {
            (Arc::ptr_eq(&e.session, session) || sessions_equal(&e.session, session))
                && e.delta == delta
        };

        let shard = &self.shards[shard_index(key)];
        {
            let mut state = shard.lock();
            state.schedule_lookups += 1;
            if let Some(bucket) = state.schedules.get(&key) {
                if let Some(entry) = bucket.iter().find(|e| matches(e)) {
                    let schedule = Arc::clone(&entry.schedule);
                    state.schedule_hits += 1;
                    if tracked {
                        self.revision_cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(schedule);
                }
            }
            state.schedule_misses += 1;
        }

        let schedule = Arc::new(session.pack(delta)?);
        // The pack mutated `session`'s checkpoint trie, which exports with
        // the session homed at its *fingerprint* shard — dirty that shard
        // for the differential exporter, unconditionally: even when a
        // racing thread already inserted the entry below, this pack's trie
        // mutation is real. (The trie itself is internally synchronized,
        // so this bump rides outside the shard lock like the mutation;
        // at worst one export tags a mid-pack fragment and the bump
        // forces the next export to rebuild it.)
        self.shards[shard_index(session.fingerprint())].tick.fetch_add(1, Ordering::Relaxed);
        let mut state = shard.lock();
        // The schedule insert dirties the key shard; bumped under the
        // lock so exporters see bump and insert together.
        shard.tick.fetch_add(1, Ordering::Relaxed);
        let bucket = state.schedules.entry(key).or_default();
        let already = bucket.iter().any(&matches);
        if !already {
            bucket.push(ScheduleEntry {
                session: Arc::clone(session),
                delta: delta.to_vec(),
                schedule: Arc::clone(&schedule),
            });
            state.memo_order.push_back(key);
            state.trim_schedules(self.schedule_cap);
        }
        Ok(schedule)
    }

    /// A snapshot of the service's cache counters and aggregate session
    /// statistics, summed over every shard.
    ///
    /// Shards are locked one at a time, so under concurrent traffic the
    /// aggregate is a consistent *per-shard* snapshot, not one instant of
    /// the whole service — the coherence identities
    /// (`hits + misses == lookups`, `live_sessions` equals the shard sum)
    /// still hold exactly once traffic quiesces.
    pub fn stats(&self) -> ServiceStats {
        let mut out = ServiceStats {
            revision_cache_hits: self.revision_cache_hits.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_interrupted: self.jobs_interrupted.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            store_retries: self.store_retries.load(Ordering::Relaxed),
            quarantined_generations: self.quarantined_generations.load(Ordering::Relaxed),
            ..ServiceStats::default()
        };
        let sessions = &mut out.sessions;
        for shard in self.shards.iter() {
            out.lock_contentions += shard.contention.load(Ordering::Relaxed);
            let state = shard.lock();
            out.session_lookups += state.session_lookups;
            out.session_hits += state.session_hits;
            out.session_misses += state.session_misses;
            out.session_evictions += state.session_evictions;
            out.schedule_lookups += state.schedule_lookups;
            out.schedule_hits += state.schedule_hits;
            out.schedule_misses += state.schedule_misses;
            out.schedule_evictions += state.schedule_evictions;
            out.cached_schedules += state.schedules.values().map(|b| b.len() as u64).sum::<u64>();
            for bucket in state.sessions.values() {
                for entry in bucket {
                    let s = entry.session.stats();
                    sessions.skeleton_hits += s.skeleton_hits;
                    sessions.skeleton_misses += s.skeleton_misses;
                    sessions.delta_packs += s.delta_packs;
                    sessions.pruned_passes += s.pruned_passes;
                    sessions.prefix_hits += s.prefix_hits;
                    sessions.prefix_jobs_restored += s.prefix_jobs_restored;
                    sessions.max_prefix_depth = sessions.max_prefix_depth.max(s.max_prefix_depth);
                    sessions.evictions += s.evictions;
                    sessions.import_restored += s.import_restored;
                    sessions.import_dropped += s.import_dropped;
                    sessions.portfolio_wins_skyline += s.portfolio_wins_skyline;
                    sessions.portfolio_wins_maxrects += s.portfolio_wins_maxrects;
                    sessions.portfolio_wins_guillotine += s.portfolio_wins_guillotine;
                    sessions.portfolio_race_prunes += s.portfolio_race_prunes;
                    sessions.portfolio_checks_to_best += s.portfolio_checks_to_best;
                    out.live_sessions += 1;
                }
            }
        }
        out
    }

    /// Per-shard occupancy, traffic and contention counters, in shard
    /// index order — the load harness's contention report, and the ground
    /// truth the stats-coherence property test sums against.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let contentions = shard.contention.load(Ordering::Relaxed);
                let state = shard.lock();
                ShardStats {
                    index,
                    live_sessions: state.session_count as u64,
                    cached_schedules: state.schedules.values().map(|b| b.len() as u64).sum::<u64>(),
                    session_lookups: state.session_lookups,
                    schedule_lookups: state.schedule_lookups,
                    contentions,
                }
            })
            .collect()
    }

    /// Plans one request with this service's shared caches (the paper's
    /// `Cost_Optimizer` heuristic) — a thin shim building one
    /// [`JobSpec::Single`] job and running it through
    /// [`PlanService::submit`].
    ///
    /// # Errors
    ///
    /// As `Planner::cost_optimizer`, plus [`PlanError::InvalidRequest`]
    /// for malformed request data (the [`JobBuilder`] validator).
    pub fn plan(&self, request: &PlanRequest) -> Result<PlanReport, PlanError> {
        let job = request.to_job()?;
        unwrap_plan(self.submit(std::slice::from_ref(&job)).pop().expect("one outcome per job"))
    }

    /// Plans a batch of requests, fanning them out over the available
    /// cores while every worker shares this service's caches — a shim
    /// submitting one [`JobSpec::Single`] job per request.
    ///
    /// Results come back in request order; each request fails or succeeds
    /// independently. Identical requests in one batch are deduplicated by
    /// the caches, not by the front-end — both still return full reports.
    pub fn plan_batch(&self, requests: &[PlanRequest]) -> Vec<Result<PlanReport, PlanError>> {
        self.submit_shim(requests, PlanRequest::to_job, unwrap_plan)
    }

    /// Plans a full config × width table through this service's shared
    /// caches (one incumbent across the whole matrix, per-width sessions
    /// and cached schedules reused across requests) — a shim building one
    /// [`JobSpec::Table`] job.
    ///
    /// # Errors
    ///
    /// As `Planner::plan_table`, plus [`PlanError::InvalidRequest`] for
    /// malformed request data (empty candidate set, empty or duplicate
    /// widths) — the service boundary handles untrusted input and must
    /// never panic on it. All validation lives in the [`JobBuilder`].
    pub fn plan_table(&self, request: &TableRequest) -> Result<TableReport, PlanError> {
        let job = request.to_job()?;
        unwrap_table(self.submit(std::slice::from_ref(&job)).pop().expect("one outcome per job"))
    }

    /// Plans a batch of table requests concurrently over the shared
    /// caches; results come back in request order.
    pub fn plan_table_batch(
        &self,
        requests: &[TableRequest],
    ) -> Vec<Result<TableReport, PlanError>> {
        self.submit_shim(requests, TableRequest::to_job, unwrap_table)
    }

    /// The common legacy-shim shape: build one job per request (carrying
    /// builder rejections through as errors), submit the valid ones as one
    /// batch, and unwrap outcomes back into request-order `Result`s.
    ///
    /// Legacy requests own their SOC by value, so `to_job` copies it into
    /// the job's shared `Arc` once per call — jobs built directly against
    /// a [`SocHandle`] (or a [`JobBuilder`]-owned SOC) skip that copy,
    /// which is one more reason new code should use [`Self::submit`].
    fn submit_shim<Req, Out>(
        &self,
        requests: &[Req],
        to_job: impl Fn(&Req) -> Result<Job, PlanError>,
        unwrap: impl Fn(JobOutcome) -> Result<Out, PlanError>,
    ) -> Vec<Result<Out, PlanError>> {
        let mut jobs: Vec<Job> = Vec::with_capacity(requests.len());
        let rejections: Vec<Option<PlanError>> = requests
            .iter()
            .map(|request| match to_job(request) {
                Ok(job) => {
                    jobs.push(job);
                    None
                }
                Err(e) => Some(e),
            })
            .collect();
        let mut outcomes = self.submit(&jobs).into_iter();
        rejections
            .into_iter()
            .map(|rejection| match rejection {
                None => unwrap(outcomes.next().expect("one outcome per submitted job")),
                Some(e) => Err(e),
            })
            .collect()
    }
}

/// Unwraps a shim job's outcome into the legacy `Result<PlanReport, _>`.
fn unwrap_plan(outcome: JobOutcome) -> Result<PlanReport, PlanError> {
    match outcome.into_result()? {
        JobReport { result: JobResult::Plan(report), .. } => Ok(report),
        other => unreachable!("single jobs return plan reports: {other:?}"),
    }
}

/// Unwraps a shim job's outcome into the legacy `Result<TableReport, _>`.
fn unwrap_table(outcome: JobOutcome) -> Result<TableReport, PlanError> {
    match outcome.into_result()? {
        JobReport { result: JobResult::Table(report), .. } => Ok(report),
        other => unreachable!("table jobs return table reports: {other:?}"),
    }
}

/// One table-sweep request for [`PlanService::plan_table`].
#[derive(Debug, Clone)]
pub struct TableRequest {
    /// The SOC to plan.
    pub soc: MixedSignalSoc,
    /// Candidate configurations; `None` uses the planner's enumeration
    /// (the paper's 26-candidate set by default).
    pub configs: Option<Vec<crate::SharingConfig>>,
    /// The TAM widths of the table's columns.
    pub widths: Vec<u32>,
    /// Cost blend weights (winner evaluation and cost-bound prunes).
    pub weights: CostWeights,
    /// Planner options (effort, engine, area model, …).
    pub opts: PlannerOptions,
}

impl TableRequest {
    /// A request over the planner's default candidate enumeration.
    pub fn new(soc: MixedSignalSoc, widths: Vec<u32>, weights: CostWeights) -> Self {
        TableRequest { soc, configs: None, widths, weights, opts: PlannerOptions::default() }
    }

    /// Overrides the planner options.
    pub fn with_opts(mut self, opts: PlannerOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The [`JobSpec::Table`] job this legacy request describes; all
    /// validation is the [`JobBuilder`]'s.
    pub(crate) fn to_job(&self) -> Result<Job, PlanError> {
        let mut builder = JobBuilder::new(self.soc.clone())
            .table(self.widths.clone())
            .weights(self.weights)
            .opts(self.opts.clone());
        if let Some(configs) = &self.configs {
            builder = builder.configs(configs.clone());
        }
        builder.build()
    }
}

/// One planning request for [`PlanService::plan`]/[`plan_batch`].
///
/// [`plan_batch`]: PlanService::plan_batch
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The SOC to plan.
    pub soc: MixedSignalSoc,
    /// SOC-level TAM width.
    pub tam_width: u32,
    /// Cost blend weights.
    pub weights: CostWeights,
    /// The `Cost_Optimizer` pruning slack (0 reproduces the paper).
    pub delta: f64,
    /// Planner options (effort, engine, area model, …).
    pub opts: PlannerOptions,
}

impl PlanRequest {
    /// A request with the paper's defaults (`delta = 0`, default options).
    pub fn new(soc: MixedSignalSoc, tam_width: u32, weights: CostWeights) -> Self {
        PlanRequest { soc, tam_width, weights, delta: 0.0, opts: PlannerOptions::default() }
    }

    /// Overrides the planner options.
    pub fn with_opts(mut self, opts: PlannerOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The [`JobSpec::Single`] job this legacy request describes; all
    /// validation is the [`JobBuilder`]'s.
    pub(crate) fn to_job(&self) -> Result<Job, PlanError> {
        JobBuilder::new(self.soc.clone())
            .single(self.tam_width)
            .weights(self.weights)
            .cost_optimizer_delta(self.delta)
            .opts(self.opts.clone())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> PlannerOptions {
        PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() }
    }

    #[test]
    fn sessions_are_shared_across_planners_by_content() {
        let service = PlanService::new();
        let soc_a = MixedSignalSoc::d695m();
        let soc_b = MixedSignalSoc::d695m();
        let mut a = Planner::with_service(&soc_a, quick_opts(), &service);
        let mut b = Planner::with_service(&soc_b, quick_opts(), &service);
        a.makespan(&crate::SharingConfig::all_shared(5), 16).unwrap();
        b.makespan(&crate::SharingConfig::all_shared(5), 16).unwrap();
        let stats = service.stats();
        assert_eq!(stats.session_misses, 1, "same digital skeleton, one session: {stats:?}");
        assert_eq!(stats.session_hits, 1, "second planner must reuse it: {stats:?}");
        assert_eq!(stats.schedule_hits, 1, "second identical pack is a schedule hit: {stats:?}");
    }

    #[test]
    fn distinct_widths_or_efforts_get_distinct_sessions() {
        let service = PlanService::new();
        let soc = MixedSignalSoc::d695m();
        let all = crate::SharingConfig::all_shared(5);
        let mut p = Planner::with_service(&soc, quick_opts(), &service);
        p.makespan(&all, 16).unwrap();
        p.makespan(&all, 24).unwrap();
        let mut std = Planner::with_service(&soc, PlannerOptions::default(), &service);
        std.makespan(&all, 16).unwrap();
        assert_eq!(service.stats().session_misses, 3);
        assert_eq!(service.stats().session_hits, 0);
    }

    #[test]
    fn warm_service_replays_a_plan_from_the_schedule_cache() {
        let service = PlanService::new();
        let req = PlanRequest::new(MixedSignalSoc::d695m(), 16, CostWeights::balanced())
            .with_opts(quick_opts());
        let cold = service.plan(&req).unwrap();
        let misses_after_cold = service.stats().schedule_misses;
        let warm = service.plan(&req).unwrap();
        assert_eq!(cold.best, warm.best);
        assert_eq!(cold.schedule, warm.schedule);
        let stats = service.stats();
        assert_eq!(
            stats.schedule_misses, misses_after_cold,
            "warm plan must not pack anything new: {stats:?}"
        );
        assert!(stats.schedule_hits > 0, "{stats:?}");
    }

    #[test]
    fn plan_batch_matches_individual_plans_and_reports_in_order() {
        let service = PlanService::new();
        let reqs = vec![
            PlanRequest::new(MixedSignalSoc::d695m(), 16, CostWeights::balanced())
                .with_opts(quick_opts()),
            PlanRequest::new(MixedSignalSoc::d695m(), 24, CostWeights::time_heavy())
                .with_opts(quick_opts()),
        ];
        let batch = service.plan_batch(&reqs);
        assert_eq!(batch.len(), 2);
        let fresh = PlanService::new();
        for (req, got) in reqs.iter().zip(&batch) {
            let expect = fresh.plan(req).unwrap();
            let got = got.as_ref().expect("batch plan succeeds");
            assert_eq!(got.best, expect.best);
            assert_eq!(got.tam_width, req.tam_width);
        }
    }

    #[test]
    fn infeasible_requests_fail_without_poisoning_the_batch() {
        let service = PlanService::new();
        let reqs = vec![
            // Width 8 is too narrow for core D's 10-wire IIP3 test.
            PlanRequest::new(MixedSignalSoc::d695m(), 8, CostWeights::balanced())
                .with_opts(quick_opts()),
            PlanRequest::new(MixedSignalSoc::d695m(), 16, CostWeights::balanced())
                .with_opts(quick_opts()),
        ];
        let batch = service.plan_batch(&reqs);
        assert!(matches!(batch[0], Err(PlanError::Schedule(_))));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn session_cache_lru_evicts_beyond_the_cap_and_stays_bit_identical() {
        // A cap-1 service holds at most one session per shard; more
        // distinct widths than shards guarantees (pigeonhole) that some
        // shard evicts. Evicted sessions are rebuilt cold on re-request,
        // and every schedule they serve is still bit-identical to an
        // uncached planner's.
        let service = PlanService::with_session_cap(1);
        let soc = MixedSignalSoc::d695m();
        let all = crate::SharingConfig::all_shared(5);
        let widths: Vec<u32> = (11..11 + SHARDS as u32 + 2).collect();
        let mut first_pass: Vec<_> = Vec::new();
        {
            let mut p = Planner::with_service(&soc, quick_opts(), &service);
            for &w in &widths {
                first_pass.push(p.schedule_for(&all, w).unwrap().clone());
            }
        }
        let stats = service.stats();
        assert!(stats.session_evictions >= 2, "{stats:?}");
        assert!(stats.live_sessions as usize <= SHARDS, "{stats:?}");
        assert_eq!(stats.live_sessions + stats.session_evictions, widths.len() as u64, "{stats:?}");
        // Re-requesting an evicted width rebuilds the session; schedules
        // stay bit-identical to a fresh uncached planner everywhere.
        let fresh_soc = MixedSignalSoc::d695m();
        let mut fresh = Planner::with_options(&fresh_soc, quick_opts());
        for (&w, first) in widths.iter().zip(&first_pass) {
            let mut p = Planner::with_service(&soc, quick_opts(), &service);
            let via_service = p.schedule_for(&all, w).unwrap().clone();
            assert_eq!(&via_service, first, "warm/cold service diverged at w={w}");
            assert_eq!(via_service, *fresh.schedule_for(&all, w).unwrap(), "vs scratch at w={w}");
        }
    }

    #[test]
    fn roomy_session_cap_never_evicts() {
        let service = PlanService::new();
        let soc = MixedSignalSoc::d695m();
        let mut p = Planner::with_service(&soc, quick_opts(), &service);
        for w in [16, 20, 24, 32] {
            p.makespan(&crate::SharingConfig::all_shared(5), w).unwrap();
        }
        assert_eq!(service.stats().session_evictions, 0, "{:?}", service.stats());
    }

    #[test]
    fn table_front_end_matches_a_direct_planner_table() {
        let service = PlanService::new();
        let soc = MixedSignalSoc::d695m();
        let req = TableRequest::new(soc.clone(), vec![16, 24], CostWeights::balanced())
            .with_opts(quick_opts());
        let via_service = service.plan_table(&req).unwrap();
        let mut direct = Planner::with_options(&soc, quick_opts());
        let configs = direct.candidates();
        let expect = direct.plan_table(&configs, &[16, 24], CostWeights::balanced()).unwrap();
        assert_eq!(via_service, expect);
        // A second request replays from the shared caches, same result.
        let replay = service.plan_table(&req).unwrap();
        assert_eq!(replay, expect);
        assert!(service.stats().schedule_hits > 0, "{:?}", service.stats());
    }

    #[test]
    fn malformed_table_requests_error_without_poisoning_the_batch() {
        let service = PlanService::new();
        let soc = MixedSignalSoc::d695m();
        let good = TableRequest::new(soc.clone(), vec![16, 24], CostWeights::balanced())
            .with_opts(quick_opts());
        let mut no_widths = good.clone();
        no_widths.widths = vec![];
        let mut dup_widths = good.clone();
        dup_widths.widths = vec![16, 16];
        let mut no_configs = good.clone();
        no_configs.configs = Some(vec![]);

        let batch = service.plan_table_batch(&[no_widths, dup_widths, no_configs, good.clone()]);
        assert!(matches!(batch[0], Err(PlanError::InvalidRequest(_))), "{:?}", batch[0]);
        assert!(matches!(batch[1], Err(PlanError::InvalidRequest(_))), "{:?}", batch[1]);
        assert!(matches!(batch[2], Err(PlanError::InvalidRequest(_))), "{:?}", batch[2]);
        let ok = batch[3].as_ref().expect("the well-formed request still succeeds");
        assert_eq!(ok, &service.plan_table(&good).unwrap());
    }

    #[test]
    fn schedule_cache_evicts_beyond_the_cap_without_changing_results() {
        // Cap 1 = one schedule per shard; the planner's full candidate
        // enumeration (26 configs) outnumbers the shards, so eviction is
        // guaranteed by pigeonhole.
        let service = PlanService::with_schedule_cap(1);
        let soc = MixedSignalSoc::d695m();
        let mut p = Planner::with_service(&soc, quick_opts(), &service);
        let configs: Vec<crate::SharingConfig> = p.candidates();
        assert!(configs.len() > SHARDS);
        for c in &configs {
            p.makespan(c, 16).unwrap();
        }
        let stats = service.stats();
        assert!(stats.schedule_evictions > 0, "{stats:?}");
        assert!(stats.cached_schedules as usize <= SHARDS, "{stats:?}");
        // Evicted entries re-pack to the same result.
        let fresh_soc = MixedSignalSoc::d695m();
        let mut fresh = Planner::with_options(&fresh_soc, quick_opts());
        for c in &configs {
            let mut p2 = Planner::with_service(&soc, quick_opts(), &service);
            assert_eq!(p2.makespan(c, 16).unwrap(), fresh.makespan(c, 16).unwrap());
        }
    }
}
