//! The job-oriented service API: typed requests, one validator, deadlines
//! & cancellation, priorities, and typed outcomes.
//!
//! Every way of asking the service for work — a single-width
//! `Cost_Optimizer` run, a cross-width table sweep, a best-width query —
//! is one [`Job`]: a [`JobSpec`] plus the SOC (owned or a registered
//! [`SocHandle`](super::SocHandle)), cost weights, planner options, and
//! optional [`Deadline`], [`CancelToken`] and [`Priority`]. Jobs are built
//! by [`JobBuilder`], which owns **all** request validation (the checks
//! that used to be duplicated between the legacy `PlanRequest` and
//! `TableRequest` front-ends), and run by [`PlanService::submit`], which
//! returns one typed [`JobOutcome`] per job in input order.
//!
//! **Determinism under interruption.** Deadlines and cancellation are
//! checked only at deterministic progress boundaries — between candidate
//! batches in `Planner::schedule_batch` and at wave boundaries in
//! `Planner::plan_table` — never inside a pack. An interrupted job
//! abandons whole units of work: everything it cached is a complete,
//! bit-identical pack, so interruption can never corrupt the service's
//! caches, and any job that *completes* is bit-identical to an unlimited
//! run (property-tested in `tests/properties.rs`).
//!
//! [`PlanService::submit`]: super::PlanService::submit

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cost::CostWeights;
use crate::partition::SharingConfig;
use crate::planner::table::TableReport;
use crate::planner::{Interrupted, PlanError, PlanReport, PlanStats, Planner, PlannerOptions};
use crate::soc::MixedSignalSoc;

use super::{PlanService, SocHandle};

/// What one [`Job`] computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// One `Cost_Optimizer` run at a single TAM width (the legacy
    /// [`PlanRequest`](super::PlanRequest) shape).
    Single {
        /// SOC-level TAM width.
        width: u32,
    },
    /// A full config × width table through the shared-incumbent engine
    /// (the legacy [`TableRequest`](super::TableRequest) shape).
    Table {
        /// The table's TAM-width columns.
        widths: Vec<u32>,
    },
    /// The makespan-minimizing width for one sharing configuration
    /// (wraps `Planner::best_width_for`, with its exact width-bound
    /// pruning).
    BestWidth {
        /// The candidate widths to sweep (wide-to-narrow maximizes
        /// pruning).
        widths: Vec<u32>,
    },
}

/// When a job must give up: a wall-clock instant or a deterministic
/// check budget.
///
/// Both kinds fire at the same deterministic progress boundaries (see the
/// [module docs](self)); the difference is reproducibility. A wall-clock
/// deadline depends on host speed; a *check budget* expires after a fixed
/// number of progress checks, so the exact interruption point — and with
/// it every cached artifact — is identical on every host and every run,
/// which is what the cache-integrity property tests exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    kind: DeadlineKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    At(Instant),
    Checks(u64),
}

impl Deadline {
    /// Expires at the wall-clock instant `at`.
    pub fn at(at: Instant) -> Self {
        Deadline { kind: DeadlineKind::At(at) }
    }

    /// Expires `after` from now.
    pub fn after(after: Duration) -> Self {
        Deadline::at(Instant::now() + after)
    }

    /// Expires after `checks` progress checks — a deterministic compute
    /// budget (`checks = 0` expires at the first boundary, before any
    /// packing).
    pub fn checks(checks: u64) -> Self {
        Deadline { kind: DeadlineKind::Checks(checks) }
    }
}

/// A shareable cancellation flag: hand it to a job via
/// [`JobBuilder::cancel_token`], keep a clone, and [`cancel`] from any
/// thread. The job observes it at its next progress boundary.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Dispatch priority of a job within a [`submit`] batch: higher-priority
/// jobs start first (outcomes still come back in input order).
///
/// [`submit`]: super::PlanService::submit
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Start after everything else.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Start first.
    High,
}

/// The SOC a job plans: owned by the job, or a registered handle whose
/// cached fingerprints (and revision lineage) the service can exploit.
#[derive(Debug, Clone)]
pub(crate) enum SocSource {
    Owned(Arc<MixedSignalSoc>),
    Handle(SocHandle),
}

impl SocSource {
    pub(crate) fn soc(&self) -> &MixedSignalSoc {
        match self {
            SocSource::Owned(soc) => soc,
            SocSource::Handle(handle) => handle.soc(),
        }
    }

    /// Whether this SOC is a *revision* of a registered SOC — cache hits
    /// for such jobs are the incremental-revision reuse and are counted
    /// in [`ServiceStats::revision_cache_hits`](super::ServiceStats).
    fn is_revised(&self) -> bool {
        matches!(self, SocSource::Handle(h) if h.revision() > 0)
    }
}

/// One validated unit of service work (build with [`JobBuilder`], run
/// with [`PlanService::submit`](super::PlanService::submit)).
#[derive(Debug, Clone)]
pub struct Job {
    pub(crate) soc: SocSource,
    pub(crate) spec: JobSpec,
    pub(crate) configs: Option<Vec<SharingConfig>>,
    pub(crate) weights: CostWeights,
    pub(crate) delta: f64,
    pub(crate) opts: PlannerOptions,
    pub(crate) deadline: Option<Deadline>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) priority: Priority,
    pub(crate) inject_panic: Option<String>,
}

impl Job {
    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The SOC the job plans.
    pub fn soc(&self) -> &MixedSignalSoc {
        self.soc.soc()
    }

    /// The job's dispatch priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// Builds and validates a [`Job`].
///
/// This is the *single* owner of request validation: width positivity,
/// width-set non-emptiness and distinctness, and candidate-set
/// non-emptiness are all checked here (with error payloads identical to
/// the checks the legacy front-ends used to duplicate), so every entry
/// point — `submit` and all four legacy shims — rejects malformed input
/// identically and never panics on it.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    soc: SocSource,
    spec: Option<JobSpec>,
    configs: Option<Vec<SharingConfig>>,
    weights: CostWeights,
    delta: f64,
    opts: PlannerOptions,
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
    priority: Priority,
    inject_panic: Option<String>,
}

impl JobBuilder {
    /// A builder planning an owned SOC.
    pub fn new(soc: MixedSignalSoc) -> Self {
        JobBuilder::with_source(SocSource::Owned(Arc::new(soc)))
    }

    /// A builder planning a registered (possibly revised) SOC — the
    /// handle is cheap to clone and carries the cached core fingerprints.
    pub fn for_handle(handle: &SocHandle) -> Self {
        JobBuilder::with_source(SocSource::Handle(handle.clone()))
    }

    fn with_source(soc: SocSource) -> Self {
        JobBuilder {
            soc,
            spec: None,
            configs: None,
            weights: CostWeights::balanced(),
            delta: 0.0,
            opts: PlannerOptions::default(),
            deadline: None,
            cancel: None,
            priority: Priority::Normal,
            inject_panic: None,
        }
    }

    /// One `Cost_Optimizer` run at `width`.
    pub fn single(mut self, width: u32) -> Self {
        self.spec = Some(JobSpec::Single { width });
        self
    }

    /// A cross-width table over `widths`.
    pub fn table(mut self, widths: Vec<u32>) -> Self {
        self.spec = Some(JobSpec::Table { widths });
        self
    }

    /// A best-width query over `widths` (see [`JobBuilder::config`] for
    /// the target configuration; defaults to the all-share baseline).
    pub fn best_width(mut self, widths: Vec<u32>) -> Self {
        self.spec = Some(JobSpec::BestWidth { widths });
        self
    }

    /// The cost blend weights (default balanced).
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Restricts the candidate set: for [`JobSpec::Table`] jobs the
    /// table's rows, for [`JobSpec::BestWidth`] jobs the first entry is
    /// the target configuration. [`JobSpec::Single`] jobs always use the
    /// planner's own enumeration.
    pub fn configs(mut self, configs: Vec<SharingConfig>) -> Self {
        self.configs = Some(configs);
        self
    }

    /// Shorthand for [`Self::configs`] with one configuration.
    pub fn config(self, config: SharingConfig) -> Self {
        self.configs(vec![config])
    }

    /// The `Cost_Optimizer` pruning slack for [`JobSpec::Single`] jobs
    /// (0 reproduces the paper).
    pub fn cost_optimizer_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Planner options (effort, engine, area model, …).
    pub fn opts(mut self, opts: PlannerOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attaches a deadline (wall-clock or check budget).
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    pub fn cancel_token(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Sets the dispatch priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Makes the job panic with `message` the moment it is dispatched —
    /// a deterministic fault injector for exercising the service's
    /// per-job panic isolation (the job comes back as
    /// [`JobOutcome::Failed`], sibling jobs are unaffected). Used by the
    /// resilience tests and the bench harness; never by production
    /// callers.
    pub fn inject_panic(mut self, message: &str) -> Self {
        self.inject_panic = Some(message.to_string());
        self
    }

    /// Validates and builds the job.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidRequest`] for a missing spec,
    /// non-positive widths, an empty or duplicate-bearing width set, or
    /// an explicitly empty candidate set. Error payloads for the table
    /// checks are identical to the legacy `plan_table` front-end's.
    pub fn build(self) -> Result<Job, PlanError> {
        let invalid = |what: &str| Err(PlanError::InvalidRequest(what.into()));
        let Some(spec) = self.spec else {
            return invalid("job needs a spec (single, table or best_width)");
        };
        match &spec {
            JobSpec::Single { width } => {
                if *width == 0 {
                    return invalid("plan needs a positive TAM width");
                }
            }
            JobSpec::Table { widths } => {
                if widths.is_empty() {
                    return invalid("table needs at least one width");
                }
                if widths.contains(&0) {
                    return invalid("table widths must be positive");
                }
                if has_duplicates(widths) {
                    return invalid("table widths must be distinct");
                }
            }
            JobSpec::BestWidth { widths } => {
                if widths.is_empty() {
                    return invalid("best-width needs at least one width");
                }
                if widths.contains(&0) {
                    return invalid("best-width widths must be positive");
                }
                if has_duplicates(widths) {
                    return invalid("best-width widths must be distinct");
                }
            }
        }
        if matches!(&self.configs, Some(configs) if configs.is_empty()) {
            return invalid("table needs at least one candidate configuration");
        }
        if let Some(configs) = &self.configs {
            let n = self.soc.soc().analog.len();
            if let Some(bad) = configs.iter().find(|c| c.n_cores() != n) {
                return Err(PlanError::InvalidRequest(format!(
                    "configuration {bad} covers {} cores but the SOC has {n} analog cores",
                    bad.n_cores()
                )));
            }
        }
        Ok(Job {
            soc: self.soc,
            spec,
            configs: self.configs,
            weights: self.weights,
            delta: self.delta,
            opts: self.opts,
            deadline: self.deadline,
            cancel: self.cancel,
            priority: self.priority,
            inject_panic: self.inject_panic,
        })
    }
}

fn has_duplicates(widths: &[u32]) -> bool {
    let mut sorted = widths.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|p| p[0] == p[1])
}

/// The typed result payload of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// A [`JobSpec::Single`] job's plan.
    Plan(PlanReport),
    /// A [`JobSpec::Table`] job's table.
    Table(TableReport),
    /// A [`JobSpec::BestWidth`] job's winner.
    BestWidth {
        /// The configuration that was swept.
        config: SharingConfig,
        /// The makespan-minimizing width (ties to the earliest width in
        /// the job's width list).
        width: u32,
        /// The winning scheduled makespan.
        makespan: u64,
    },
}

impl JobResult {
    /// The plan report, for [`JobResult::Plan`] results.
    pub fn plan(&self) -> Option<&PlanReport> {
        match self {
            JobResult::Plan(report) => Some(report),
            _ => None,
        }
    }

    /// The table report, for [`JobResult::Table`] results.
    pub fn table(&self) -> Option<&TableReport> {
        match self {
            JobResult::Table(report) => Some(report),
            _ => None,
        }
    }
}

/// A completed job: the typed result plus per-job accounting.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The typed result ([`TableStats`](crate::TableStats) ride inside
    /// table reports).
    pub result: JobResult,
    /// Wall time the job spent planning, measured from the moment the
    /// job was dispatched to a worker (time spent queued behind other
    /// jobs in the `submit` batch is *not* included).
    pub wall: Duration,
    /// The planner's reuse/prune counters for this job.
    pub stats: PlanStats,
}

/// What happened to one submitted job.
// One outcome exists per submitted job; the size skew between a full
// report and the marker variants is irrelevant next to planning cost,
// and an unboxed report keeps match ergonomics clean.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed(JobReport),
    /// The deadline fired at a progress boundary before the job finished.
    /// Everything the job cached up to that point is complete and
    /// bit-identical; `partial` is the planner's accounting at
    /// interruption.
    DeadlineExceeded {
        /// Reuse/prune counters accumulated before the deadline fired.
        partial: PlanStats,
    },
    /// The job's [`CancelToken`] fired at a progress boundary.
    Cancelled,
    /// The job never ran: invalid request, planning error, or shed at
    /// admission ([`PlanError::Overloaded`]) by a service built with
    /// [`with_admission_cap`](super::PlanService::with_admission_cap).
    Rejected(PlanError),
    /// The job panicked (or its outcome was lost by the dispatch layer);
    /// `message` carries the panic payload's text. Failures are isolated
    /// per job: every sibling in the batch completes exactly as it would
    /// have without the failing job, and the shared caches only ever
    /// contain complete, verified entries.
    Failed {
        /// The panic payload's message (or a description of the lost
        /// outcome).
        message: String,
    },
}

impl JobOutcome {
    /// The completed report, if any.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobOutcome::Completed(report) => Some(report),
            _ => None,
        }
    }

    /// Collapses the outcome into a `Result`, mapping interruption onto
    /// [`PlanError::Interrupted`].
    ///
    /// # Errors
    ///
    /// The rejection or interruption, for non-completed outcomes.
    pub fn into_result(self) -> Result<JobReport, PlanError> {
        match self {
            JobOutcome::Completed(report) => Ok(report),
            JobOutcome::DeadlineExceeded { .. } => {
                Err(PlanError::Interrupted(Interrupted::DeadlineExceeded))
            }
            JobOutcome::Cancelled => Err(PlanError::Interrupted(Interrupted::Cancelled)),
            JobOutcome::Rejected(e) => Err(e),
            JobOutcome::Failed { message } => Err(PlanError::Panicked(message)),
        }
    }
}

/// The per-job interruption state a planner checks at its progress
/// boundaries (crate-internal; built by `submit` from the job's deadline
/// and cancel token).
#[derive(Debug)]
pub(crate) struct JobControl {
    deadline: Option<Instant>,
    check_budget: Option<u64>,
    checks: AtomicU64,
    cancel: Option<CancelToken>,
}

impl JobControl {
    fn new(job: &Job) -> Self {
        let (deadline, check_budget) = match job.deadline {
            Some(Deadline { kind: DeadlineKind::At(at) }) => (Some(at), None),
            Some(Deadline { kind: DeadlineKind::Checks(n) }) => (None, Some(n)),
            None => (None, None),
        };
        JobControl { deadline, check_budget, checks: AtomicU64::new(0), cancel: job.cancel.clone() }
    }

    /// One progress check: cancellation first, then the check budget,
    /// then the wall clock.
    pub(crate) fn check(&self) -> Result<(), Interrupted> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(Interrupted::Cancelled);
            }
        }
        let seen = self.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(budget) = self.check_budget {
            if seen >= budget {
                return Err(Interrupted::DeadlineExceeded);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupted::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

impl PlanService {
    /// Runs a batch of jobs over this service's shared caches, fanning
    /// them out across the available cores. Outcomes come back in input
    /// order; dispatch order follows [`Priority`] (ties to input order).
    ///
    /// Every job runs independently: a rejected, interrupted or failed
    /// job never poisons the batch, and everything an interrupted job
    /// already cached is complete and bit-identical (see the
    /// [module docs](self)). A panicking job is caught at the dispatch
    /// boundary and comes back as [`JobOutcome::Failed`] — the unwind
    /// never reaches the worker pool, so sibling jobs complete
    /// bit-identically to a batch without the panicking job. On a
    /// service built with
    /// [`with_admission_cap`](super::PlanService::with_admission_cap),
    /// jobs ranked below the cap in dispatch order are shed as
    /// [`JobOutcome::Rejected`]\([`PlanError::Overloaded`]) without
    /// running; a service built with
    /// [`with_queue_depth_cap`](super::PlanService::with_queue_depth_cap)
    /// additionally sheds whatever does not fit into the service-wide
    /// in-flight budget shared with concurrent batches.
    pub fn submit(&self, jobs: &[Job]) -> Vec<JobOutcome> {
        self.jobs_submitted.fetch_add(jobs.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].priority), i));
        let mut outcomes: Vec<Option<JobOutcome>> = (0..jobs.len()).map(|_| None).collect();
        // Admission control: dispatch at most `admission_cap` jobs (the
        // highest-priority ones, ties to input order) and shed the rest
        // as structured rejections instead of queueing unboundedly.
        let cap = self.admission_cap.unwrap_or(usize::MAX);
        if order.len() > cap {
            self.jobs_shed
                .fetch_add((order.len() - cap) as u64, std::sync::atomic::Ordering::Relaxed);
            for &i in &order[cap..] {
                outcomes[i] =
                    Some(JobOutcome::Rejected(PlanError::Overloaded { cap, batch: jobs.len() }));
            }
            order.truncate(cap);
        }
        // Queue-depth backpressure: reserve in-flight slots from the
        // service-wide budget in one lock-free `fetch_update` (so
        // concurrent batches never over-commit), dispatch the
        // highest-priority jobs that fit, and shed the tail exactly like
        // the admission cap does. Slots are released after the dispatch
        // returns — the per-job catch_unwind below guarantees the map
        // itself cannot unwind past the release.
        let mut reserved = 0u64;
        if let Some(depth) = self.queue_depth_cap {
            let want = order.len() as u64;
            let prev = self
                .inflight
                .fetch_update(
                    std::sync::atomic::Ordering::Relaxed,
                    std::sync::atomic::Ordering::Relaxed,
                    |cur| {
                        let free = (depth as u64).saturating_sub(cur);
                        Some(cur + want.min(free))
                    },
                )
                .expect("queue-depth reservation closure never declines");
            reserved = want.min((depth as u64).saturating_sub(prev));
            let granted = reserved as usize;
            if order.len() > granted {
                self.jobs_shed.fetch_add(
                    (order.len() - granted) as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                for &i in &order[granted..] {
                    outcomes[i] = Some(JobOutcome::Rejected(PlanError::Overloaded {
                        cap: depth,
                        batch: jobs.len(),
                    }));
                }
                order.truncate(granted);
            }
        }
        // Each job is isolated behind its own catch_unwind *inside* the
        // mapped closure: a panic becomes this job's `Failed` outcome
        // before the pool can see it, so the region is never poisoned
        // and sibling jobs keep running.
        let ran: Vec<(usize, JobOutcome)> = msoc_par::map(&order, |_, &i| {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_job(&jobs[i])))
                    .unwrap_or_else(|payload| {
                        self.jobs_failed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        JobOutcome::Failed { message: msoc_par::panic_message(payload.as_ref()) }
                    });
            (i, outcome)
        });
        if reserved > 0 {
            self.inflight.fetch_sub(reserved, std::sync::atomic::Ordering::Relaxed);
        }
        for (i, outcome) in ran {
            outcomes[i] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| {
                // A lost outcome (a dispatch-layer bug, not a job error)
                // degrades to a structured failure instead of taking the
                // whole batch down.
                o.unwrap_or_else(|| {
                    self.jobs_failed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    JobOutcome::Failed {
                        message: "job outcome lost by the dispatch layer".to_string(),
                    }
                })
            })
            .collect()
    }

    /// Runs one job to a typed outcome.
    fn run_job(&self, job: &Job) -> JobOutcome {
        let t0 = Instant::now();
        if let Some(message) = &job.inject_panic {
            panic!("{message}");
        }
        let soc = job.soc.soc();
        let mut planner = Planner::with_service(soc, job.opts.clone(), self);
        planner.set_control(Some(JobControl::new(job)));
        planner.set_revision_tracking(job.soc.is_revised());
        let result = match &job.spec {
            JobSpec::Single { width } => {
                planner.cost_optimizer(*width, job.weights, job.delta).map(JobResult::Plan)
            }
            JobSpec::Table { widths } => {
                let configs = match &job.configs {
                    Some(configs) => configs.clone(),
                    None => planner.candidates(),
                };
                planner.plan_table(&configs, widths, job.weights).map(JobResult::Table)
            }
            JobSpec::BestWidth { widths } => {
                let config = match &job.configs {
                    Some(configs) => {
                        configs.first().expect("validated non-empty candidate set").clone()
                    }
                    None => SharingConfig::all_shared(soc.analog.len()),
                };
                planner
                    .best_width_for(&config, widths)
                    .map(|(width, makespan)| JobResult::BestWidth { config, width, makespan })
            }
        };
        let stats = planner.stats();
        match result {
            Ok(result) => JobOutcome::Completed(JobReport { result, wall: t0.elapsed(), stats }),
            Err(PlanError::Interrupted(why)) => {
                self.jobs_interrupted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                match why {
                    Interrupted::DeadlineExceeded => {
                        JobOutcome::DeadlineExceeded { partial: stats }
                    }
                    Interrupted::Cancelled => JobOutcome::Cancelled,
                }
            }
            Err(e) => JobOutcome::Rejected(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msoc_tam::Effort;

    fn quick_opts() -> PlannerOptions {
        PlannerOptions { effort: Effort::Quick, ..PlannerOptions::default() }
    }

    fn quick_single(width: u32) -> Job {
        JobBuilder::new(MixedSignalSoc::d695m()).single(width).opts(quick_opts()).build().unwrap()
    }

    #[test]
    fn builder_validation_rejects_malformed_specs_with_stable_payloads() {
        let soc = MixedSignalSoc::d695m;
        let msg = |job: Result<Job, PlanError>| match job {
            Err(PlanError::InvalidRequest(m)) => m,
            other => panic!("expected InvalidRequest, got {other:?}"),
        };
        assert_eq!(
            msg(JobBuilder::new(soc()).build()),
            "job needs a spec (single, table or best_width)"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).single(0).build()),
            "plan needs a positive TAM width"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).table(vec![]).build()),
            "table needs at least one width"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).table(vec![16, 16]).build()),
            "table widths must be distinct"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).table(vec![16, 0]).build()),
            "table widths must be positive"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).table(vec![16]).configs(vec![]).build()),
            "table needs at least one candidate configuration"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).best_width(vec![]).build()),
            "best-width needs at least one width"
        );
        assert_eq!(
            msg(JobBuilder::new(soc()).best_width(vec![24, 24]).build()),
            "best-width widths must be distinct"
        );
        let wrong_cores = SharingConfig::all_shared(3);
        assert!(msg(JobBuilder::new(soc()).table(vec![16]).config(wrong_cores).build())
            .contains("3 cores"));
    }

    #[test]
    fn submit_returns_outcomes_in_input_order_regardless_of_priority() {
        let service = PlanService::new();
        let lo = JobBuilder::new(MixedSignalSoc::d695m())
            .single(16)
            .opts(quick_opts())
            .priority(Priority::Low)
            .build()
            .unwrap();
        let hi = JobBuilder::new(MixedSignalSoc::d695m())
            .single(24)
            .opts(quick_opts())
            .priority(Priority::High)
            .build()
            .unwrap();
        let outcomes = service.submit(&[lo, hi]);
        let w = |o: &JobOutcome| match o {
            JobOutcome::Completed(r) => r.result.plan().expect("single job").tam_width,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(w(&outcomes[0]), 16, "input order is preserved");
        assert_eq!(w(&outcomes[1]), 24);
        assert_eq!(service.stats().jobs_submitted, 2);
    }

    #[test]
    fn single_jobs_match_the_legacy_plan_entry_point() {
        let service = PlanService::new();
        let job = quick_single(16);
        let via_submit = match service.submit(std::slice::from_ref(&job)).pop().unwrap() {
            JobOutcome::Completed(r) => r,
            other => panic!("expected completion, got {other:?}"),
        };
        let legacy = PlanService::new()
            .plan(
                &super::super::PlanRequest::new(
                    MixedSignalSoc::d695m(),
                    16,
                    CostWeights::balanced(),
                )
                .with_opts(quick_opts()),
            )
            .unwrap();
        assert_eq!(via_submit.result.plan().unwrap(), &legacy);
        assert!(via_submit.wall > Duration::ZERO);
    }

    #[test]
    fn best_width_jobs_match_the_planner_query() {
        let service = PlanService::new();
        let config = SharingConfig::new(5, vec![vec![0, 1, 4], vec![2, 3]]);
        let job = JobBuilder::new(MixedSignalSoc::d695m())
            .best_width(vec![32, 16, 24])
            .config(config.clone())
            .opts(quick_opts())
            .build()
            .unwrap();
        let outcome = service.submit(std::slice::from_ref(&job)).pop().unwrap();
        let (w, m) = match outcome {
            JobOutcome::Completed(JobReport {
                result: JobResult::BestWidth { width, makespan, config: c },
                ..
            }) => {
                assert_eq!(c, config);
                (width, makespan)
            }
            other => panic!("expected a best-width result, got {other:?}"),
        };
        let soc = MixedSignalSoc::d695m();
        let mut reference = Planner::with_options(&soc, quick_opts());
        assert_eq!((w, m), reference.best_width_for(&config, &[32, 16, 24]).unwrap());
    }

    #[test]
    fn pre_cancelled_jobs_come_back_cancelled_without_touching_the_caches() {
        let service = PlanService::new();
        let token = CancelToken::new();
        token.cancel();
        let job = JobBuilder::new(MixedSignalSoc::d695m())
            .single(16)
            .opts(quick_opts())
            .cancel_token(&token)
            .build()
            .unwrap();
        match service.submit(std::slice::from_ref(&job)).pop().unwrap() {
            JobOutcome::Cancelled => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.schedule_misses, 0, "nothing may be packed: {stats:?}");
        assert_eq!(stats.jobs_interrupted, 1, "{stats:?}");
    }

    #[test]
    fn zero_check_budget_expires_before_any_packing() {
        let service = PlanService::new();
        let job = JobBuilder::new(MixedSignalSoc::d695m())
            .single(16)
            .opts(quick_opts())
            .deadline(Deadline::checks(0))
            .build()
            .unwrap();
        match service.submit(std::slice::from_ref(&job)).pop().unwrap() {
            JobOutcome::DeadlineExceeded { partial } => {
                assert_eq!(partial.delta_packs, 0, "{partial:?}");
            }
            other => panic!("expected deadline, got {other:?}"),
        }
        assert_eq!(service.stats().schedule_misses, 0);
    }

    #[test]
    fn mid_run_check_budget_interrupts_between_waves_and_never_corrupts_caches() {
        // A table job with a tiny deterministic check budget dies between
        // waves; the same job re-submitted without a deadline must be
        // bit-identical to a cold service's run.
        let soc = MixedSignalSoc::d695m;
        let service = PlanService::new();
        let interrupted = JobBuilder::new(soc())
            .table(vec![16, 24])
            .opts(quick_opts())
            .deadline(Deadline::checks(2))
            .build()
            .unwrap();
        match service.submit(std::slice::from_ref(&interrupted)).pop().unwrap() {
            JobOutcome::DeadlineExceeded { .. } => {}
            other => panic!("expected deadline, got {other:?}"),
        }
        let full = JobBuilder::new(soc()).table(vec![16, 24]).opts(quick_opts()).build().unwrap();
        let warm = service.submit(std::slice::from_ref(&full)).pop().unwrap();
        let cold = PlanService::new().submit(std::slice::from_ref(&full)).pop().unwrap();
        let table = |o: JobOutcome| match o {
            JobOutcome::Completed(r) => match r.result {
                JobResult::Table(t) => t,
                other => panic!("expected a table, got {other:?}"),
            },
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(table(warm), table(cold), "interrupted partial state corrupted the caches");
        assert_eq!(service.stats().jobs_interrupted, 1);
    }

    #[test]
    fn generous_deadlines_leave_results_bit_identical_to_unlimited_runs() {
        let service = PlanService::new();
        let unlimited = quick_single(16);
        let with_deadline = JobBuilder::new(MixedSignalSoc::d695m())
            .single(16)
            .opts(quick_opts())
            .deadline(Deadline::checks(u64::MAX))
            .build()
            .unwrap();
        let a = PlanService::new().submit(std::slice::from_ref(&unlimited)).pop().unwrap();
        let b = service.submit(std::slice::from_ref(&with_deadline)).pop().unwrap();
        match (a, b) {
            (JobOutcome::Completed(a), JobOutcome::Completed(b)) => {
                assert_eq!(a.result.plan().unwrap(), b.result.plan().unwrap());
            }
            other => panic!("both must complete: {other:?}"),
        }
    }
}
