//! Incremental SOC revisions: registered handles, core edits, and
//! subtree fingerprints.
//!
//! Fleet traffic rarely sends *new* SOCs: it re-plans SOCs that changed a
//! couple of cores since the last request. [`PlanService::register`]
//! turns a SOC into a [`SocHandle`] carrying one content fingerprint per
//! core subtree (digital modules and analog cores, hashed with the same
//! [`StableHasher`] stream the cache keys use) plus their
//! [combined](msoc_tam::combine_subtree_fingerprints) SOC fingerprint.
//! [`SocHandle::revise`] applies a batch of [`CoreEdit`]s and re-hashes
//! **only the dirty subtrees** — O(edits) content hashing instead of
//! O(cores) — then recombines the cached leaves.
//!
//! Planning a revised handle needs no special path: the service's session
//! and schedule caches key on content, so every `(config, width)` cell
//! whose problem content an edit did not touch re-hits automatically —
//! an analog-only edit keeps the whole digital skeleton (sessions, packed
//! checkpoints, the delta-prefix trie) warm, and an edit that only moves
//! area-model attributes (resolution, converter specs) re-hits the
//! schedule cache outright, repricing costs without packing anything.
//! Those hits are counted in
//! [`ServiceStats::revision_cache_hits`](super::ServiceStats::revision_cache_hits).

use std::sync::Arc;

use msoc_analog::AnalogCoreSpec;
use msoc_itc02::Module;
use msoc_tam::{combine_subtree_fingerprints, StableHasher};

use crate::planner::PlanError;
use crate::soc::MixedSignalSoc;

use super::PlanService;

/// One edit of a registered SOC (applied by [`SocHandle::revise`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreEdit {
    /// Replace analog core `index` (the [`SharingConfig`] core index)
    /// with a new spec.
    ///
    /// [`SharingConfig`]: crate::SharingConfig
    ReplaceAnalog {
        /// Index into [`MixedSignalSoc::analog`].
        index: usize,
        /// The replacement core.
        core: AnalogCoreSpec,
    },
    /// Replace the digital module with the given id.
    ReplaceDigital {
        /// The [`Module::id`] to replace.
        id: u32,
        /// The replacement module (its id must match).
        module: Module,
    },
}

/// A registered SOC: the SOC plus cached per-core subtree fingerprints
/// and its revision lineage. Cheap to clone (the content is shared).
#[derive(Debug, Clone)]
pub struct SocHandle {
    inner: Arc<HandleInner>,
}

#[derive(Debug)]
struct HandleInner {
    soc: Arc<MixedSignalSoc>,
    /// One fingerprint per digital module, in `soc.digital.modules` order.
    digital_fps: Vec<u64>,
    /// One fingerprint per analog core, in `soc.analog` order.
    analog_fps: Vec<u64>,
    /// Combined SOC fingerprint (subtree leaves recombined).
    fingerprint: u64,
    /// 0 for a freshly registered SOC; parent revision + 1 after
    /// [`SocHandle::revise`].
    revision: u64,
}

impl PlanService {
    /// Registers a SOC, computing its per-core subtree fingerprints once.
    /// The handle is the cheap way to resubmit (and
    /// [revise](SocHandle::revise)) the same SOC across many jobs.
    pub fn register(&self, soc: MixedSignalSoc) -> SocHandle {
        let digital_fps: Vec<u64> = soc.digital.modules.iter().map(fingerprint_module).collect();
        let analog_fps: Vec<u64> = soc.analog.iter().map(fingerprint_analog_core).collect();
        let fingerprint = combine_soc(&soc.name, &digital_fps, &analog_fps);
        SocHandle {
            inner: Arc::new(HandleInner {
                soc: Arc::new(soc),
                digital_fps,
                analog_fps,
                fingerprint,
                revision: 0,
            }),
        }
    }
}

impl SocHandle {
    /// The registered SOC.
    pub fn soc(&self) -> &MixedSignalSoc {
        &self.inner.soc
    }

    /// Stable content fingerprint of the whole SOC (combined from the
    /// per-core subtree fingerprints; identical for identical content
    /// regardless of how many revisions produced it).
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// How many [`revise`](Self::revise) steps produced this handle
    /// (0 = registered directly).
    pub fn revision(&self) -> u64 {
        self.inner.revision
    }

    /// Applies a batch of edits, re-fingerprinting only the dirty core
    /// subtrees, and returns the revised handle (this handle is
    /// untouched — old and new revisions can be planned side by side).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidRequest`] for an out-of-range analog
    /// index, an unknown digital module id, or a replacement module whose
    /// id does not match the edit's.
    pub fn revise(&self, edits: &[CoreEdit]) -> Result<SocHandle, PlanError> {
        let mut soc = (*self.inner.soc).clone();
        let mut digital_fps = self.inner.digital_fps.clone();
        let mut analog_fps = self.inner.analog_fps.clone();
        for edit in edits {
            match edit {
                CoreEdit::ReplaceAnalog { index, core } => {
                    let slot = soc.analog.get_mut(*index).ok_or_else(|| {
                        PlanError::InvalidRequest(format!(
                            "analog core index {index} out of range ({} cores)",
                            self.inner.analog_fps.len()
                        ))
                    })?;
                    *slot = core.clone();
                    analog_fps[*index] = fingerprint_analog_core(core);
                }
                CoreEdit::ReplaceDigital { id, module } => {
                    if module.id != *id {
                        return Err(PlanError::InvalidRequest(format!(
                            "replacement module carries id {} but the edit names id {id}",
                            module.id
                        )));
                    }
                    let pos =
                        soc.digital.modules.iter().position(|m| m.id == *id).ok_or_else(|| {
                            PlanError::InvalidRequest(format!("no digital module with id {id}"))
                        })?;
                    soc.digital.modules[pos] = module.clone();
                    digital_fps[pos] = fingerprint_module(module);
                }
            }
        }
        let fingerprint = combine_soc(&soc.name, &digital_fps, &analog_fps);
        Ok(SocHandle {
            inner: Arc::new(HandleInner {
                soc: Arc::new(soc),
                digital_fps,
                analog_fps,
                fingerprint,
                revision: self.inner.revision + 1,
            }),
        })
    }
}

/// Combines the subtree leaves (plus the SOC name) into the handle
/// fingerprint.
fn combine_soc(name: &str, digital_fps: &[u64], analog_fps: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(name);
    h.write_u64(combine_subtree_fingerprints(digital_fps));
    h.write_u64(combine_subtree_fingerprints(analog_fps));
    h.finish()
}

/// Content fingerprint of one digital module (everything that feeds its
/// wrapper design and staircase).
fn fingerprint_module(m: &Module) -> u64 {
    let mut h = StableHasher::new();
    h.write_u32(m.id);
    h.write_u32(m.level);
    h.write_u32(m.inputs);
    h.write_u32(m.outputs);
    h.write_u32(m.bidirs);
    h.write_u64(m.scan_chains.len() as u64);
    for &len in &m.scan_chains {
        h.write_u32(len);
    }
    h.write_u64(m.tests.len() as u64);
    for t in &m.tests {
        h.write_u64(t.patterns);
        h.write_u8(u8::from(t.scan_used));
        h.write_u8(u8::from(t.tam_used));
    }
    h.finish()
}

/// Content fingerprint of one analog core: identity, area-relevant
/// attributes *and* the test set (schedule-relevant content), so any
/// observable change dirties the subtree.
fn fingerprint_analog_core(core: &AnalogCoreSpec) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&core.id.to_string());
    h.write_str(core.name);
    h.write_u8(core.resolution_bits);
    h.write_u64(core.tests.len() as u64);
    for t in &core.tests {
        h.write_str(&t.kind.to_string());
        h.write_u64(t.f_low_hz.to_bits());
        h.write_u64(t.f_high_hz.to_bits());
        h.write_u64(t.sample_rate_hz.to_bits());
        h.write_u64(t.cycles);
        h.write_u32(t.tam_width);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> PlanService {
        PlanService::new()
    }

    #[test]
    fn revised_fingerprints_match_a_from_scratch_registration() {
        let handle = service().register(MixedSignalSoc::p93791m());
        let mut edited_core = handle.soc().analog[4].clone();
        edited_core.tests[0].cycles += 1000;
        let revised = handle
            .revise(&[CoreEdit::ReplaceAnalog { index: 4, core: edited_core.clone() }])
            .unwrap();
        // Incremental re-fingerprinting must agree with hashing the edited
        // SOC from scratch — the cached clean subtrees are trustworthy.
        let mut scratch_soc = MixedSignalSoc::p93791m();
        scratch_soc.analog[4] = edited_core;
        let scratch = service().register(scratch_soc);
        assert_eq!(revised.fingerprint(), scratch.fingerprint());
        assert_ne!(revised.fingerprint(), handle.fingerprint());
        assert_eq!(revised.revision(), 1);
        assert_eq!(scratch.revision(), 0);
    }

    #[test]
    fn identity_edits_keep_the_fingerprint() {
        let handle = service().register(MixedSignalSoc::d695m());
        let same = handle
            .revise(&[CoreEdit::ReplaceAnalog { index: 2, core: handle.soc().analog[2].clone() }])
            .unwrap();
        assert_eq!(same.fingerprint(), handle.fingerprint());
        assert_eq!(same.revision(), 1, "lineage still advances");
    }

    #[test]
    fn digital_edits_re_fingerprint_the_module_subtree() {
        let handle = service().register(MixedSignalSoc::d695m());
        let id = handle.soc().digital.cores().next().unwrap().id;
        let mut module = handle.soc().digital.module(id).unwrap().clone();
        module.tests[0].patterns += 7;
        let revised = handle.revise(&[CoreEdit::ReplaceDigital { id, module }]).unwrap();
        assert_ne!(revised.fingerprint(), handle.fingerprint());
    }

    #[test]
    fn bad_edits_are_invalid_requests() {
        let handle = service().register(MixedSignalSoc::d695m());
        let core = handle.soc().analog[0].clone();
        assert!(matches!(
            handle.revise(&[CoreEdit::ReplaceAnalog { index: 99, core }]),
            Err(PlanError::InvalidRequest(_))
        ));
        let module = handle.soc().digital.cores().next().unwrap().clone();
        assert!(matches!(
            handle.revise(&[CoreEdit::ReplaceDigital { id: 9999, module: module.clone() }]),
            Err(PlanError::InvalidRequest(_))
        ));
        let mismatched = CoreEdit::ReplaceDigital { id: module.id + 1, module };
        // id 9999 missing vs mismatched replacement id are both rejected.
        assert!(matches!(handle.revise(&[mismatched]), Err(PlanError::InvalidRequest(_))));
    }

    #[test]
    fn analog_revisions_re_hit_sessions_and_unchanged_content_re_hits_schedules() {
        use super::super::{JobBuilder, JobOutcome};
        use msoc_tam::Effort;

        let opts =
            || crate::PlannerOptions { effort: Effort::Quick, ..crate::PlannerOptions::default() };
        let service = service();
        let handle = service.register(MixedSignalSoc::d695m());
        let cold = JobBuilder::for_handle(&handle).single(16).opts(opts()).build().unwrap();
        service.submit(std::slice::from_ref(&cold));
        assert_eq!(service.stats().revision_cache_hits, 0, "unrevised traffic is not counted");

        // Edit two analog cores' test lengths: the digital skeleton is
        // untouched, so the revised job re-hits the session cache (warm
        // checkpoints + prefix trie) and only repacks deltas.
        let mut d = handle.soc().analog[3].clone();
        d.tests[0].cycles += 500;
        let mut e = handle.soc().analog[4].clone();
        e.tests[0].cycles += 500;
        let revised = handle
            .revise(&[
                CoreEdit::ReplaceAnalog { index: 3, core: d },
                CoreEdit::ReplaceAnalog { index: 4, core: e },
            ])
            .unwrap();
        let job = JobBuilder::for_handle(&revised).single(16).opts(opts()).build().unwrap();
        let outcome = service.submit(std::slice::from_ref(&job)).pop().unwrap();
        let stats = service.stats();
        assert!(stats.revision_cache_hits > 0, "revision must reuse warm content: {stats:?}");

        // And the revised result is bit-identical to a cold service's.
        let fresh = PlanService::new();
        let fresh_outcome = fresh.submit(std::slice::from_ref(&job)).pop().unwrap();
        match (outcome, fresh_outcome) {
            (JobOutcome::Completed(warm), JobOutcome::Completed(cold)) => {
                assert_eq!(warm.result.plan().unwrap(), cold.result.plan().unwrap());
            }
            other => panic!("both runs must complete: {other:?}"),
        }
    }

    #[test]
    fn area_only_edits_re_hit_the_schedule_cache_outright() {
        use super::super::JobBuilder;
        use msoc_tam::Effort;

        let opts =
            || crate::PlannerOptions { effort: Effort::Quick, ..crate::PlannerOptions::default() };
        let service = service();
        let handle = service.register(MixedSignalSoc::d695m());
        let cold = JobBuilder::for_handle(&handle).single(16).opts(opts()).build().unwrap();
        service.submit(std::slice::from_ref(&cold));
        let misses_cold = service.stats().schedule_misses;

        // Resolution is area-model input only: no schedule problem
        // changes, so the revised job re-plans without packing anything.
        let mut c = handle.soc().analog[2].clone();
        c.resolution_bits += 1;
        let revised = handle.revise(&[CoreEdit::ReplaceAnalog { index: 2, core: c }]).unwrap();
        assert_ne!(revised.fingerprint(), handle.fingerprint());
        let job = JobBuilder::for_handle(&revised).single(16).opts(opts()).build().unwrap();
        service.submit(std::slice::from_ref(&job));
        let stats = service.stats();
        assert_eq!(
            stats.schedule_misses, misses_cold,
            "an area-only revision must not pack: {stats:?}"
        );
        assert!(stats.revision_cache_hits > 0, "{stats:?}");
    }
}
