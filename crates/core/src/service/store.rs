//! Pluggable snapshot storage: the [`SnapshotStore`] trait, a
//! crash-safe directory backend ([`DirStore`]), an in-memory backend
//! ([`MemStore`]), and a deterministic fault-injecting decorator
//! ([`FaultyStore`]) for resilience testing.
//!
//! A store is a flat namespace of named blobs. The
//! [`SnapshotDaemon`](super::SnapshotDaemon) names its blobs by
//! **content**: [`blob_name`] embeds both a monotone generation number
//! (recovery order) and the FNV-1a hash of the v2 snapshot bytes
//! (tamper evidence, and free skipping of unchanged exports — equal
//! bytes produce an equal name, so there is nothing new to write).
//!
//! [`DirStore`] is the production backend: every `put` writes the full
//! blob to a hidden temp file and atomically renames it into place, so a
//! crash mid-write can leave a stray temp file but never a torn blob
//! under a final name. [`FaultyStore`] deliberately breaks that
//! guarantee — seeded, reproducible IO errors, short/torn writes and
//! stale reads — which is exactly what the daemon's retry/backoff and
//! boot-time quarantine paths are tested against.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::snapshot::fnv;

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No blob exists under the requested name.
    NotFound(String),
    /// The backend failed (message attached). May be transient —
    /// callers with durability requirements retry with backoff.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(name) => write!(f, "no blob named {name:?}"),
            StoreError::Io(what) => write!(f, "store IO failed: {what}"),
        }
    }
}

impl Error for StoreError {}

/// A flat namespace of named blobs — the persistence boundary the
/// [`SnapshotDaemon`](super::SnapshotDaemon) writes through.
///
/// Contract: `put` replaces the whole blob under `name` (readers never
/// observe a mix of old and new bytes from a *successful* put);
/// `remove` is idempotent (removing a missing blob succeeds); `list`
/// returns every stored name in unspecified order. Faulty
/// implementations may violate the atomicity contract — that is what
/// boot-time recovery quarantines.
pub trait SnapshotStore: Send + Sync {
    /// Stores `bytes` under `name`, replacing any existing blob.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend fails; the blob's state is
    /// then unspecified (absent, old, or — on a non-atomic backend —
    /// torn).
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// The blob stored under `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] for an unknown name, [`StoreError::Io`]
    /// when the backend fails.
    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Every stored blob name, in unspecified order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend fails.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Removes the blob under `name` (idempotent: a missing name is not
    /// an error).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend fails.
    fn remove(&self, name: &str) -> Result<(), StoreError>;
}

/// The content-addressed name of one snapshot generation:
/// `gen-<generation, 10 digits>-<FNV-1a of bytes, 16 hex digits>.msnap`.
///
/// The generation number makes recovery order explicit (newest first);
/// the content hash makes the name self-verifying (recovery re-hashes
/// the bytes and quarantines mismatches) and makes unchanged exports
/// free (equal bytes → equal name → nothing to write). The exact
/// format is pinned by a golden test — changing it silently would orphan
/// every deployed store.
pub fn blob_name(generation: u64, bytes: &[u8]) -> String {
    format!("gen-{generation:010}-{:016x}.msnap", fnv(bytes))
}

/// Parses a [`blob_name`] back into `(generation, content_hash)`;
/// `None` for foreign names (which stores may carry freely — recovery
/// ignores them).
pub fn parse_blob_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("gen-")?.strip_suffix(".msnap")?;
    // Fixed layout: 10 decimal digits, '-', 16 hex digits.
    if rest.len() != 27 || rest.as_bytes()[10] != b'-' {
        return None;
    }
    let (generation, hash) = (&rest[..10], &rest[11..]);
    if !generation.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((generation.parse().ok()?, u64::from_str_radix(hash, 16).ok()?))
}

/// A directory of blob files with crash-safe writes: every `put` goes
/// to a hidden `.tmp` sibling first and is atomically renamed into
/// place, so a final name either holds the complete old bytes or the
/// complete new bytes — never a torn mix — even across a crash.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    /// Distinguishes concurrent temp files of the same blob name.
    tmp_seq: AtomicU64,
}

impl DirStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create store dir", &root, &e))?;
        Ok(DirStore { root, tmp_seq: AtomicU64::new(0) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, StoreError> {
        // Blob names are a flat namespace: path separators (or traversal
        // tricks) are a caller bug, reported as IO misuse, never joined.
        if name.is_empty() || name.contains(['/', '\\']) || name.contains("..") {
            return Err(StoreError::Io(format!("invalid blob name {name:?}")));
        }
        Ok(self.root.join(name))
    }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{what} {}: {e}", path.display()))
}

impl SnapshotStore for DirStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let target = self.path_of(name)?;
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!(".{name}.tmp{seq}"));
        std::fs::write(&tmp, bytes).map_err(|e| io_err("write temp blob", &tmp, &e))?;
        std::fs::rename(&tmp, &target).map_err(|e| {
            // Leave no stray temp file behind a failed rename.
            let _ = std::fs::remove_file(&tmp);
            io_err("rename temp blob into", &target, &e)
        })
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(name)?;
        std::fs::read(&path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => StoreError::NotFound(name.to_string()),
            _ => io_err("read blob", &path, &e),
        })
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| io_err("list store dir", &self.root, &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list store dir", &self.root, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // Hidden files are in-flight temp blobs, not stored content.
            if !name.starts_with('.') && entry.file_type().is_ok_and(|t| t.is_file()) {
                names.push(name.to_string());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        let path = self.path_of(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove blob", &path, &e)),
        }
    }
}

/// An in-memory [`SnapshotStore`] (tests and ephemeral deployments).
#[derive(Debug, Default)]
pub struct MemStore {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl SnapshotStore for MemStore {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.blobs.lock().expect("mem store lock").insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.blobs
            .lock()
            .expect("mem store lock")
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> =
            self.blobs.lock().expect("mem store lock").keys().cloned().collect();
        names.sort_unstable();
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        self.blobs.lock().expect("mem store lock").remove(name);
        Ok(())
    }
}

/// Counts of the faults a [`FaultyStore`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Operations that failed with a clean [`StoreError::Io`] (nothing
    /// written or read).
    pub io_errors: u64,
    /// Puts that wrote a truncated prefix of the blob to the inner
    /// store **and then** reported failure — the torn write an atomic
    /// backend would never produce.
    pub torn_writes: u64,
    /// Puts that silently flipped one bit of the blob and reported
    /// success — the corruption only a read-back (or boot-time
    /// verification) can catch.
    pub flipped_writes: u64,
    /// Gets that returned the blob's *previous* content.
    pub stale_reads: u64,
}

impl FaultCounters {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.io_errors + self.torn_writes + self.flipped_writes + self.stale_reads
    }
}

#[derive(Debug)]
struct FaultState {
    rng: u64,
    /// What the inner store most recently accepted per name (the
    /// *actual* bytes on "disk", torn/flipped variants included).
    latest: HashMap<String, Vec<u8>>,
    /// The content each name held before its most recent write — what a
    /// stale read returns.
    previous: HashMap<String, Vec<u8>>,
    counters: FaultCounters,
}

impl FaultState {
    /// Records a write the inner store accepted, rotating the old
    /// content into the stale-read slot.
    fn record_write(&mut self, name: &str, written: &[u8]) {
        if let Some(old) = self.latest.insert(name.to_string(), written.to_vec()) {
            self.previous.insert(name.to_string(), old);
        }
    }
}

/// A [`SnapshotStore`] decorator that deterministically injects seeded
/// faults: clean IO errors, short/torn writes, silent single-bit
/// corruption, and stale reads.
///
/// Every operation draws from one seeded xorshift stream, so a given
/// `(seed, fault_percent, operation sequence)` replays the exact same
/// fault pattern on every run — the resilience tests and the bench
/// harness rely on that to make "the daemon survives ≥30% faults"
/// a deterministic assertion instead of a flaky one.
#[derive(Debug)]
pub struct FaultyStore<S> {
    inner: S,
    fault_percent: u32,
    state: Mutex<FaultState>,
}

impl<S: SnapshotStore> FaultyStore<S> {
    /// Wraps `inner`, failing roughly `fault_percent`% of operations
    /// (deterministically, from `seed`).
    pub fn new(inner: S, seed: u64, fault_percent: u32) -> Self {
        FaultyStore {
            inner,
            fault_percent: fault_percent.min(100),
            state: Mutex::new(FaultState {
                // A zero xorshift state sticks at zero; mix the seed so
                // every seed (0 included) yields a live stream.
                rng: seed ^ 0x9E37_79B9_7F4A_7C15,
                latest: HashMap::new(),
                previous: HashMap::new(),
                counters: FaultCounters::default(),
            }),
        }
    }

    /// The decorated store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The faults injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.state.lock().expect("faulty store lock").counters
    }
}

/// A reference to a store is a store (lets a daemon borrow a store the
/// caller keeps, e.g. to run boot-time recovery against it afterwards).
impl<S: SnapshotStore + ?Sized> SnapshotStore for &S {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        (**self).put(name, bytes)
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        (**self).get(name)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        (**self).remove(name)
    }
}

/// One xorshift64 draw (never returns the all-zero state).
pub(crate) fn draw(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

impl<S: SnapshotStore> SnapshotStore for FaultyStore<S> {
    fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut state = self.state.lock().expect("faulty store lock");
        let roll = draw(&mut state.rng);
        if roll % 100 < u64::from(self.fault_percent) {
            match roll % 3 {
                0 => {
                    state.counters.io_errors += 1;
                    return Err(StoreError::Io(format!("injected: put {name} failed")));
                }
                1 => {
                    // Torn write: a truncated prefix lands under the
                    // final name, then the operation reports failure —
                    // the blob is now garbage until a retry replaces it.
                    state.counters.torn_writes += 1;
                    let keep = (roll >> 8) as usize % bytes.len().max(1);
                    if self.inner.put(name, &bytes[..keep]).is_ok() {
                        state.record_write(name, &bytes[..keep]);
                    }
                    return Err(StoreError::Io(format!(
                        "injected: put {name} torn at {keep}/{} bytes",
                        bytes.len()
                    )));
                }
                _ => {
                    // Silent corruption: one flipped bit, reported as
                    // success. Only read-back verification or boot-time
                    // recovery can notice.
                    state.counters.flipped_writes += 1;
                    let mut corrupt = bytes.to_vec();
                    if !corrupt.is_empty() {
                        let at = (roll >> 8) as usize % corrupt.len();
                        corrupt[at] ^= 1 << ((roll >> 3) % 8);
                    }
                    self.inner.put(name, &corrupt)?;
                    state.record_write(name, &corrupt);
                    return Ok(());
                }
            }
        }
        self.inner.put(name, bytes)?;
        state.record_write(name, bytes);
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let mut state = self.state.lock().expect("faulty store lock");
        let roll = draw(&mut state.rng);
        if roll % 100 < u64::from(self.fault_percent) {
            if roll % 2 == 0 {
                if let Some(previous) = state.previous.get(name).cloned() {
                    state.counters.stale_reads += 1;
                    return Ok(previous);
                }
            }
            state.counters.io_errors += 1;
            return Err(StoreError::Io(format!("injected: get {name} failed")));
        }
        self.inner.get(name)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut state = self.state.lock().expect("faulty store lock");
        let roll = draw(&mut state.rng);
        if roll % 100 < u64::from(self.fault_percent) {
            state.counters.io_errors += 1;
            return Err(StoreError::Io("injected: list failed".to_string()));
        }
        self.inner.list()
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        let mut state = self.state.lock().expect("faulty store lock");
        let roll = draw(&mut state.rng);
        if roll % 100 < u64::from(self.fault_percent) {
            state.counters.io_errors += 1;
            return Err(StoreError::Io(format!("injected: remove {name} failed")));
        }
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let unique =
            format!("msoc_store_{tag}_{}_{:?}", std::process::id(), std::thread::current().id());
        std::env::temp_dir().join(unique)
    }

    #[test]
    fn blob_names_roundtrip_and_reject_foreign_names() {
        let bytes = b"snapshot bytes";
        let name = blob_name(42, bytes);
        assert_eq!(parse_blob_name(&name), Some((42, fnv(bytes))));
        for foreign in
            ["gen-123.msnap", "gen-0000000001-zzzz.msnap", "other.txt", "", "gen--1-00.msnap"]
        {
            assert_eq!(parse_blob_name(foreign), None, "{foreign:?} must not parse");
        }
    }

    #[test]
    fn dir_store_puts_atomically_and_lists_what_it_stored() {
        let root = temp_root("atomic");
        let store = DirStore::open(&root).unwrap();
        store.put("a.msnap", b"alpha").unwrap();
        store.put("b.msnap", b"beta").unwrap();
        store.put("a.msnap", b"alpha2").unwrap();
        assert_eq!(store.get("a.msnap").unwrap(), b"alpha2");
        assert_eq!(store.list().unwrap(), vec!["a.msnap".to_string(), "b.msnap".to_string()]);
        assert!(matches!(store.get("missing"), Err(StoreError::NotFound(_))));
        store.remove("a.msnap").unwrap();
        store.remove("a.msnap").unwrap(); // idempotent
        assert_eq!(store.list().unwrap(), vec!["b.msnap".to_string()]);
        // No temp litter after successful writes.
        let hidden = std::fs::read_dir(&root)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().starts_with('.'))
            .count();
        assert_eq!(hidden, 0, "temp files must not outlive their put");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn dir_store_rejects_traversal_names() {
        let root = temp_root("names");
        let store = DirStore::open(&root).unwrap();
        for bad in ["../escape", "a/b", "a\\b", "", "a..b"] {
            assert!(
                matches!(store.put(bad, b"x"), Err(StoreError::Io(_))),
                "{bad:?} must be rejected"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn faulty_store_is_deterministic_and_injects_every_kind() {
        let run = || {
            let store = FaultyStore::new(MemStore::new(), 7, 40);
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                // Five names, cycled: repeated writes to the same name
                // populate the stale-read history.
                let name = format!("gen-{:010}-{:016x}.msnap", i % 5, i % 5);
                outcomes.push(store.put(&name, &i.to_le_bytes()).is_ok());
                outcomes.push(store.get(&name).is_ok());
            }
            (outcomes, store.fault_counters())
        };
        let (a, counters_a) = run();
        let (b, counters_b) = run();
        assert_eq!(a, b, "same seed must replay the same fault pattern");
        assert_eq!(counters_a, counters_b);
        assert!(counters_a.io_errors > 0, "{counters_a:?}");
        assert!(counters_a.torn_writes > 0, "{counters_a:?}");
        assert!(counters_a.flipped_writes > 0, "{counters_a:?}");
        assert!(counters_a.stale_reads > 0, "{counters_a:?}");
    }

    #[test]
    fn fault_free_decorator_is_transparent() {
        let store = FaultyStore::new(MemStore::new(), 99, 0);
        store.put("x", b"payload").unwrap();
        assert_eq!(store.get("x").unwrap(), b"payload");
        assert_eq!(store.list().unwrap(), vec!["x".to_string()]);
        store.remove("x").unwrap();
        assert!(store.list().unwrap().is_empty());
        assert_eq!(store.fault_counters().total(), 0);
    }
}
