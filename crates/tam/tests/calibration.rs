//! Calibration checks: the synthetic p93791s SOC must schedule to the
//! published makespan scale of the real p93791 benchmark (see DESIGN.md),
//! because the paper's Table 3/4 shapes depend on the relative magnitude of
//! digital and analog test times.

use msoc_itc02::synth;
use msoc_tam::{bounds, schedule_with_effort, Effort, ScheduleProblem};

#[test]
fn p93791s_digital_makespans_match_published_scale() {
    let soc = synth::p93791s();
    // (width, published-scale band in cycles)
    let bands: [(u32, std::ops::Range<u64>); 4] = [
        (16, 1_700_000..2_300_000),
        (32, 900_000..1_200_000),
        (48, 600_000..800_000),
        (64, 460_000..620_000),
    ];
    for (w, band) in bands {
        let p = ScheduleProblem::from_soc(&soc, w);
        let s = schedule_with_effort(&p, Effort::Standard).expect("feasible");
        s.validate(&p).expect("valid schedule");
        assert!(
            band.contains(&s.makespan()),
            "W={w}: makespan {} outside calibration band {band:?}",
            s.makespan()
        );
    }
}

#[test]
fn p93791s_packing_is_tight() {
    let soc = synth::p93791s();
    for w in [24, 32, 56] {
        let p = ScheduleProblem::from_soc(&soc, w);
        let s = schedule_with_effort(&p, Effort::Standard).expect("feasible");
        let lb = bounds::lower_bound(&p);
        let ratio = s.makespan() as f64 / lb as f64;
        assert!(
            ratio < 1.20,
            "W={w}: makespan {} is {ratio:.3}x the lower bound {lb}",
            s.makespan()
        );
    }
}
