//! Incremental pack sessions: share one packed digital skeleton across a
//! sweep of candidate configurations.
//!
//! A wrapper-sharing sweep evaluates ~26 candidate configurations per TAM
//! width, and every candidate's scheduling problem contains the *same*
//! digital jobs — only the analog wrapper grouping changes. A
//! [`PackSession`] captures that structure: it owns the sweep-invariant
//! *skeleton* jobs, packs each skeleton ordering exactly once into a
//! checkpoint (placed entries + the engine's capacity index), and lets
//! every candidate *delta-pack* its per-configuration jobs on a restored
//! snapshot. Session packs are **bit-identical** to from-scratch
//! [`schedule_with_engine`](super::schedule_with_engine) calls on the
//! combined problem — from-scratch scheduling routes through a transient
//! session internally — and the session exposes hit/miss/prune counters so
//! harnesses can assert the reuse actually happens.
//!
//! ```
//! use msoc_tam::{Effort, Engine, PackSession, TestJob};
//! use msoc_wrapper::{Staircase, StaircasePoint};
//!
//! let point = |w, t| Staircase::from_points(vec![StaircasePoint { width: w, time: t }]);
//! let skeleton = vec![TestJob::new("d0", point(2, 100)), TestJob::new("d1", point(2, 80))];
//! let session = PackSession::new(4, skeleton, Effort::Quick, Engine::Skyline);
//! let a = session.pack(&[TestJob::delta_in_group("t0", point(1, 30), 0)])?;
//! let b = session.pack(&[TestJob::delta_in_group("t1", point(1, 40), 0)])?;
//! assert!(a.makespan() >= 100 && b.makespan() >= 100);
//! assert!(session.stats().skeleton_hits > 0, "second pack reuses the skeleton");
//! # Ok::<(), msoc_tam::ScheduleError>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::problem::{JobKind, TestJob};

use super::guillotine::GuillotineIndex;
use super::maxrects::MaxRectsIndex;
use super::naive::NaiveIndex;
use super::portfolio::PortfolioCore;
use super::search::{CheckpointExport, CheckpointImportStats, SessionCore};
use super::skyline::SkylineIndex;
use super::{Effort, Engine, Schedule, ScheduleError};

/// Shared atomic counters behind [`SessionStats`].
#[derive(Debug, Default)]
pub(crate) struct SessionCounters {
    pub(crate) skeleton_hits: AtomicU64,
    pub(crate) skeleton_misses: AtomicU64,
    pub(crate) delta_packs: AtomicU64,
    pub(crate) pruned_passes: AtomicU64,
    pub(crate) prefix_hits: AtomicU64,
    pub(crate) prefix_jobs_restored: AtomicU64,
    pub(crate) max_prefix_depth: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) import_restored: AtomicU64,
    pub(crate) import_dropped: AtomicU64,
    pub(crate) portfolio_wins_skyline: AtomicU64,
    pub(crate) portfolio_wins_maxrects: AtomicU64,
    pub(crate) portfolio_wins_guillotine: AtomicU64,
    pub(crate) portfolio_race_prunes: AtomicU64,
    pub(crate) portfolio_checks_to_best: AtomicU64,
}

/// A snapshot of a session's reuse counters.
///
/// `skeleton_misses` counts skeleton orderings actually packed;
/// `skeleton_hits` counts checkpoint lookups served from the cache (the
/// *reuses* the session exists for). The `prefix_*` counters cover the
/// delta-prefix trie: a prefix hit restores a checkpoint *deeper* than the
/// bare skeleton — packed delta jobs shared with an earlier candidate —
/// and `prefix_jobs_restored`/`max_prefix_depth` record how many delta
/// placements those hits skipped (total and per-restore maximum).
/// `pruned_passes` counts delta passes abandoned by the incumbent
/// lower-bound prune; `evictions` counts checkpoints dropped by the LRU
/// cap.
///
/// The `portfolio_*` counters are only advanced by [`Engine::Portfolio`]
/// sessions: per-engine pack wins (the deterministic `(makespan, engine
/// rank)` winner of each race), passes pruned specifically by a *cross-
/// engine* frozen bound (tighter than the engine's own incumbent), and
/// the cumulative number of check boundaries each race needed before its
/// final best makespan was first published.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Skeleton checkpoint lookups served from the cache.
    pub skeleton_hits: u64,
    /// Skeleton orderings packed from scratch (cache misses).
    pub skeleton_misses: u64,
    /// Completed delta packs (one per candidate configuration).
    pub delta_packs: u64,
    /// Delta passes abandoned by the lower-bound prune.
    pub pruned_passes: u64,
    /// Restores that went deeper than the skeleton: delta placements
    /// shared with an earlier candidate were skipped.
    pub prefix_hits: u64,
    /// Total delta placements skipped by prefix restores.
    pub prefix_jobs_restored: u64,
    /// Deepest single prefix restore, in delta placements.
    pub max_prefix_depth: u64,
    /// Checkpoints evicted by the LRU cap.
    pub evictions: u64,
    /// Checkpoint states restored by [`PackSession::import_checkpoints`]
    /// (each one re-packed and verified against its persisted placement).
    pub import_restored: u64,
    /// Exported checkpoints an import dropped because they did not equal
    /// the deterministic re-pack of their own prefix (or their structure
    /// was malformed).
    pub import_dropped: u64,
    /// Portfolio races won by the skyline engine.
    pub portfolio_wins_skyline: u64,
    /// Portfolio races won by the MaxRects engine.
    pub portfolio_wins_maxrects: u64,
    /// Portfolio races won by the guillotine engine.
    pub portfolio_wins_guillotine: u64,
    /// Passes pruned by a cross-engine frozen bound (strictly tighter
    /// than the pruned engine's own incumbent at the check boundary).
    pub portfolio_race_prunes: u64,
    /// Cumulative check boundaries until each race's winning makespan was
    /// first published.
    pub portfolio_checks_to_best: u64,
}

impl SessionCounters {
    pub(crate) fn snapshot(&self) -> SessionStats {
        SessionStats {
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            delta_packs: self.delta_packs.load(Ordering::Relaxed),
            pruned_passes: self.pruned_passes.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            prefix_jobs_restored: self.prefix_jobs_restored.load(Ordering::Relaxed),
            max_prefix_depth: self.max_prefix_depth.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            import_restored: self.import_restored.load(Ordering::Relaxed),
            import_dropped: self.import_dropped.load(Ordering::Relaxed),
            portfolio_wins_skyline: self.portfolio_wins_skyline.load(Ordering::Relaxed),
            portfolio_wins_maxrects: self.portfolio_wins_maxrects.load(Ordering::Relaxed),
            portfolio_wins_guillotine: self.portfolio_wins_guillotine.load(Ordering::Relaxed),
            portfolio_race_prunes: self.portfolio_race_prunes.load(Ordering::Relaxed),
            portfolio_checks_to_best: self.portfolio_checks_to_best.load(Ordering::Relaxed),
        }
    }
}

enum EngineCore {
    Skyline(SessionCore<SkylineIndex>),
    Naive(SessionCore<NaiveIndex>),
    MaxRects(SessionCore<MaxRectsIndex>),
    Guillotine(SessionCore<GuillotineIndex>),
    // Boxed: the portfolio core holds three engine cores, dwarfing the
    // single-engine variants.
    Portfolio(Box<PortfolioCore>),
}

/// An incremental pack session (see the module docs).
///
/// Packing takes `&self` — the skeleton-checkpoint cache is internally
/// synchronized — so a sweep can fan candidate delta-packs out across
/// threads while they share one session.
pub struct PackSession {
    core: EngineCore,
    engine: Engine,
    counters: SessionCounters,
}

impl std::fmt::Debug for PackSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackSession")
            .field("tam_width", &self.tam_width())
            .field("skeleton_jobs", &self.skeleton().len())
            .field("effort", &self.effort())
            .field("engine", &self.engine)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PackSession {
    /// Creates a session for `skeleton` (the sweep-invariant jobs) at the
    /// given TAM width, effort and engine.
    ///
    /// The skeleton jobs' [`JobKind`] is normalized to
    /// [`JobKind::Skeleton`]: the session *defines* them as the invariant
    /// part, and the normalization keeps [`Self::problem_for`] consistent
    /// with the session split.
    pub fn new(tam_width: u32, skeleton: Vec<TestJob>, effort: Effort, engine: Engine) -> Self {
        Self::with_checkpoint_cap(
            tam_width,
            skeleton,
            effort,
            engine,
            super::search::CHECKPOINT_CACHE_CAP,
        )
    }

    /// [`Self::new`] with an explicit checkpoint-cache capacity.
    ///
    /// The cap bounds how many packed checkpoints (skeleton runs plus
    /// delta-prefix snapshots) the session retains; above it the least
    /// recently used checkpoint is evicted (counted in
    /// [`SessionStats::evictions`]). Results never depend on the cap — an
    /// evicted checkpoint is simply re-packed on its next use — so even a
    /// cap of 1 stays bit-identical, just slower.
    pub fn with_checkpoint_cap(
        tam_width: u32,
        skeleton: Vec<TestJob>,
        effort: Effort,
        engine: Engine,
        cap: usize,
    ) -> Self {
        let skeleton: Vec<TestJob> = skeleton
            .into_iter()
            .map(|mut job| {
                job.kind = JobKind::Skeleton;
                job
            })
            .collect();
        let core = match engine {
            Engine::Skyline => EngineCore::Skyline(SessionCore::with_checkpoint_cap(
                tam_width, skeleton, effort, cap,
            )),
            Engine::Naive => EngineCore::Naive(
                SessionCore::with_checkpoint_cap(tam_width, skeleton, effort, cap)
                    .serial_unpruned(),
            ),
            Engine::MaxRects => EngineCore::MaxRects(SessionCore::with_checkpoint_cap(
                tam_width, skeleton, effort, cap,
            )),
            Engine::Guillotine => EngineCore::Guillotine(SessionCore::with_checkpoint_cap(
                tam_width, skeleton, effort, cap,
            )),
            Engine::Portfolio => EngineCore::Portfolio(Box::new(
                PortfolioCore::with_checkpoint_cap(tam_width, skeleton, effort, cap),
            )),
        };
        PackSession { core, engine, counters: SessionCounters::default() }
    }

    /// Stable content fingerprint of the session: skeleton jobs, TAM
    /// width, effort and engine — everything that determines the packed
    /// result of any delta. Two sessions with equal fingerprints (and
    /// equal content, which callers keyed on the fingerprint must verify)
    /// are interchangeable, which is what lets a plan service share
    /// sessions across planner instances.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::StableHasher::new();
        h.write_u32(self.tam_width());
        crate::fingerprint::write_effort(&mut h, self.effort());
        crate::fingerprint::write_engine(&mut h, self.engine);
        crate::fingerprint::write_jobs(&mut h, self.skeleton());
        h.finish()
    }

    /// The sweep-invariant skeleton jobs.
    pub fn skeleton(&self) -> &[TestJob] {
        match &self.core {
            EngineCore::Skyline(c) => c.skeleton(),
            EngineCore::Naive(c) => c.skeleton(),
            EngineCore::MaxRects(c) => c.skeleton(),
            EngineCore::Guillotine(c) => c.skeleton(),
            EngineCore::Portfolio(c) => c.skeleton(),
        }
    }

    /// TAM width the session packs for.
    pub fn tam_width(&self) -> u32 {
        match &self.core {
            EngineCore::Skyline(c) => c.tam_width(),
            EngineCore::Naive(c) => c.tam_width(),
            EngineCore::MaxRects(c) => c.tam_width(),
            EngineCore::Guillotine(c) => c.tam_width(),
            EngineCore::Portfolio(c) => c.tam_width(),
        }
    }

    /// Effort level of every pack in the session.
    pub fn effort(&self) -> Effort {
        match &self.core {
            EngineCore::Skyline(c) => c.effort(),
            EngineCore::Naive(c) => c.effort(),
            EngineCore::MaxRects(c) => c.effort(),
            EngineCore::Guillotine(c) => c.effort(),
            EngineCore::Portfolio(c) => c.effort(),
        }
    }

    /// The packing engine answering the session's capacity queries.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Pre-packs the base multi-start skeleton checkpoints (idempotent).
    ///
    /// Call this once before fanning candidate [`Self::pack`] calls out
    /// across threads: a cold cache would otherwise let the first wave of
    /// concurrent packs each re-pack the same base orderings. The missing
    /// checkpoints themselves are packed in parallel.
    pub fn warm(&self) {
        match &self.core {
            EngineCore::Skyline(c) => c.warm(&self.counters),
            EngineCore::Naive(c) => c.warm(&self.counters),
            EngineCore::MaxRects(c) => c.warm(&self.counters),
            EngineCore::Guillotine(c) => c.warm(&self.counters),
            EngineCore::Portfolio(c) => c.warm(&self.counters),
        }
    }

    /// Delta-packs one candidate: the session skeleton plus `delta`.
    ///
    /// Job indices in the returned schedule address the combined
    /// `skeleton ++ delta` list, i.e. the jobs of [`Self::problem_for`].
    /// The result is bit-identical to
    /// [`schedule_with_engine`](super::schedule_with_engine) on that
    /// problem with the session's effort and engine.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::JobTooWide`] when a skeleton or delta job
    /// cannot fit the TAM at any of its staircase points.
    pub fn pack(&self, delta: &[TestJob]) -> Result<Schedule, ScheduleError> {
        match &self.core {
            EngineCore::Skyline(c) => c.pack(delta, &self.counters),
            EngineCore::Naive(c) => c.pack(delta, &self.counters),
            EngineCore::MaxRects(c) => c.pack(delta, &self.counters),
            EngineCore::Guillotine(c) => c.pack(delta, &self.counters),
            EngineCore::Portfolio(c) => c.pack(delta, &self.counters),
        }
    }

    /// The combined [`ScheduleProblem`] a delta pack solves: the skeleton
    /// jobs followed by `delta` (kinds normalized), at the session width.
    ///
    /// [`ScheduleProblem`]: crate::ScheduleProblem
    pub fn problem_for(&self, delta: &[TestJob]) -> crate::ScheduleProblem {
        let mut jobs = self.skeleton().to_vec();
        jobs.extend(delta.iter().cloned().map(|mut job| {
            job.kind = JobKind::Delta;
            job
        }));
        crate::ScheduleProblem { tam_width: self.tam_width(), jobs }
    }

    /// Exports the session's checkpoint tries for persistence: the kept
    /// trie paths, each step's interned `(job position, job content)`
    /// pair and the placement it committed, in deterministic order.
    ///
    /// Portfolio sessions export one trie per member engine. The export is
    /// plain data — a snapshot codec compresses it — and feeds
    /// [`Self::import_checkpoints`] on a session with the same skeleton,
    /// width, effort and engine.
    pub fn export_checkpoints(&self) -> CheckpointExport {
        let tries = match &self.core {
            EngineCore::Skyline(c) => vec![c.export_trie()],
            EngineCore::Naive(c) => vec![c.export_trie()],
            EngineCore::MaxRects(c) => vec![c.export_trie()],
            EngineCore::Guillotine(c) => vec![c.export_trie()],
            EngineCore::Portfolio(c) => c.export_tries(),
        };
        CheckpointExport { tries }
    }

    /// Imports exported checkpoint tries, *verifying every step*: each
    /// node is re-packed deterministically on its parent's restored state,
    /// and a node whose recomputed placement disagrees with the persisted
    /// one is dropped with its whole subtree (counted in
    /// [`CheckpointImportStats::dropped`] and
    /// [`SessionStats::import_dropped`]). A restored checkpoint is
    /// therefore always the deterministic pack of its own prefix — imports
    /// can make a session *faster*, never *different*.
    ///
    /// Checkpoints are committed in the export's LRU order, so a restored
    /// session evicts in the order the exporting one would have. Importing
    /// an export whose member-trie count does not match the session's
    /// engine drops everything (counted, not an error).
    pub fn import_checkpoints(&self, export: &CheckpointExport) -> CheckpointImportStats {
        let expected = match self.engine {
            Engine::Portfolio => 3,
            _ => 1,
        };
        let (restored, dropped) = if export.tries.len() != expected {
            (0, export.checkpoint_count() as u64)
        } else {
            match &self.core {
                EngineCore::Skyline(c) => c.import_trie(&export.tries[0]),
                EngineCore::Naive(c) => c.import_trie(&export.tries[0]),
                EngineCore::MaxRects(c) => c.import_trie(&export.tries[0]),
                EngineCore::Guillotine(c) => c.import_trie(&export.tries[0]),
                EngineCore::Portfolio(c) => c.import_tries(&export.tries),
            }
        };
        self.counters.import_restored.fetch_add(restored, Ordering::Relaxed);
        self.counters.import_dropped.fetch_add(dropped, Ordering::Relaxed);
        CheckpointImportStats { restored, dropped }
    }

    /// A snapshot of the session's reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{schedule_with_engine, Effort, Engine};
    use super::*;
    use msoc_wrapper::{Staircase, StaircasePoint};

    fn single(width: u32, time: u64) -> Staircase {
        Staircase::from_points(vec![StaircasePoint { width, time }])
    }

    fn skeleton() -> Vec<TestJob> {
        vec![
            TestJob::new("d0", single(3, 120)),
            TestJob::new("d1", single(2, 90)),
            TestJob::new(
                "d2",
                Staircase::from_points(vec![
                    StaircasePoint { width: 1, time: 200 },
                    StaircasePoint { width: 2, time: 100 },
                    StaircasePoint { width: 4, time: 55 },
                ]),
            ),
        ]
    }

    fn deltas() -> Vec<Vec<TestJob>> {
        vec![
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 0),
                TestJob::delta_in_group("a2", single(2, 30), 1),
            ],
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 1),
                TestJob::delta_in_group("a2", single(2, 30), 1),
            ],
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 0),
                TestJob::delta_in_group("a2", single(2, 30), 0),
            ],
        ]
    }

    #[test]
    fn session_packs_match_from_scratch_for_every_engine() {
        for engine in [
            Engine::Skyline,
            Engine::Naive,
            Engine::MaxRects,
            Engine::Guillotine,
            Engine::Portfolio,
        ] {
            for effort in [Effort::Quick, Effort::Standard] {
                let session = PackSession::new(6, skeleton(), effort, engine);
                for delta in deltas() {
                    let via_session = session.pack(&delta).expect("feasible");
                    let problem = session.problem_for(&delta);
                    let scratch = schedule_with_engine(&problem, effort, engine).expect("feasible");
                    assert_eq!(via_session, scratch, "session diverged ({engine:?}, {effort:?})");
                    via_session.validate(&problem).expect("session schedule must validate");
                }
            }
        }
    }

    #[test]
    fn skeleton_checkpoints_are_reused_across_candidates() {
        let session = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            session.pack(&delta).expect("feasible");
        }
        let stats = session.stats();
        assert_eq!(stats.delta_packs, 3);
        assert!(stats.skeleton_hits > 0, "later candidates must hit the cache: {stats:?}");
        assert!(
            stats.skeleton_hits > stats.skeleton_misses,
            "reuse should dominate packing: {stats:?}"
        );
    }

    #[test]
    fn prefix_trie_restores_shared_delta_prefixes() {
        // Candidates 1 and 3 of `deltas()` share the grouping of their
        // first jobs; once candidate 1's phase passes have snapshotted
        // their delta steps, candidate 3 must restore past the skeleton.
        let session = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            session.pack(&delta).expect("feasible");
        }
        let stats = session.stats();
        assert!(stats.prefix_hits > 0, "delta prefixes must be restored: {stats:?}");
        assert!(stats.prefix_jobs_restored > 0, "{stats:?}");
        assert!(stats.max_prefix_depth > 0, "{stats:?}");
        assert!(stats.max_prefix_depth <= 3, "a restore cannot exceed the delta length: {stats:?}");
    }

    #[test]
    fn lru_eviction_exceeding_the_cap_stays_bit_identical_and_is_counted() {
        // A cap of 2 cannot even hold one candidate's snapshots, so the
        // sweep churns through evictions — and every pack must still be
        // bit-identical to the from-scratch schedule (evicted checkpoints
        // are simply re-packed).
        for engine in [Engine::Skyline, Engine::Naive] {
            let session =
                PackSession::with_checkpoint_cap(6, skeleton(), Effort::Standard, engine, 2);
            for round in 0..2 {
                for delta in deltas() {
                    let via_session = session.pack(&delta).expect("feasible");
                    let problem = session.problem_for(&delta);
                    let scratch =
                        schedule_with_engine(&problem, Effort::Standard, engine).expect("feasible");
                    assert_eq!(
                        via_session, scratch,
                        "capped session diverged ({engine:?}, round {round})"
                    );
                }
            }
            let stats = session.stats();
            assert!(stats.evictions > 0, "cap 2 must evict ({engine:?}): {stats:?}");
        }
        // An uncapped run of the same sweep evicts nothing.
        let roomy = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            roomy.pack(&delta).expect("feasible");
        }
        assert_eq!(roomy.stats().evictions, 0, "{:?}", roomy.stats());
    }

    #[test]
    fn fingerprints_key_on_every_session_parameter() {
        let base = PackSession::new(6, skeleton(), Effort::Quick, Engine::Skyline);
        let same = PackSession::new(6, skeleton(), Effort::Quick, Engine::Skyline);
        assert_eq!(base.fingerprint(), same.fingerprint());
        let widths = PackSession::new(7, skeleton(), Effort::Quick, Engine::Skyline);
        let efforts = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        let engines = PackSession::new(6, skeleton(), Effort::Quick, Engine::Naive);
        let mut other_jobs = skeleton();
        other_jobs.pop();
        let jobs = PackSession::new(6, other_jobs, Effort::Quick, Engine::Skyline);
        for (name, s) in
            [("width", widths), ("effort", efforts), ("engine", engines), ("jobs", jobs)]
        {
            assert_ne!(base.fingerprint(), s.fingerprint(), "{name} must feed the fingerprint");
        }
    }

    #[test]
    fn empty_skeleton_and_empty_delta_degenerate_cleanly() {
        let session = PackSession::new(8, Vec::new(), Effort::Quick, Engine::Skyline);
        assert_eq!(session.pack(&[]).expect("empty is feasible").makespan(), 0);
        let only_delta = vec![TestJob::delta("t", single(2, 50))];
        assert_eq!(session.pack(&only_delta).expect("feasible").makespan(), 50);
    }

    #[test]
    fn checkpoint_roundtrip_restores_prefix_reuse_without_rebuild_packs() {
        for engine in [Engine::Skyline, Engine::MaxRects, Engine::Portfolio] {
            let warm = PackSession::new(6, skeleton(), Effort::Standard, engine);
            let baselines: Vec<Schedule> =
                deltas().iter().map(|d| warm.pack(d).expect("feasible")).collect();
            let export = warm.export_checkpoints();
            assert!(export.checkpoint_count() > 0, "a packed session must export checkpoints");

            let restored = PackSession::new(6, skeleton(), Effort::Standard, engine);
            let stats = restored.import_checkpoints(&export);
            assert!(stats.restored > 0, "import must restore checkpoints ({engine:?})");
            assert_eq!(stats.dropped, 0, "a faithful export drops nothing ({engine:?})");
            let before = restored.stats();
            for (delta, baseline) in deltas().iter().zip(&baselines) {
                let replay = restored.pack(delta).expect("feasible");
                assert_eq!(&replay, baseline, "imported replay diverged ({engine:?})");
            }
            let after = restored.stats();
            assert_eq!(
                after.skeleton_misses, before.skeleton_misses,
                "imported replay must re-pack zero skeleton orderings ({engine:?}): {after:?}"
            );
            assert!(
                after.prefix_hits > before.prefix_hits,
                "imported replay must restore delta prefixes ({engine:?}): {after:?}"
            );
        }
    }

    #[test]
    fn checkpoint_export_is_stable_across_a_roundtrip() {
        let warm = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            warm.pack(&delta).expect("feasible");
        }
        let first = warm.export_checkpoints();
        let restored = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        restored.import_checkpoints(&first);
        let second = restored.export_checkpoints();
        assert_eq!(first, second, "export → import → export must be a fixed point");
    }

    #[test]
    fn tampered_checkpoint_placements_are_dropped_not_trusted() {
        let warm = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        let baselines: Vec<Schedule> =
            deltas().iter().map(|d| warm.pack(d).expect("feasible")).collect();
        let mut export = warm.export_checkpoints();
        // Shift the first persisted placement: the re-pack of that prefix
        // now disagrees, so the node and its whole subtree must go.
        export.tries[0].nodes[0].start += 1;
        let restored = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        let stats = restored.import_checkpoints(&export);
        assert!(stats.dropped > 0, "a tampered placement must be dropped: {stats:?}");
        assert_eq!(restored.stats().import_dropped, stats.dropped);
        // Dropped checkpoints cost reuse, never correctness.
        for (delta, baseline) in deltas().iter().zip(&baselines) {
            assert_eq!(&restored.pack(delta).expect("feasible"), baseline);
        }
    }

    #[test]
    fn mismatched_member_tries_drop_everything_counted() {
        let warm = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            warm.pack(&delta).expect("feasible");
        }
        let export = warm.export_checkpoints();
        assert_eq!(export.tries.len(), 1);
        let portfolio = PackSession::new(6, skeleton(), Effort::Standard, Engine::Portfolio);
        let stats = portfolio.import_checkpoints(&export);
        assert_eq!(stats.restored, 0);
        assert_eq!(stats.dropped as usize, export.checkpoint_count());
    }

    #[test]
    fn starved_checkpoint_cap_exports_and_imports_without_error() {
        let starved =
            PackSession::with_checkpoint_cap(6, skeleton(), Effort::Standard, Engine::Skyline, 2);
        for delta in deltas() {
            starved.pack(&delta).expect("feasible");
        }
        let export = starved.export_checkpoints();
        assert!(export.checkpoint_count() <= 2, "the cap bounds the export");
        let restored =
            PackSession::with_checkpoint_cap(6, skeleton(), Effort::Standard, Engine::Skyline, 2);
        let stats = restored.import_checkpoints(&export);
        assert_eq!(stats.dropped, 0, "{stats:?}");
        assert_eq!(stats.restored as usize, export.checkpoint_count());
        for delta in deltas() {
            restored.pack(&delta).expect("feasible");
        }
    }

    #[test]
    fn too_wide_delta_job_reports_combined_index() {
        let session = PackSession::new(4, skeleton(), Effort::Quick, Engine::Skyline);
        let delta = vec![TestJob::delta("wide", single(9, 10))];
        match session.pack(&delta) {
            Err(ScheduleError::JobTooWide { job, min_width: 9, tam_width: 4 }) => {
                assert_eq!(job, 3, "delta indices follow the skeleton");
            }
            other => panic!("expected JobTooWide, got {other:?}"),
        }
    }
}
