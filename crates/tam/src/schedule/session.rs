//! Incremental pack sessions: share one packed digital skeleton across a
//! sweep of candidate configurations.
//!
//! A wrapper-sharing sweep evaluates ~26 candidate configurations per TAM
//! width, and every candidate's scheduling problem contains the *same*
//! digital jobs — only the analog wrapper grouping changes. A
//! [`PackSession`] captures that structure: it owns the sweep-invariant
//! *skeleton* jobs, packs each skeleton ordering exactly once into a
//! checkpoint (placed entries + the engine's capacity index), and lets
//! every candidate *delta-pack* its per-configuration jobs on a restored
//! snapshot. Session packs are **bit-identical** to from-scratch
//! [`schedule_with_engine`](super::schedule_with_engine) calls on the
//! combined problem — from-scratch scheduling routes through a transient
//! session internally — and the session exposes hit/miss/prune counters so
//! harnesses can assert the reuse actually happens.
//!
//! ```
//! use msoc_tam::{Effort, Engine, PackSession, TestJob};
//! use msoc_wrapper::{Staircase, StaircasePoint};
//!
//! let point = |w, t| Staircase::from_points(vec![StaircasePoint { width: w, time: t }]);
//! let skeleton = vec![TestJob::new("d0", point(2, 100)), TestJob::new("d1", point(2, 80))];
//! let session = PackSession::new(4, skeleton, Effort::Quick, Engine::Skyline);
//! let a = session.pack(&[TestJob::delta_in_group("t0", point(1, 30), 0)])?;
//! let b = session.pack(&[TestJob::delta_in_group("t1", point(1, 40), 0)])?;
//! assert!(a.makespan() >= 100 && b.makespan() >= 100);
//! assert!(session.stats().skeleton_hits > 0, "second pack reuses the skeleton");
//! # Ok::<(), msoc_tam::ScheduleError>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::problem::{JobKind, TestJob};

use super::naive::NaiveIndex;
use super::search::SessionCore;
use super::skyline::SkylineIndex;
use super::{Effort, Engine, Schedule, ScheduleError};

/// Shared atomic counters behind [`SessionStats`].
#[derive(Debug, Default)]
pub(crate) struct SessionCounters {
    pub(crate) skeleton_hits: AtomicU64,
    pub(crate) skeleton_misses: AtomicU64,
    pub(crate) delta_packs: AtomicU64,
    pub(crate) pruned_passes: AtomicU64,
}

/// A snapshot of a session's reuse counters.
///
/// `skeleton_misses` counts skeleton orderings actually packed;
/// `skeleton_hits` counts checkpoint lookups served from the cache (the
/// *reuses* the session exists for). `pruned_passes` counts delta passes
/// abandoned by the incumbent lower-bound prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Skeleton checkpoint lookups served from the cache.
    pub skeleton_hits: u64,
    /// Skeleton orderings packed from scratch (cache misses).
    pub skeleton_misses: u64,
    /// Completed delta packs (one per candidate configuration).
    pub delta_packs: u64,
    /// Delta passes abandoned by the lower-bound prune.
    pub pruned_passes: u64,
}

impl SessionCounters {
    pub(crate) fn snapshot(&self) -> SessionStats {
        SessionStats {
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            delta_packs: self.delta_packs.load(Ordering::Relaxed),
            pruned_passes: self.pruned_passes.load(Ordering::Relaxed),
        }
    }
}

enum EngineCore {
    Skyline(SessionCore<SkylineIndex>),
    Naive(SessionCore<NaiveIndex>),
}

/// An incremental pack session (see the module docs).
///
/// Packing takes `&self` — the skeleton-checkpoint cache is internally
/// synchronized — so a sweep can fan candidate delta-packs out across
/// threads while they share one session.
pub struct PackSession {
    core: EngineCore,
    engine: Engine,
    counters: SessionCounters,
}

impl std::fmt::Debug for PackSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackSession")
            .field("tam_width", &self.tam_width())
            .field("skeleton_jobs", &self.skeleton().len())
            .field("effort", &self.effort())
            .field("engine", &self.engine)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PackSession {
    /// Creates a session for `skeleton` (the sweep-invariant jobs) at the
    /// given TAM width, effort and engine.
    ///
    /// The skeleton jobs' [`JobKind`] is normalized to
    /// [`JobKind::Skeleton`]: the session *defines* them as the invariant
    /// part, and the normalization keeps [`Self::problem_for`] consistent
    /// with the session split.
    pub fn new(tam_width: u32, skeleton: Vec<TestJob>, effort: Effort, engine: Engine) -> Self {
        let skeleton: Vec<TestJob> = skeleton
            .into_iter()
            .map(|mut job| {
                job.kind = JobKind::Skeleton;
                job
            })
            .collect();
        let core = match engine {
            Engine::Skyline => EngineCore::Skyline(SessionCore::new(tam_width, skeleton, effort)),
            Engine::Naive => {
                EngineCore::Naive(SessionCore::new(tam_width, skeleton, effort).serial_unpruned())
            }
        };
        PackSession { core, engine, counters: SessionCounters::default() }
    }

    /// The sweep-invariant skeleton jobs.
    pub fn skeleton(&self) -> &[TestJob] {
        match &self.core {
            EngineCore::Skyline(c) => c.skeleton(),
            EngineCore::Naive(c) => c.skeleton(),
        }
    }

    /// TAM width the session packs for.
    pub fn tam_width(&self) -> u32 {
        match &self.core {
            EngineCore::Skyline(c) => c.tam_width(),
            EngineCore::Naive(c) => c.tam_width(),
        }
    }

    /// Effort level of every pack in the session.
    pub fn effort(&self) -> Effort {
        match &self.core {
            EngineCore::Skyline(c) => c.effort(),
            EngineCore::Naive(c) => c.effort(),
        }
    }

    /// The packing engine answering the session's capacity queries.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Pre-packs the base multi-start skeleton checkpoints (idempotent).
    ///
    /// Call this once before fanning candidate [`Self::pack`] calls out
    /// across threads: a cold cache would otherwise let the first wave of
    /// concurrent packs each re-pack the same base orderings. The missing
    /// checkpoints themselves are packed in parallel.
    pub fn warm(&self) {
        match &self.core {
            EngineCore::Skyline(c) => c.warm(&self.counters),
            EngineCore::Naive(c) => c.warm(&self.counters),
        }
    }

    /// Delta-packs one candidate: the session skeleton plus `delta`.
    ///
    /// Job indices in the returned schedule address the combined
    /// `skeleton ++ delta` list, i.e. the jobs of [`Self::problem_for`].
    /// The result is bit-identical to
    /// [`schedule_with_engine`](super::schedule_with_engine) on that
    /// problem with the session's effort and engine.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::JobTooWide`] when a skeleton or delta job
    /// cannot fit the TAM at any of its staircase points.
    pub fn pack(&self, delta: &[TestJob]) -> Result<Schedule, ScheduleError> {
        match &self.core {
            EngineCore::Skyline(c) => c.pack(delta, &self.counters),
            EngineCore::Naive(c) => c.pack(delta, &self.counters),
        }
    }

    /// The combined [`ScheduleProblem`] a delta pack solves: the skeleton
    /// jobs followed by `delta` (kinds normalized), at the session width.
    ///
    /// [`ScheduleProblem`]: crate::ScheduleProblem
    pub fn problem_for(&self, delta: &[TestJob]) -> crate::ScheduleProblem {
        let mut jobs = self.skeleton().to_vec();
        jobs.extend(delta.iter().cloned().map(|mut job| {
            job.kind = JobKind::Delta;
            job
        }));
        crate::ScheduleProblem { tam_width: self.tam_width(), jobs }
    }

    /// A snapshot of the session's reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{schedule_with_engine, Effort, Engine};
    use super::*;
    use msoc_wrapper::{Staircase, StaircasePoint};

    fn single(width: u32, time: u64) -> Staircase {
        Staircase::from_points(vec![StaircasePoint { width, time }])
    }

    fn skeleton() -> Vec<TestJob> {
        vec![
            TestJob::new("d0", single(3, 120)),
            TestJob::new("d1", single(2, 90)),
            TestJob::new(
                "d2",
                Staircase::from_points(vec![
                    StaircasePoint { width: 1, time: 200 },
                    StaircasePoint { width: 2, time: 100 },
                    StaircasePoint { width: 4, time: 55 },
                ]),
            ),
        ]
    }

    fn deltas() -> Vec<Vec<TestJob>> {
        vec![
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 0),
                TestJob::delta_in_group("a2", single(2, 30), 1),
            ],
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 1),
                TestJob::delta_in_group("a2", single(2, 30), 1),
            ],
            vec![
                TestJob::delta_in_group("a0", single(1, 40), 0),
                TestJob::delta_in_group("a1", single(1, 25), 0),
                TestJob::delta_in_group("a2", single(2, 30), 0),
            ],
        ]
    }

    #[test]
    fn session_packs_match_from_scratch_for_both_engines() {
        for engine in [Engine::Skyline, Engine::Naive] {
            for effort in [Effort::Quick, Effort::Standard] {
                let session = PackSession::new(6, skeleton(), effort, engine);
                for delta in deltas() {
                    let via_session = session.pack(&delta).expect("feasible");
                    let problem = session.problem_for(&delta);
                    let scratch = schedule_with_engine(&problem, effort, engine).expect("feasible");
                    assert_eq!(via_session, scratch, "session diverged ({engine:?}, {effort:?})");
                    via_session.validate(&problem).expect("session schedule must validate");
                }
            }
        }
    }

    #[test]
    fn skeleton_checkpoints_are_reused_across_candidates() {
        let session = PackSession::new(6, skeleton(), Effort::Standard, Engine::Skyline);
        for delta in deltas() {
            session.pack(&delta).expect("feasible");
        }
        let stats = session.stats();
        assert_eq!(stats.delta_packs, 3);
        assert!(stats.skeleton_hits > 0, "later candidates must hit the cache: {stats:?}");
        assert!(
            stats.skeleton_hits > stats.skeleton_misses,
            "reuse should dominate packing: {stats:?}"
        );
    }

    #[test]
    fn empty_skeleton_and_empty_delta_degenerate_cleanly() {
        let session = PackSession::new(8, Vec::new(), Effort::Quick, Engine::Skyline);
        assert_eq!(session.pack(&[]).expect("empty is feasible").makespan(), 0);
        let only_delta = vec![TestJob::delta("t", single(2, 50))];
        assert_eq!(session.pack(&only_delta).expect("feasible").makespan(), 50);
    }

    #[test]
    fn too_wide_delta_job_reports_combined_index() {
        let session = PackSession::new(4, skeleton(), Effort::Quick, Engine::Skyline);
        let delta = vec![TestJob::delta("wide", single(9, 10))];
        match session.pack(&delta) {
            Err(ScheduleError::JobTooWide { job, min_width: 9, tam_width: 4 }) => {
                assert_eq!(job, 3, "delta indices follow the skeleton");
            }
            other => panic!("expected JobTooWide, got {other:?}"),
        }
    }
}
