//! Multi-start greedy rectangle packing with serialization constraints.
//!
//! The packer is split into four layers:
//!
//! * [`search`] — engine-agnostic, phase-partitioned multi-start greedy
//!   search (orderings, placement choice, rip-up improvement, lower-bound
//!   pruning, parallel restarts) built around the *skeleton → snapshot →
//!   delta-pack* pipeline: sweep-invariant skeleton jobs are packed into
//!   cloneable checkpoints, per-candidate delta jobs continue on restored
//!   snapshots,
//! * [`session`] — [`PackSession`], the public handle that shares packed
//!   skeleton checkpoints across a whole sweep of candidate
//!   configurations, with hit/miss/prune counters,
//! * [`skyline`] — the event-based capacity skyline: O(log n) placement
//!   queries over an incrementally maintained capacity profile whose treap
//!   arena checkpoints with a flat clone,
//! * [`naive`] — the original O(n log n)-per-query reference engine, kept
//!   for differential tests and A/B benchmarks.
//!
//! Both engines share the search layer and therefore return identical
//! schedules; [`Engine`] selects between them. From-scratch scheduling
//! ([`schedule_with_engine`]) routes through a transient session, so
//! session delta-packs and from-scratch packs are bit-identical by
//! construction.

mod guillotine;
mod maxrects;
mod naive;
mod portfolio;
mod search;
mod session;
mod skyline;

pub use search::{CheckpointExport, CheckpointImportStats, CheckpointNode, TrieExport};
pub use session::{PackSession, SessionStats};

/// Small deterministic PRNG shared by the shuffle restarts and the
/// skyline treap priorities (keeps `rand` out of the public dependency
/// set of this crate).
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::problem::ScheduleProblem;

/// One placed test in a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduledTest {
    /// Index of the job in [`ScheduleProblem::jobs`].
    pub job: usize,
    /// TAM width granted to the test.
    pub width: u32,
    /// Start time in TAM clock cycles.
    pub start: u64,
    /// End time (exclusive) in TAM clock cycles.
    pub end: u64,
}

/// A feasible test schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    tam_width: u32,
    makespan: u64,
    entries: Vec<ScheduledTest>,
}

impl Schedule {
    /// Assembles a schedule from raw parts (used by the fixed-bus
    /// baseline in [`crate::buses`]); callers are responsible for
    /// validity, which [`Schedule::validate`] can confirm.
    pub(crate) fn from_parts(tam_width: u32, makespan: u64, entries: Vec<ScheduledTest>) -> Self {
        Schedule { tam_width, makespan, entries }
    }

    /// Canonical entry order: by start time, then job index.
    pub(crate) fn sort_entries(&mut self) {
        self.entries.sort_by_key(|e| (e.start, e.job));
    }

    /// Reassembles a schedule from persisted parts (snapshot import).
    ///
    /// The recorded makespan must equal the latest entry end (the invariant
    /// every packed schedule satisfies), and entries are re-sorted into the
    /// canonical order, so a faithful export/import roundtrip compares
    /// equal to the original. This checks internal consistency only;
    /// callers restoring cache entries must additionally
    /// [`validate`](Self::validate) against the problem the schedule
    /// claims to solve.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the makespan does
    /// not match the entries.
    pub fn from_persisted(
        tam_width: u32,
        makespan: u64,
        entries: Vec<ScheduledTest>,
    ) -> Result<Self, String> {
        let max_end = entries.iter().map(|e| e.end).max().unwrap_or(0);
        if makespan != max_end {
            return Err(format!(
                "persisted makespan {makespan} does not match the latest entry end {max_end}"
            ));
        }
        let mut s = Schedule { tam_width, makespan, entries };
        s.sort_entries();
        Ok(s)
    }

    /// SOC test time: the latest end time over all entries.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// TAM width the schedule was built for.
    pub fn tam_width(&self) -> u32 {
        self.tam_width
    }

    /// The placed tests, sorted by start time.
    pub fn entries(&self) -> &[ScheduledTest] {
        &self.entries
    }

    /// Fraction of the `W × makespan` strip actually covered by tests.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let used: u128 =
            self.entries.iter().map(|e| u128::from(e.end - e.start) * u128::from(e.width)).sum();
        used as f64 / (self.makespan as f64 * f64::from(self.tam_width))
    }

    /// Checks the schedule against its problem: every job placed exactly
    /// once on one of its staircase points, TAM capacity respected at every
    /// instant, and no two same-group tests overlapping.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self, problem: &ScheduleProblem) -> Result<(), String> {
        let mut seen = vec![false; problem.jobs.len()];
        for e in &self.entries {
            let job = problem
                .jobs
                .get(e.job)
                .ok_or_else(|| format!("entry references unknown job {}", e.job))?;
            if std::mem::replace(&mut seen[e.job], true) {
                return Err(format!("job {} placed twice", e.job));
            }
            let dur = e.end.checked_sub(e.start).ok_or("entry ends before it starts")?;
            let matches_point =
                job.staircase.points().iter().any(|p| p.width == e.width && p.time == dur);
            if !matches_point {
                return Err(format!(
                    "job {} placed as {}x{} which is not a staircase point",
                    e.job, e.width, dur
                ));
            }
            if e.width > problem.tam_width {
                return Err(format!("job {} wider than the TAM", e.job));
            }
            if e.end > self.makespan {
                return Err(format!("job {} ends after the makespan", e.job));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("job {missing} was never placed"));
        }

        // Capacity check via an event sweep.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            events.push((e.start, i64::from(e.width)));
            events.push((e.end, -i64::from(e.width)));
        }
        events.sort_unstable();
        let mut used = 0i64;
        for (t, delta) in events {
            used += delta;
            if used > i64::from(self.tam_width) {
                return Err(format!("TAM capacity exceeded at time {t}: {used} wires in use"));
            }
        }

        // Group serialization check.
        let mut by_group: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        for e in &self.entries {
            if let Some(g) = problem.jobs[e.job].group {
                by_group.entry(g).or_default().push((e.start, e.end));
            }
        }
        for (g, mut ivals) in by_group {
            ivals.sort_unstable();
            for pair in ivals.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!("group {g} tests overlap in time"));
                }
            }
        }
        Ok(())
    }

    /// Renders an ASCII Gantt chart (one row per entry) `cols` columns wide.
    ///
    /// Intended for examples and debugging output; rows are sorted by start
    /// time and labelled with the job label, width and interval.
    pub fn render_gantt(&self, problem: &ScheduleProblem, cols: usize) -> String {
        let cols = cols.max(10);
        let span = self.makespan.max(1);
        let mut out = String::new();
        let label_w = problem.jobs.iter().map(|j| j.label.len()).max().unwrap_or(4).min(24);
        for e in &self.entries {
            let label: String = problem.jobs[e.job].label.chars().take(label_w).collect();
            let from = (e.start as u128 * cols as u128 / span as u128) as usize;
            let to = ((e.end as u128 * cols as u128).div_ceil(span as u128) as usize).min(cols);
            let mut bar = String::with_capacity(cols);
            bar.extend(std::iter::repeat_n(' ', from));
            bar.extend(std::iter::repeat_n('#', to.saturating_sub(from).max(1)));
            out.push_str(&format!(
                "{label:<label_w$} |{bar:<cols$}| w={:<3} [{}, {})\n",
                e.width, e.start, e.end
            ));
        }
        out.push_str(&format!(
            "makespan = {} cycles, utilization = {:.1}%\n",
            self.makespan,
            self.utilization() * 100.0
        ));
        out
    }
}

/// Error returned when a problem cannot be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A job needs more TAM wires than the SOC-level TAM provides.
    JobTooWide {
        /// Index of the offending job.
        job: usize,
        /// The narrowest staircase point of that job.
        min_width: u32,
        /// The available TAM width.
        tam_width: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScheduleError::JobTooWide { job, min_width, tam_width } => write!(
                f,
                "job {job} needs at least {min_width} TAM wires but only {tam_width} exist"
            ),
        }
    }
}

impl Error for ScheduleError {}

/// How much work the multi-start optimizer invests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effort {
    /// The three deterministic orderings only; fastest, good for tests.
    Quick,
    /// Deterministic orderings plus a handful of seeded shuffles.
    #[default]
    Standard,
    /// Many restarts plus a longer improvement phase.
    Thorough,
}

impl Effort {
    fn shuffles(self) -> u64 {
        match self {
            Effort::Quick => 0,
            Effort::Standard => 6,
            Effort::Thorough => 24,
        }
    }

    /// Shuffled *joint* restarts: orderings interleaving delta jobs among
    /// the skeleton, which the cached phase-partitioned restarts cannot
    /// express. Each one is a from-scratch pack per candidate, so they are
    /// far fewer than the cached shuffles.
    fn joint_shuffles(self) -> u64 {
        match self {
            Effort::Quick => 0,
            Effort::Standard => 2,
            Effort::Thorough => 6,
        }
    }

    fn improvement_rounds(self) -> usize {
        match self {
            Effort::Quick => 8,
            Effort::Standard => 40,
            Effort::Thorough => 160,
        }
    }
}

/// Which packing engine answers placement queries.
///
/// All engines share the search layer (multi-start orderings, incumbent
/// pruning, the improvement loop) and every engine's schedules validate;
/// they differ in *placement policy*. [`Engine::Skyline`] and
/// [`Engine::Naive`] implement the identical earliest-start rule and
/// return bit-identical schedules for any `(problem, effort)` — the naive
/// engine exists for differential tests and A/B benchmarks.
/// [`Engine::MaxRects`] and [`Engine::Guillotine`] place by
/// free-rectangle and shelf geometry respectively, producing genuinely
/// different schedules that win on different fleet shapes.
/// [`Engine::Portfolio`] races skyline, MaxRects and guillotine per pack
/// behind one shared incumbent and keeps the deterministic
/// `(makespan, engine rank)` winner — never worse than
/// [`Engine::Skyline`] by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Incremental event skyline: O(log n) placement queries, lower-bound
    /// pruning, parallel multi-start. The default.
    #[default]
    Skyline,
    /// The original rebuild-sort-scan reference path, serial and unpruned.
    Naive,
    /// MaxRects free-rectangle engine: best-width-fit lane reuse.
    MaxRects,
    /// Guillotine shelf engine with diagonal-length-aware scoring.
    Guillotine,
    /// Race skyline, MaxRects and guillotine behind a shared incumbent;
    /// keep the best. Bit-identical at any thread count.
    Portfolio,
}

/// Schedules `problem` with [`Effort::Standard`].
///
/// # Errors
///
/// Returns [`ScheduleError::JobTooWide`] when some job cannot fit the TAM at
/// any of its staircase points.
pub fn schedule(problem: &ScheduleProblem) -> Result<Schedule, ScheduleError> {
    schedule_with_effort(problem, Effort::Standard)
}

/// Schedules `problem` with an explicit effort level.
///
/// The optimizer is deterministic for a given `(problem, effort)` pair.
///
/// # Errors
///
/// Returns [`ScheduleError::JobTooWide`] when some job cannot fit the TAM at
/// any of its staircase points.
pub fn schedule_with_effort(
    problem: &ScheduleProblem,
    effort: Effort,
) -> Result<Schedule, ScheduleError> {
    schedule_with_engine(problem, effort, Engine::Skyline)
}

/// Schedules `problem` with an explicit effort level and packing engine.
///
/// # Errors
///
/// Returns [`ScheduleError::JobTooWide`] when some job cannot fit the TAM at
/// any of its staircase points.
pub fn schedule_with_engine(
    problem: &ScheduleProblem,
    effort: Effort,
    engine: Engine,
) -> Result<Schedule, ScheduleError> {
    match engine {
        Engine::Skyline => search::run::<skyline::SkylineIndex>(problem, effort, true, true),
        Engine::Naive => search::run::<naive::NaiveIndex>(problem, effort, false, false),
        Engine::MaxRects => search::run::<maxrects::MaxRectsIndex>(problem, effort, true, true),
        Engine::Guillotine => {
            search::run::<guillotine::GuillotineIndex>(problem, effort, true, true)
        }
        Engine::Portfolio => portfolio::run(problem, effort),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TestJob;
    use msoc_wrapper::{Staircase, StaircasePoint};

    fn single(width: u32, time: u64) -> Staircase {
        Staircase::from_points(vec![StaircasePoint { width, time }])
    }

    fn check(problem: &ScheduleProblem) -> Schedule {
        let s = schedule(problem).expect("feasible problem");
        s.validate(problem).expect("schedule must validate");
        s
    }

    #[test]
    fn empty_problem_has_zero_makespan() {
        let p = ScheduleProblem { tam_width: 8, jobs: vec![] };
        assert_eq!(check(&p).makespan(), 0);
    }

    #[test]
    fn single_job_starts_at_zero() {
        let p = ScheduleProblem { tam_width: 8, jobs: vec![TestJob::new("a", single(3, 42))] };
        let s = check(&p);
        assert_eq!(s.makespan(), 42);
        assert_eq!(s.entries()[0].start, 0);
    }

    #[test]
    fn too_wide_job_is_rejected() {
        let p = ScheduleProblem { tam_width: 2, jobs: vec![TestJob::new("a", single(3, 1))] };
        match schedule(&p) {
            Err(ScheduleError::JobTooWide { job: 0, min_width: 3, tam_width: 2 }) => {}
            other => panic!("expected JobTooWide, got {other:?}"),
        }
    }

    #[test]
    fn parallel_fit_is_found() {
        // Two width-2 jobs fit side by side on 4 wires.
        let p = ScheduleProblem {
            tam_width: 4,
            jobs: vec![TestJob::new("a", single(2, 100)), TestJob::new("b", single(2, 100))],
        };
        assert_eq!(check(&p).makespan(), 100);
    }

    #[test]
    fn capacity_forces_serialization() {
        let p = ScheduleProblem {
            tam_width: 4,
            jobs: vec![TestJob::new("a", single(3, 100)), TestJob::new("b", single(3, 50))],
        };
        assert_eq!(check(&p).makespan(), 150);
    }

    #[test]
    fn group_members_never_overlap_even_with_spare_wires() {
        let p = ScheduleProblem {
            tam_width: 16,
            jobs: vec![
                TestJob::in_group("a", single(1, 70), 1),
                TestJob::in_group("b", single(1, 30), 1),
                TestJob::in_group("c", single(1, 50), 1),
            ],
        };
        // Plenty of wires, but the shared wrapper serializes them.
        assert_eq!(check(&p).makespan(), 150);
    }

    #[test]
    fn independent_groups_run_in_parallel() {
        let p = ScheduleProblem {
            tam_width: 4,
            jobs: vec![
                TestJob::in_group("a", single(1, 100), 1),
                TestJob::in_group("b", single(1, 100), 2),
            ],
        };
        assert_eq!(check(&p).makespan(), 100);
    }

    #[test]
    fn staircase_choice_uses_narrower_point_under_contention() {
        // Job `big` can run 4x25 or 2x50. With a 1x100 companion on 5 wires
        // both fit in parallel only if `big` picks a width ≤ 4... both
        // choices fit; but on 4 wires the 2-wide point avoids serialization:
        // makespan 100 instead of 125.
        let stairs = Staircase::from_points(vec![
            StaircasePoint { width: 2, time: 50 },
            StaircasePoint { width: 4, time: 25 },
        ]);
        let p = ScheduleProblem {
            tam_width: 4,
            jobs: vec![TestJob::new("narrow", single(2, 100)), TestJob::new("big", stairs)],
        };
        assert_eq!(check(&p).makespan(), 100);
    }

    #[test]
    fn utilization_and_gantt_render() {
        let p = ScheduleProblem { tam_width: 2, jobs: vec![TestJob::new("a", single(2, 10))] };
        let s = check(&p);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
        let g = s.render_gantt(&p, 40);
        assert!(g.contains("makespan = 10"));
        assert!(g.contains('#'));
    }

    #[test]
    fn validate_catches_capacity_violation() {
        let p = ScheduleProblem {
            tam_width: 2,
            jobs: vec![TestJob::new("a", single(2, 10)), TestJob::new("b", single(2, 10))],
        };
        let bogus = Schedule {
            tam_width: 2,
            makespan: 15,
            entries: vec![
                ScheduledTest { job: 0, width: 2, start: 0, end: 10 },
                ScheduledTest { job: 1, width: 2, start: 5, end: 15 },
            ],
        };
        assert!(bogus.validate(&p).unwrap_err().contains("capacity"));
    }

    #[test]
    fn validate_catches_group_overlap() {
        let p = ScheduleProblem {
            tam_width: 8,
            jobs: vec![
                TestJob::in_group("a", single(1, 10), 9),
                TestJob::in_group("b", single(1, 10), 9),
            ],
        };
        let bogus = Schedule {
            tam_width: 8,
            makespan: 12,
            entries: vec![
                ScheduledTest { job: 0, width: 1, start: 0, end: 10 },
                ScheduledTest { job: 1, width: 1, start: 2, end: 12 },
            ],
        };
        assert!(bogus.validate(&p).unwrap_err().contains("group"));
    }

    #[test]
    fn validate_catches_missing_and_duplicate_jobs() {
        let p = ScheduleProblem {
            tam_width: 8,
            jobs: vec![TestJob::new("a", single(1, 10)), TestJob::new("b", single(1, 10))],
        };
        let missing = Schedule {
            tam_width: 8,
            makespan: 10,
            entries: vec![ScheduledTest { job: 0, width: 1, start: 0, end: 10 }],
        };
        assert!(missing.validate(&p).unwrap_err().contains("never placed"));
        let dup = Schedule {
            tam_width: 8,
            makespan: 20,
            entries: vec![
                ScheduledTest { job: 0, width: 1, start: 0, end: 10 },
                ScheduledTest { job: 0, width: 1, start: 10, end: 20 },
                ScheduledTest { job: 1, width: 1, start: 0, end: 10 },
            ],
        };
        assert!(dup.validate(&p).unwrap_err().contains("twice"));
    }

    #[test]
    fn validate_rejects_non_staircase_placement() {
        let p = ScheduleProblem { tam_width: 8, jobs: vec![TestJob::new("a", single(2, 10))] };
        let bogus = Schedule {
            tam_width: 8,
            makespan: 10,
            entries: vec![ScheduledTest { job: 0, width: 3, start: 0, end: 10 }],
        };
        assert!(bogus.validate(&p).unwrap_err().contains("staircase"));
    }

    #[test]
    fn effort_levels_are_deterministic_and_ordered() {
        let soc = msoc_itc02::synth::d695s();
        let p = ScheduleProblem::from_soc(&soc, 16);
        let quick = schedule_with_effort(&p, Effort::Quick).unwrap();
        let std1 = schedule_with_effort(&p, Effort::Standard).unwrap();
        let std2 = schedule_with_effort(&p, Effort::Standard).unwrap();
        let thorough = schedule_with_effort(&p, Effort::Thorough).unwrap();
        assert_eq!(std1, std2);
        assert!(std1.makespan() <= quick.makespan());
        assert!(thorough.makespan() <= std1.makespan());
    }

    #[test]
    fn d695s_schedule_beats_naive_serialization() {
        let soc = msoc_itc02::synth::d695s();
        let p = ScheduleProblem::from_soc(&soc, 16);
        let s = check(&p);
        let serial: u64 = p.jobs.iter().map(|j| j.staircase.time_at(16)).sum();
        assert!(s.makespan() < serial / 2, "packing should beat serial by 2x");
        assert!(s.utilization() > 0.5);
    }

    #[test]
    fn engines_agree_on_synthetic_socs() {
        for (soc, w) in [
            (msoc_itc02::synth::d695s(), 16),
            (msoc_itc02::synth::d695s(), 24),
            (msoc_itc02::synth::p22810s(), 32),
        ] {
            let p = ScheduleProblem::from_soc(&soc, w);
            for effort in [Effort::Quick, Effort::Standard] {
                let fast = schedule_with_engine(&p, effort, Engine::Skyline).unwrap();
                let reference = schedule_with_engine(&p, effort, Engine::Naive).unwrap();
                assert_eq!(fast, reference, "engines diverged on {} at w={w}", soc.name);
                fast.validate(&p).expect("skyline schedule must validate");
            }
        }
    }

    #[test]
    fn every_engine_validates_and_the_portfolio_never_loses() {
        // MaxRects and guillotine pack genuinely different geometries, so
        // they only owe validity; the portfolio additionally owes a
        // makespan no worse than its skyline member.
        for (soc, w) in [(msoc_itc02::synth::d695s(), 16), (msoc_itc02::synth::p22810s(), 32)] {
            let p = ScheduleProblem::from_soc(&soc, w);
            let sky = schedule_with_engine(&p, Effort::Quick, Engine::Skyline).unwrap();
            for engine in [Engine::MaxRects, Engine::Guillotine, Engine::Portfolio] {
                let s = schedule_with_engine(&p, Effort::Quick, engine).unwrap();
                s.validate(&p).unwrap_or_else(|e| {
                    panic!("{engine:?} schedule must validate on {} at w={w}: {e}", soc.name)
                });
                if engine == Engine::Portfolio {
                    assert!(
                        s.makespan() <= sky.makespan(),
                        "portfolio ({}) lost to skyline ({}) on {} at w={w}",
                        s.makespan(),
                        sky.makespan(),
                        soc.name
                    );
                }
            }
        }
    }

    #[test]
    fn engines_agree_with_serialization_groups() {
        let mixed = |g| {
            vec![
                TestJob::in_group("a", single(2, 120), g),
                TestJob::in_group("b", single(1, 80), g),
                TestJob::new("c", single(4, 60)),
                TestJob::new(
                    "d",
                    Staircase::from_points(vec![
                        StaircasePoint { width: 1, time: 200 },
                        StaircasePoint { width: 2, time: 100 },
                        StaircasePoint { width: 4, time: 55 },
                    ]),
                ),
            ]
        };
        let p = ScheduleProblem { tam_width: 6, jobs: mixed(3) };
        let fast = schedule_with_engine(&p, Effort::Standard, Engine::Skyline).unwrap();
        let reference = schedule_with_engine(&p, Effort::Standard, Engine::Naive).unwrap();
        assert_eq!(fast, reference);
        fast.validate(&p).expect("grouped schedule must validate");
    }

    #[test]
    fn engines_agree_on_zero_duration_jobs() {
        // A core with zero patterns has a zero-time staircase point; both
        // engines must place it identically (at t = 0, occupying nothing).
        let p = ScheduleProblem {
            tam_width: 2,
            jobs: vec![
                TestJob::new("real", single(2, 100)),
                TestJob::new("empty", single(2, 0)),
                TestJob::in_group("grouped", single(1, 50), 7),
                TestJob::in_group("empty2", single(1, 0), 7),
            ],
        };
        for effort in [Effort::Quick, Effort::Standard] {
            let fast = schedule_with_engine(&p, effort, Engine::Skyline).unwrap();
            let reference = schedule_with_engine(&p, effort, Engine::Naive).unwrap();
            assert_eq!(fast, reference);
            fast.validate(&p).expect("zero-duration schedule must validate");
        }
    }

    #[test]
    fn improvement_rotates_over_many_critical_jobs() {
        // Eight identical 1x100 jobs on one wire: every job is critical in
        // turn; the rotation must terminate and keep a valid optimum.
        let p = ScheduleProblem {
            tam_width: 1,
            jobs: (0..8).map(|i| TestJob::new(format!("j{i}"), single(1, 100))).collect(),
        };
        let s = check(&p);
        assert_eq!(s.makespan(), 800);
    }
}
